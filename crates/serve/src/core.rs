//! The in-process service core: epoch-pinned query execution on reader
//! threads, a single supervised mutator thread publishing epochs, and
//! shared counters for the stats reply.
//!
//! Transport-agnostic on purpose — [`crate::server`] wraps it in TCP,
//! tests drive it directly.
//!
//! # Durability and crash recovery
//!
//! With a [`DurabilityConfig`], every admitted update batch is appended
//! to a write-ahead log (see [`crate::wal`]) **before** the enqueue
//! call returns — the client's ack implies the batch is on disk. The
//! mutator periodically captures its full decision state in an atomic
//! checkpoint (see [`crate::checkpoint`]); [`ServeCore::recover`]
//! resumes from the last checkpoint and replays the WAL tail, landing
//! on **bit-identical** epochs to the uninterrupted run because the
//! streaming pipeline is deterministic and the checkpoint carries the
//! insertion order's exact float-key state.
//!
//! # Mutator supervision
//!
//! A panicking or failing batch application no longer halts epoch
//! publication: the mutator exports each pipeline's resumable state
//! before applying a batch, catches panics, and on any failure restores
//! every pipeline to the pre-batch state. The failed batch is skipped
//! (deterministically — a recovery replaying the same batches under the
//! same [`FaultPlan`] skips the same ones), `mutator_restarts` counts
//! the rollback, and the `degraded` flag stays raised until the next
//! successful publish.

use crate::admission::{Admission, AdmissionQueue};
use crate::checkpoint::{read_checkpoint, write_checkpoint, Checkpoint, PipelineCheckpoint};
use crate::epoch::{EpochCell, EpochState, WarmEntry};
use crate::fault::FaultPlan;
use crate::spec::{AlgSpec, ModeSpec};
use crate::wal::{compact_wal, read_wal, truncate_wal, SyncPolicy, TailStatus, WalWriter};
use gograph_engine::{
    Bfs, ConnectedComponents, EngineError, PageRank, Pipeline, ResumableState, Sssp, Sswp,
    StreamingPipeline, WarmStart,
};
use gograph_graph::{CsrGraph, EdgeUpdate, VertexId};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Sentinel in the compaction watermark meaning "nothing pending".
const NO_COMPACTION: u64 = u64::MAX;

/// An algorithm the mutator keeps converged across epochs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WarmSpec {
    /// The algorithm to maintain.
    pub alg: AlgSpec,
    /// Source vertex for sourced algorithms (ignored by global ones).
    pub source: VertexId,
}

impl WarmSpec {
    /// A warm spec for `alg` from `source`.
    pub fn new(alg: AlgSpec, source: VertexId) -> WarmSpec {
        WarmSpec { alg, source }
    }
}

/// Where and how the service persists update batches and checkpoints.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory holding the log (`updates.wal`) and the checkpoint
    /// (`epoch.ckpt`). Created on boot if missing.
    pub dir: PathBuf,
    /// Checkpoint (and schedule a WAL compaction) every this many
    /// assigned sequence numbers. 0 disables periodic checkpoints —
    /// one is still written at boot and on clean shutdown.
    pub checkpoint_every_batches: u64,
    /// How eagerly WAL appends reach stable storage.
    pub sync: SyncPolicy,
}

impl DurabilityConfig {
    /// Durability under `dir` with the defaults: checkpoint every 16
    /// batches, fsync every append.
    pub fn new(dir: impl Into<PathBuf>) -> DurabilityConfig {
        DurabilityConfig {
            dir: dir.into(),
            checkpoint_every_batches: 16,
            sync: SyncPolicy::EveryBatch,
        }
    }

    /// Path of the write-ahead log.
    pub fn wal_path(&self) -> PathBuf {
        self.dir.join("updates.wal")
    }

    /// Path of the epoch checkpoint.
    pub fn checkpoint_path(&self) -> PathBuf {
        self.dir.join("epoch.ckpt")
    }
}

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Algorithms the mutator maintains warm across epochs. When empty,
    /// a single global CC pipeline is used so the order still gets
    /// maintained.
    pub warm: Vec<WarmSpec>,
    /// How long an admission-batch leader holds its slot open for
    /// followers. Zero disables request combining.
    pub admission_window: Duration,
    /// Reorder parallelism handed to the mutator's pipelines.
    pub reorder_threads: usize,
    /// Whether the mutator uses partition-scoped re-reordering.
    pub partition_scoped: bool,
    /// When set, updates are write-ahead logged and epochs checkpointed
    /// so the service can [`recover`](ServeCore::recover) after a
    /// crash. `None` keeps the pre-durability in-memory behavior.
    pub durability: Option<DurabilityConfig>,
    /// Injected faults (tests and chaos drills; [`FaultPlan::none`]
    /// in production).
    pub faults: FaultPlan,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            warm: vec![
                WarmSpec::new(AlgSpec::Cc, 0),
                WarmSpec::new(AlgSpec::Sssp, 0),
            ],
            admission_window: Duration::from_millis(2),
            reorder_threads: 1,
            partition_scoped: true,
            durability: None,
            faults: FaultPlan::none(),
        }
    }
}

/// Errors surfaced to clients.
#[derive(Debug)]
pub enum ServeError {
    /// The request was malformed (bad algorithm, missing sources,
    /// out-of-range vertex, ...).
    InvalidRequest(String),
    /// The engine failed to execute the query.
    Engine(EngineError),
    /// The service is shutting down.
    Closed,
    /// The current snapshot lags the newest admitted batch by more than
    /// the query's `max_epoch_lag` bound.
    Stale {
        /// Batches admitted but not yet reflected in an epoch.
        lag: u64,
        /// The bound the query asked for.
        max: u64,
    },
    /// The durability layer failed (WAL append, checkpoint I/O, ...).
    Io(std::io::Error),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::InvalidRequest(m) => write!(f, "invalid request: {m}"),
            ServeError::Engine(e) => write!(f, "engine error: {e}"),
            ServeError::Closed => write!(f, "service is shutting down"),
            ServeError::Stale { lag, max } => {
                write!(f, "snapshot lags by {lag} batches (bound {max})")
            }
            ServeError::Io(e) => write!(f, "durability I/O error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<EngineError> for ServeError {
    fn from(e: EngineError) -> ServeError {
        ServeError::Engine(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> ServeError {
        ServeError::Io(e)
    }
}

/// One query as the core sees it (the wire layer decodes into this).
#[derive(Debug, Clone)]
pub struct QueryRequest {
    /// Which algorithm to run.
    pub alg: AlgSpec,
    /// Execution mode.
    pub mode: ModeSpec,
    /// Source vertices (exactly the client's own; admission may widen).
    pub sources: Vec<VertexId>,
    /// Whether this request may be coalesced with concurrent
    /// same-algorithm requests into one multi-source run.
    pub combine: bool,
    /// Bounded staleness: reject (typed, retryable) instead of
    /// answering when more than this many admitted batches are not yet
    /// reflected in the pinned epoch. `None` accepts any staleness.
    pub max_epoch_lag: Option<u64>,
}

/// A finished query: the pinned epoch it ran against plus the full
/// result. Shared by every coalesced follower via `Arc`.
#[derive(Debug)]
pub struct QueryOutcome {
    /// The epoch snapshot the query executed against (still pinned as
    /// long as this outcome is alive).
    pub epoch: Arc<EpochState>,
    /// Algorithm that ran.
    pub alg: AlgSpec,
    /// Mode it ran under.
    pub mode: ModeSpec,
    /// The *effective* source set — the admitted union when the run was
    /// coalesced, the client's own sources otherwise. Replies carry
    /// this so any client can reproduce the exact run.
    pub effective_sources: Vec<VertexId>,
    /// How many client requests this one execution served.
    pub admitted: usize,
    /// Whether the run warm-started from the epoch's converged states.
    pub warm: bool,
    /// Rounds the engine executed.
    pub rounds: usize,
    /// Rounds executed in the push direction (direction-optimizing
    /// engines; 0 otherwise).
    pub push_rounds: usize,
    /// Engine state memory for the run.
    pub state_memory_bytes: usize,
    /// Whether the run converged within the round cap.
    pub converged: bool,
    /// Engine-side runtime of the iteration loop.
    pub runtime: Duration,
    /// Final per-vertex states (in original vertex ids).
    pub states: Arc<Vec<f64>>,
}

/// Shared atomic counters, snapshotted into the wire stats reply.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Queries answered (leaders and followers alike).
    pub queries: AtomicU64,
    /// Queries answered from another leader's execution.
    pub coalesced: AtomicU64,
    /// Executions that warm-started from epoch warm state.
    pub warm_hits: AtomicU64,
    /// Executions that ran cold.
    pub cold_runs: AtomicU64,
    /// Total rounds across query executions.
    pub query_rounds: AtomicU64,
    /// Total push-direction rounds across query executions.
    pub query_push_rounds: AtomicU64,
    /// State bytes of the most recent query execution.
    pub last_state_bytes: AtomicU64,
    /// Update batches accepted into the queue.
    pub batches_enqueued: AtomicU64,
    /// Update batches the mutator applied (== epochs published).
    pub batches_applied: AtomicU64,
    /// Individual edge updates applied.
    pub updates_applied: AtomicU64,
    /// Total rounds the mutator's warm pipelines spent re-converging.
    pub mutator_rounds: AtomicU64,
    /// Update batches the mutator failed to apply (skipped after
    /// rollback).
    pub mutator_errors: AtomicU64,
    /// Times the supervisor rolled the mutator back to its pre-batch
    /// state after a panic or engine error.
    pub mutator_restarts: AtomicU64,
    /// Admission slots poisoned because their leader's execution
    /// failed (followers retried solo).
    pub poisoned_slots: AtomicU64,
    /// 1 while the last batch application failed and no epoch has been
    /// published since; 0 once publication resumes.
    pub degraded: AtomicU64,
    /// Batches appended to the write-ahead log.
    pub wal_appends: AtomicU64,
    /// Bytes appended to the write-ahead log.
    pub wal_bytes: AtomicU64,
    /// WAL records replayed during the last recovery.
    pub wal_replayed: AtomicU64,
    /// Checkpoints written (boot, periodic, and shutdown).
    pub checkpoints_written: AtomicU64,
    /// Connections refused at accept time because the cap was reached.
    pub connections_shed: AtomicU64,
}

/// A plain-value copy of every counter plus epoch/graph facts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Current epoch number.
    pub epoch: u64,
    /// Epochs published since bootstrap.
    pub epochs_published: u64,
    /// Vertices in the current epoch's graph.
    pub num_vertices: u64,
    /// Edges in the current epoch's graph.
    pub num_edges: u64,
    /// Partitions tracked by the current epoch.
    pub num_partitions: u64,
    /// Queries answered.
    pub queries: u64,
    /// Queries served from a coalesced execution.
    pub coalesced: u64,
    /// Warm-started executions.
    pub warm_hits: u64,
    /// Cold executions.
    pub cold_runs: u64,
    /// Total query rounds.
    pub query_rounds: u64,
    /// Total query push rounds.
    pub query_push_rounds: u64,
    /// State bytes of the most recent execution.
    pub last_state_bytes: u64,
    /// Update batches enqueued.
    pub batches_enqueued: u64,
    /// Update batches applied.
    pub batches_applied: u64,
    /// Individual updates applied.
    pub updates_applied: u64,
    /// Mutator re-convergence rounds.
    pub mutator_rounds: u64,
    /// Mutator failures (skipped batches).
    pub mutator_errors: u64,
    /// Supervisor rollbacks of the mutator.
    pub mutator_restarts: u64,
    /// Admission slots poisoned by failed leaders.
    pub poisoned_slots: u64,
    /// 1 while publication is stalled on a failed batch.
    pub degraded: u64,
    /// WAL appends.
    pub wal_appends: u64,
    /// WAL bytes written.
    pub wal_bytes: u64,
    /// WAL records replayed at recovery.
    pub wal_replayed: u64,
    /// Checkpoints written.
    pub checkpoints_written: u64,
    /// Connections shed at the accept cap.
    pub connections_shed: u64,
}

enum MutatorMsg {
    Batch { seq: u64, updates: Vec<EdgeUpdate> },
    Stop,
}

/// The enqueue side of the update path: sequence assignment, the WAL
/// writer (owner of the log's fd), and the mutator channel — all under
/// one lock so "append, then send, then ack" is a single atomic step
/// from any client's point of view.
struct UpdateLane {
    tx: Sender<MutatorMsg>,
    next_seq: u64,
    wal: Option<WalWriter>,
}

/// Pipeline construction knobs threaded to the supervisor so restored
/// pipelines are built exactly like the originals.
#[derive(Debug, Clone, Copy)]
struct PipelineBuild {
    reorder_threads: usize,
    partition_scoped: bool,
}

impl PipelineBuild {
    fn from_config(config: &ServeConfig) -> PipelineBuild {
        PipelineBuild {
            reorder_threads: config.reorder_threads,
            partition_scoped: config.partition_scoped,
        }
    }
}

/// Everything the mutator thread owns.
struct MutatorCtx {
    pipelines: Vec<(WarmSpec, StreamingPipeline)>,
    build: PipelineBuild,
    faults: FaultPlan,
    durability: Option<DurabilityConfig>,
    compact_after: Arc<AtomicU64>,
    epoch: u64,
    last_seq: u64,
}

/// The service core. `Arc<ServeCore>` is shared by every connection
/// handler; all methods take `&self`.
pub struct ServeCore {
    epoch: Arc<EpochCell>,
    admission: AdmissionQueue<(u8, u8), Arc<QueryOutcome>>,
    stats: Arc<ServeStats>,
    update_lane: Mutex<Option<UpdateLane>>,
    mutator: Mutex<Option<JoinHandle<()>>>,
    compact_after: Arc<AtomicU64>,
    durability: Option<DurabilityConfig>,
    faults: FaultPlan,
}

impl ServeCore {
    /// Boots the service over `graph`: builds one warm
    /// [`StreamingPipeline`] per configured algorithm (cold bootstrap
    /// runs happen here), publishes the bootstrap epoch, and starts the
    /// mutator thread.
    ///
    /// With durability configured, a fresh start refuses to run over
    /// existing durable state (that is what [`recover`](Self::recover)
    /// is for); it writes the bootstrap checkpoint and opens the WAL
    /// before accepting any update.
    pub fn start(graph: &CsrGraph, config: ServeConfig) -> Result<Arc<ServeCore>, ServeError> {
        let warm_specs = if config.warm.is_empty() {
            vec![WarmSpec::new(AlgSpec::Cc, 0)]
        } else {
            config.warm.clone()
        };
        for w in &warm_specs {
            if w.alg.needs_sources() && (w.source as usize) >= graph.num_vertices() {
                return Err(ServeError::InvalidRequest(format!(
                    "warm source {} out of range for {} vertices",
                    w.source,
                    graph.num_vertices()
                )));
            }
        }

        let build = PipelineBuild::from_config(&config);
        let mut pipelines: Vec<(WarmSpec, StreamingPipeline)> =
            Vec::with_capacity(warm_specs.len());
        for spec in &warm_specs {
            let sp = build_warm_pipeline(graph, *spec, build)?;
            pipelines.push((*spec, sp));
        }

        let stats = Arc::new(ServeStats::default());
        let mut wal = None;
        if let Some(d) = &config.durability {
            std::fs::create_dir_all(&d.dir)?;
            if d.checkpoint_path().exists() || d.wal_path().exists() {
                return Err(ServeError::InvalidRequest(format!(
                    "durable state already present in {}; recover instead of starting fresh",
                    d.dir.display()
                )));
            }
            // Bootstrap checkpoint: recovery always has a base state,
            // even if the process dies before the first periodic one.
            write_checkpoint(
                &d.checkpoint_path(),
                &make_checkpoint(&pipelines, 0, 0, &stats),
            )?;
            stats.checkpoints_written.fetch_add(1, Ordering::Relaxed);
            wal = Some(WalWriter::open(&d.wal_path(), d.sync)?);
        }

        let bootstrap = epoch_from_pipelines(0, &pipelines);
        Self::launch(
            Arc::new(EpochCell::new(bootstrap)),
            pipelines,
            stats,
            config,
            build,
            wal,
            0,
            0,
        )
    }

    /// Rebuilds the service from its durable state: resumes every warm
    /// pipeline from the last checkpoint, truncates any torn WAL tail,
    /// replays the records the checkpoint does not cover, and restores
    /// the counters — the recovered epoch is bit-identical to the
    /// epoch the crashed process would have served.
    pub fn recover(config: ServeConfig) -> Result<Arc<ServeCore>, ServeError> {
        let d = config.durability.clone().ok_or_else(|| {
            ServeError::InvalidRequest("recover requires a durability config".to_string())
        })?;
        let ck = read_checkpoint(&d.checkpoint_path())?.ok_or_else(|| {
            ServeError::InvalidRequest(format!(
                "no checkpoint in {}; nothing to recover",
                d.dir.display()
            ))
        })?;
        if ck.pipelines.is_empty() {
            return Err(ServeError::InvalidRequest(
                "checkpoint carries no pipelines".to_string(),
            ));
        }

        let build = PipelineBuild::from_config(&config);
        let mut pipelines: Vec<(WarmSpec, StreamingPipeline)> =
            Vec::with_capacity(ck.pipelines.len());
        for p in ck.pipelines {
            let sp = resume_warm_pipeline(p.warm, p.state, build)?;
            pipelines.push((p.warm, sp));
        }

        // Only the longest intact WAL prefix is replayable; anything
        // past it is a torn (never acked) append and is discarded.
        let wal_path = d.wal_path();
        let contents = read_wal(&wal_path)?;
        if contents.tail == TailStatus::CorruptTail {
            truncate_wal(&wal_path, contents.valid_bytes)?;
        }

        let stats = Arc::new(ServeStats::default());
        // The checkpoint pins the counter identities: every assigned
        // seq was enqueued, every published epoch was an applied batch,
        // and the difference is the skipped (failed) batches.
        stats.batches_applied.store(ck.epoch, Ordering::Relaxed);
        stats
            .mutator_errors
            .store(ck.seq.saturating_sub(ck.epoch), Ordering::Relaxed);
        stats
            .updates_applied
            .store(ck.updates_applied, Ordering::Relaxed);
        stats
            .mutator_rounds
            .store(ck.mutator_rounds, Ordering::Relaxed);

        let mut epoch = ck.epoch;
        let mut last_seq = ck.seq;
        let mut replayed = 0u64;
        for rec in contents.records.iter().filter(|r| r.seq > ck.seq) {
            last_seq = rec.seq;
            replayed += 1;
            if let Some(rounds) = apply_supervised(
                &mut pipelines,
                rec.seq,
                &rec.updates,
                &stats,
                &config.faults,
                build,
            ) {
                epoch += 1;
                stats.batches_applied.fetch_add(1, Ordering::Relaxed);
                stats
                    .updates_applied
                    .fetch_add(rec.updates.len() as u64, Ordering::Relaxed);
                stats.mutator_rounds.fetch_add(rounds, Ordering::Relaxed);
                stats.degraded.store(0, Ordering::Relaxed);
            }
        }
        stats.batches_enqueued.store(last_seq, Ordering::Relaxed);
        stats.wal_replayed.store(replayed, Ordering::Relaxed);

        let cell = Arc::new(EpochCell::with_published(
            epoch_from_pipelines(epoch, &pipelines),
            epoch,
        ));
        let wal = Some(WalWriter::open(&wal_path, d.sync)?);
        Self::launch(cell, pipelines, stats, config, build, wal, epoch, last_seq)
    }

    /// [`recover`](Self::recover) when durable state exists, otherwise
    /// [`start`](Self::start) fresh over `graph`. The bool is true when
    /// the service was recovered.
    pub fn recover_or_start(
        graph: &CsrGraph,
        config: ServeConfig,
    ) -> Result<(Arc<ServeCore>, bool), ServeError> {
        let has_checkpoint = config
            .durability
            .as_ref()
            .is_some_and(|d| d.checkpoint_path().exists());
        if has_checkpoint {
            Ok((Self::recover(config)?, true))
        } else {
            Ok((Self::start(graph, config)?, false))
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn launch(
        cell: Arc<EpochCell>,
        pipelines: Vec<(WarmSpec, StreamingPipeline)>,
        stats: Arc<ServeStats>,
        config: ServeConfig,
        build: PipelineBuild,
        wal: Option<WalWriter>,
        epoch: u64,
        last_seq: u64,
    ) -> Result<Arc<ServeCore>, ServeError> {
        let compact_after = Arc::new(AtomicU64::new(NO_COMPACTION));
        let ctx = MutatorCtx {
            pipelines,
            build,
            faults: config.faults.clone(),
            durability: config.durability.clone(),
            compact_after: Arc::clone(&compact_after),
            epoch,
            last_seq,
        };
        // The mutator owns only the shared inner pieces (epoch cell +
        // counters), never an `Arc<ServeCore>` — a core handle here
        // would keep the thread and the core alive in a cycle.
        let (tx, rx) = mpsc::channel();
        let mcell = Arc::clone(&cell);
        let mstats = Arc::clone(&stats);
        let handle = std::thread::Builder::new()
            .name("gograph-mutator".into())
            .spawn(move || mutator_loop(rx, ctx, &mcell, &mstats))?;

        Ok(Arc::new(ServeCore {
            epoch: cell,
            admission: AdmissionQueue::new(config.admission_window),
            stats,
            update_lane: Mutex::new(Some(UpdateLane {
                tx,
                next_seq: last_seq,
                wal,
            })),
            mutator: Mutex::new(Some(handle)),
            compact_after,
            durability: config.durability,
            faults: config.faults,
        }))
    }

    /// Pins and returns the current epoch snapshot.
    pub fn pin_epoch(&self) -> Arc<EpochState> {
        self.epoch.pin()
    }

    /// The shared counters (the server front end bumps shed/transport
    /// counters directly).
    pub(crate) fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// The configured fault plan (the server front end consults it for
    /// reply drops/delays).
    pub(crate) fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    /// Executes `req` against a pinned epoch, possibly coalescing it
    /// with concurrent compatible requests (see [`crate::admission`]).
    pub fn execute_query(&self, req: QueryRequest) -> Result<Arc<QueryOutcome>, ServeError> {
        if let Some(max) = req.max_epoch_lag {
            let enqueued = self.stats.batches_enqueued.load(Ordering::Relaxed);
            let settled = self.stats.batches_applied.load(Ordering::Relaxed)
                + self.stats.mutator_errors.load(Ordering::Relaxed);
            let lag = enqueued.saturating_sub(settled);
            if lag > max {
                return Err(ServeError::Stale { lag, max });
            }
        }
        if req.alg.needs_sources() && req.sources.is_empty() {
            return Err(ServeError::InvalidRequest(format!(
                "{} requires at least one source vertex",
                req.alg.name()
            )));
        }
        let sources: &[VertexId] = if req.alg.needs_sources() {
            &req.sources
        } else {
            &[]
        };

        let outcome = if req.combine {
            let key = (req.alg.code(), req.mode.code());
            match self.admission.submit(key, sources) {
                Admission::Lead {
                    slot,
                    sources,
                    admitted,
                } => match self.run(req.alg, req.mode, sources, admitted) {
                    Ok(outcome) => {
                        self.admission.complete(&slot, Arc::clone(&outcome));
                        outcome
                    }
                    Err(e) => {
                        self.stats.poisoned_slots.fetch_add(1, Ordering::Relaxed);
                        self.admission.poison(&slot);
                        return Err(e);
                    }
                },
                Admission::Follow(outcome) => {
                    self.stats.coalesced.fetch_add(1, Ordering::Relaxed);
                    outcome
                }
            }
        } else {
            self.run(req.alg, req.mode, sources.to_vec(), 1)?
        };
        self.stats.queries.fetch_add(1, Ordering::Relaxed);
        Ok(outcome)
    }

    /// One execution against a freshly pinned epoch.
    fn run(
        &self,
        alg: AlgSpec,
        mode: ModeSpec,
        sources: Vec<VertexId>,
        admitted: usize,
    ) -> Result<Arc<QueryOutcome>, ServeError> {
        let epoch = self.epoch.pin();
        let n = epoch.graph.num_vertices();
        if let Some(&bad) = sources.iter().find(|&&s| (s as usize) >= n) {
            return Err(ServeError::InvalidRequest(format!(
                "source vertex {bad} out of range for {n} vertices"
            )));
        }

        // Warm-start only exact-match single-source (or global) queries
        // from the epoch's converged states.
        let warm_entry: Option<&WarmEntry> = if sources.len() <= 1 {
            epoch.warm_for(alg, sources.first().copied().unwrap_or(0))
        } else {
            None
        };

        let algorithm = alg.instantiate(&sources);
        let mut builder = Pipeline::on(&epoch.graph)
            .order_ref(&epoch.order)
            .mode(mode.mode())
            .algorithm_ref(algorithm.as_ref());
        let warm = warm_entry.is_some();
        if let Some(entry) = warm_entry {
            builder = builder.warm_start(WarmStart::from_states((*entry.states).clone()));
        }
        let result = builder.execute()?;

        let stats = result.stats;
        if warm {
            self.stats.warm_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.stats.cold_runs.fetch_add(1, Ordering::Relaxed);
        }
        self.stats
            .query_rounds
            .fetch_add(stats.rounds as u64, Ordering::Relaxed);
        self.stats
            .query_push_rounds
            .fetch_add(stats.push_rounds as u64, Ordering::Relaxed);
        self.stats
            .last_state_bytes
            .store(stats.state_memory_bytes as u64, Ordering::Relaxed);

        Ok(Arc::new(QueryOutcome {
            epoch,
            alg,
            mode,
            effective_sources: sources,
            admitted,
            warm,
            rounds: stats.rounds,
            push_rounds: stats.push_rounds,
            state_memory_bytes: stats.state_memory_bytes,
            converged: stats.converged,
            runtime: stats.runtime,
            states: Arc::new(stats.final_states),
        }))
    }

    /// Queues an update batch for the mutator. With durability, the
    /// batch is appended (and synced, per policy) to the WAL before
    /// this returns — an acked batch survives a crash. Returns the
    /// number of updates accepted.
    pub fn enqueue_updates(&self, updates: Vec<EdgeUpdate>) -> Result<usize, ServeError> {
        if updates.is_empty() {
            return Err(ServeError::InvalidRequest("empty update batch".to_string()));
        }
        let n = updates.len();
        let mut guard = crate::lock_unpoisoned(&self.update_lane);
        let lane = guard.as_mut().ok_or(ServeError::Closed)?;
        let seq = lane.next_seq + 1;
        if let Some(d) = &self.durability {
            // A compaction watermark set by the mutator (post-
            // checkpoint) is honored here, under the lane lock, because
            // this thread owns the log's fd: compaction renames a fresh
            // inode over the path, so the writer must be reopened.
            let watermark = self.compact_after.swap(NO_COMPACTION, Ordering::AcqRel);
            if watermark != NO_COMPACTION {
                lane.wal = None; // close the fd the rename strands
                if let Err(e) = compact_wal(&d.wal_path(), watermark) {
                    eprintln!("gograph-serve: WAL compaction failed: {e}");
                }
            }
            if lane.wal.is_none() {
                lane.wal = Some(WalWriter::open(&d.wal_path(), d.sync)?);
            }
            if let Some(wal) = lane.wal.as_mut() {
                let bytes = wal.append(seq, &updates)?;
                self.stats.wal_appends.fetch_add(1, Ordering::Relaxed);
                self.stats.wal_bytes.fetch_add(bytes, Ordering::Relaxed);
            }
        }
        lane.tx
            .send(MutatorMsg::Batch { seq, updates })
            .map_err(|_| ServeError::Closed)?;
        lane.next_seq = seq;
        self.stats.batches_enqueued.fetch_add(1, Ordering::Relaxed);
        Ok(n)
    }

    /// A point-in-time copy of every counter.
    pub fn stats_snapshot(&self) -> StatsSnapshot {
        let ep = self.epoch.pin();
        let s = &self.stats;
        StatsSnapshot {
            epoch: ep.epoch,
            epochs_published: self.epoch.epochs_published(),
            num_vertices: ep.graph.num_vertices() as u64,
            num_edges: ep.graph.num_edges() as u64,
            num_partitions: ep.num_partitions as u64,
            queries: s.queries.load(Ordering::Relaxed),
            coalesced: s.coalesced.load(Ordering::Relaxed),
            warm_hits: s.warm_hits.load(Ordering::Relaxed),
            cold_runs: s.cold_runs.load(Ordering::Relaxed),
            query_rounds: s.query_rounds.load(Ordering::Relaxed),
            query_push_rounds: s.query_push_rounds.load(Ordering::Relaxed),
            last_state_bytes: s.last_state_bytes.load(Ordering::Relaxed),
            batches_enqueued: s.batches_enqueued.load(Ordering::Relaxed),
            batches_applied: s.batches_applied.load(Ordering::Relaxed),
            updates_applied: s.updates_applied.load(Ordering::Relaxed),
            mutator_rounds: s.mutator_rounds.load(Ordering::Relaxed),
            mutator_errors: s.mutator_errors.load(Ordering::Relaxed),
            mutator_restarts: s.mutator_restarts.load(Ordering::Relaxed),
            poisoned_slots: s.poisoned_slots.load(Ordering::Relaxed),
            degraded: s.degraded.load(Ordering::Relaxed),
            wal_appends: s.wal_appends.load(Ordering::Relaxed),
            wal_bytes: s.wal_bytes.load(Ordering::Relaxed),
            wal_replayed: s.wal_replayed.load(Ordering::Relaxed),
            checkpoints_written: s.checkpoints_written.load(Ordering::Relaxed),
            connections_shed: s.connections_shed.load(Ordering::Relaxed),
        }
    }

    /// Stops the mutator after it drains every queued batch (writing a
    /// final checkpoint and compacting the WAL when durable), and joins
    /// it. Idempotent; queries keep working against the last epoch.
    pub fn shutdown(&self) {
        let lane = crate::lock_unpoisoned(&self.update_lane).take();
        if let Some(lane) = lane {
            let _ = lane.tx.send(MutatorMsg::Stop);
            // Dropping the lane closes the WAL fd before the mutator's
            // final compaction renames a fresh log over the path.
        }
        let handle = crate::lock_unpoisoned(&self.mutator).take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }

    /// Blocks until the mutator has applied every batch enqueued before
    /// this call (used by tests and the CI smoke to make "≥ 1 epoch
    /// published" deterministic).
    pub fn quiesce(&self) {
        loop {
            let s = self.stats_snapshot();
            if s.batches_applied + s.mutator_errors >= s.batches_enqueued {
                return;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

/// Applies one batch to every pipeline under a supervisor: on a panic
/// or engine error anywhere, every pipeline is restored to its
/// pre-batch exported state and the batch is skipped. Returns the total
/// re-convergence rounds on success, `None` on a (rolled-back) failure.
fn apply_supervised(
    pipelines: &mut [(WarmSpec, StreamingPipeline)],
    seq: u64,
    updates: &[EdgeUpdate],
    stats: &ServeStats,
    faults: &FaultPlan,
    build: PipelineBuild,
) -> Option<u64> {
    if let Some(stall) = faults.mutator_stall(seq) {
        std::thread::sleep(stall);
    }
    // Export the pre-batch state first: a panic can leave some
    // pipelines one batch ahead of others, and publishing (or building
    // on) that torn mix is exactly what the supervisor must prevent.
    let saved: Vec<ResumableState> = pipelines.iter().map(|(_, sp)| sp.export_state()).collect();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if faults.mutator_panic(seq) {
            panic!("injected fault: mutator panic before batch {seq}");
        }
        let mut rounds = 0u64;
        for (i, (_, sp)) in pipelines.iter_mut().enumerate() {
            if i > 0 && faults.mutator_panic_mid(seq) {
                panic!("injected fault: mutator panic mid-batch {seq}");
            }
            rounds += sp.apply_batch(updates)?.stats.rounds as u64;
        }
        Ok::<u64, EngineError>(rounds)
    }));
    match outcome {
        Ok(Ok(rounds)) => Some(rounds),
        failure => {
            match &failure {
                Ok(Err(e)) => {
                    eprintln!("gograph-serve: mutator batch {seq} failed ({e}); rolling back")
                }
                _ => eprintln!("gograph-serve: mutator panicked on batch {seq}; rolling back"),
            }
            for ((spec, sp), state) in pipelines.iter_mut().zip(saved) {
                match resume_warm_pipeline(*spec, state, build) {
                    Ok(fresh) => *sp = fresh,
                    // Resuming a just-exported state cannot ordinarily
                    // fail; if it does, the old pipeline (a valid
                    // state, never published) is the safest fallback.
                    Err(e) => eprintln!(
                        "gograph-serve: could not restore {} pipeline: {e}",
                        spec.alg.name()
                    ),
                }
            }
            stats.mutator_errors.fetch_add(1, Ordering::Relaxed);
            stats.mutator_restarts.fetch_add(1, Ordering::Relaxed);
            stats.degraded.store(1, Ordering::Relaxed);
            None
        }
    }
}

fn make_checkpoint(
    pipelines: &[(WarmSpec, StreamingPipeline)],
    seq: u64,
    epoch: u64,
    stats: &ServeStats,
) -> Checkpoint {
    Checkpoint {
        seq,
        epoch,
        updates_applied: stats.updates_applied.load(Ordering::Relaxed),
        mutator_rounds: stats.mutator_rounds.load(Ordering::Relaxed),
        pipelines: pipelines
            .iter()
            .map(|(spec, sp)| PipelineCheckpoint {
                warm: *spec,
                state: sp.export_state(),
            })
            .collect(),
    }
}

/// Writes a checkpoint; on success bumps the counter and (when given)
/// publishes the compaction watermark. A failed write is not fatal —
/// the WAL still covers everything since the last good checkpoint,
/// recovery just replays more.
fn checkpoint_now(
    d: &DurabilityConfig,
    pipelines: &[(WarmSpec, StreamingPipeline)],
    seq: u64,
    epoch: u64,
    stats: &ServeStats,
    compact_after: Option<&AtomicU64>,
) -> bool {
    match write_checkpoint(
        &d.checkpoint_path(),
        &make_checkpoint(pipelines, seq, epoch, stats),
    ) {
        Ok(()) => {
            stats.checkpoints_written.fetch_add(1, Ordering::Relaxed);
            if let Some(w) = compact_after {
                w.store(seq, Ordering::Release);
            }
            true
        }
        Err(e) => {
            eprintln!("gograph-serve: checkpoint write failed: {e}");
            false
        }
    }
}

fn mutator_loop(
    rx: Receiver<MutatorMsg>,
    mut ctx: MutatorCtx,
    cell: &EpochCell,
    stats: &ServeStats,
) {
    while let Ok(MutatorMsg::Batch { seq, updates }) = rx.recv() {
        ctx.last_seq = seq;
        let Some(rounds) = apply_supervised(
            &mut ctx.pipelines,
            seq,
            &updates,
            stats,
            &ctx.faults,
            ctx.build,
        ) else {
            continue;
        };
        ctx.epoch += 1;
        cell.publish(epoch_from_pipelines(ctx.epoch, &ctx.pipelines));
        stats.batches_applied.fetch_add(1, Ordering::Relaxed);
        stats
            .updates_applied
            .fetch_add(updates.len() as u64, Ordering::Relaxed);
        stats.mutator_rounds.fetch_add(rounds, Ordering::Relaxed);
        stats.degraded.store(0, Ordering::Relaxed);
        if let Some(d) = &ctx.durability {
            if d.checkpoint_every_batches > 0 && seq % d.checkpoint_every_batches == 0 {
                checkpoint_now(
                    d,
                    &ctx.pipelines,
                    seq,
                    ctx.epoch,
                    stats,
                    Some(&ctx.compact_after),
                );
            }
        }
    }
    // Clean shutdown: capture everything in a final checkpoint and
    // compact the WAL directly — the update lane is already closed, so
    // no append can race the rename.
    if let Some(d) = &ctx.durability {
        if checkpoint_now(d, &ctx.pipelines, ctx.last_seq, ctx.epoch, stats, None) {
            if let Err(e) = compact_wal(&d.wal_path(), ctx.last_seq) {
                eprintln!("gograph-serve: final WAL compaction failed: {e}");
            }
        }
    }
}

impl Drop for ServeCore {
    fn drop(&mut self) {
        // Last owner going away: stop the mutator if still running
        // (dropping the lane closes the channel and the WAL fd).
        let lane = crate::lock_unpoisoned(&self.update_lane).take();
        drop(lane);
        let handle = crate::lock_unpoisoned(&self.mutator).take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for ServeCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeCore")
            .field("stats", &self.stats_snapshot())
            .finish_non_exhaustive()
    }
}

fn build_warm_pipeline(
    graph: &CsrGraph,
    spec: WarmSpec,
    build: PipelineBuild,
) -> Result<StreamingPipeline, EngineError> {
    let b = StreamingPipeline::over(graph)
        .reorder_parallelism(build.reorder_threads)
        .partition_scoped_reorder(build.partition_scoped);
    match spec.alg {
        AlgSpec::Sssp => b.algorithm(Sssp::new(spec.source)).build(),
        AlgSpec::Bfs => b.algorithm(Bfs::new(spec.source)).build(),
        AlgSpec::Cc => b.algorithm(ConnectedComponents).build(),
        AlgSpec::PageRank => b.algorithm(PageRank::default()).build(),
        AlgSpec::Sswp => b.algorithm(Sswp::new(spec.source)).build(),
    }
}

/// Rebuilds a warm pipeline from an exported state — the restore half
/// of both supervision (rollback) and recovery (checkpoint resume).
fn resume_warm_pipeline(
    spec: WarmSpec,
    state: ResumableState,
    build: PipelineBuild,
) -> Result<StreamingPipeline, EngineError> {
    let b = StreamingPipeline::over(&state.graph)
        .reorder_parallelism(build.reorder_threads)
        .partition_scoped_reorder(build.partition_scoped);
    match spec.alg {
        AlgSpec::Sssp => b.algorithm(Sssp::new(spec.source)).resume(state),
        AlgSpec::Bfs => b.algorithm(Bfs::new(spec.source)).resume(state),
        AlgSpec::Cc => b.algorithm(ConnectedComponents).resume(state),
        AlgSpec::PageRank => b.algorithm(PageRank::default()).resume(state),
        AlgSpec::Sswp => b.algorithm(Sswp::new(spec.source)).resume(state),
    }
}

fn epoch_from_pipelines(epoch: u64, pipelines: &[(WarmSpec, StreamingPipeline)]) -> EpochState {
    let (_, first) = &pipelines[0];
    EpochState {
        epoch,
        // O(1): the CSR payloads are Arc-shared with the pipeline's
        // copy, which stops aliasing them the moment it next mutates.
        graph: first.graph().snapshot(),
        order: Arc::new(first.order().clone()),
        part_of: Arc::new(first.part_assignment().to_vec()),
        num_partitions: first.num_partitions(),
        warm: pipelines
            .iter()
            .map(|(spec, sp)| WarmEntry {
                alg: spec.alg,
                source: spec.source,
                states: Arc::new(sp.states().to_vec()),
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gograph_graph::generators::{planted_partition, PlantedPartitionConfig};
    use std::path::Path;

    fn test_graph() -> CsrGraph {
        planted_partition(PlantedPartitionConfig {
            num_vertices: 80,
            num_edges: 400,
            communities: 4,
            p_intra: 0.8,
            gamma: 2.4,
            seed: 11,
        })
    }

    fn core() -> Arc<ServeCore> {
        core_with(ServeConfig {
            warm: vec![
                WarmSpec::new(AlgSpec::Sssp, 0),
                WarmSpec::new(AlgSpec::Cc, 0),
            ],
            admission_window: Duration::ZERO,
            ..ServeConfig::default()
        })
    }

    fn core_with(config: ServeConfig) -> Arc<ServeCore> {
        ServeCore::start(&test_graph(), config).unwrap()
    }

    fn query(alg: AlgSpec, sources: Vec<VertexId>) -> QueryRequest {
        QueryRequest {
            alg,
            mode: ModeSpec::Async,
            sources,
            combine: false,
            max_epoch_lag: None,
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gograph-core-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Deterministic churn batches over the test graph.
    fn batches(count: usize) -> Vec<Vec<EdgeUpdate>> {
        (0..count as u32)
            .map(|k| {
                vec![
                    EdgeUpdate::insert(k % 80, (k * 7 + 13) % 80),
                    EdgeUpdate::insert((k * 3 + 1) % 80, (k * 11 + 29) % 80),
                    EdgeUpdate::remove(k % 80, (k + 1) % 80),
                ]
            })
            .collect()
    }

    fn assert_epochs_bit_identical(a: &EpochState, b: &EpochState) {
        assert_eq!(a.epoch, b.epoch, "epoch number");
        assert_eq!(a.graph, b.graph, "graph");
        assert_eq!(a.order, b.order, "processing order");
        assert_eq!(a.part_of, b.part_of, "partition assignment");
        assert_eq!(a.num_partitions, b.num_partitions, "partition count");
        assert_eq!(a.warm.len(), b.warm.len(), "warm entries");
        for (wa, wb) in a.warm.iter().zip(&b.warm) {
            assert_eq!(wa.alg, wb.alg);
            assert_eq!(wa.source, wb.source);
            let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(
                bits(&wa.states),
                bits(&wb.states),
                "warm states for {:?}",
                wa.alg
            );
        }
    }

    #[test]
    fn warm_query_matches_cold_run_exactly() {
        let core = core();
        let warm = core.execute_query(query(AlgSpec::Sssp, vec![0])).unwrap();
        assert!(warm.warm, "configured warm algorithm must warm-start");
        assert_eq!(warm.rounds, 1, "fixpoint re-check is one round");

        let cold = core.execute_query(query(AlgSpec::Sssp, vec![3])).unwrap();
        assert!(!cold.warm, "unconfigured source runs cold");

        // Max-norm warm results are bit-identical to the stored fixpoint.
        let ep = core.pin_epoch();
        let entry = ep.warm_for(AlgSpec::Sssp, 0).unwrap();
        assert_eq!(&*warm.states, &*entry.states);
    }

    #[test]
    fn updates_publish_epochs_and_queries_stay_pinned() {
        let core = core();
        let before = core.pin_epoch();
        assert_eq!(before.epoch, 0);

        core.enqueue_updates(vec![EdgeUpdate::insert(0, 50), EdgeUpdate::insert(50, 70)])
            .unwrap();
        core.quiesce();
        let snap = core.stats_snapshot();
        assert_eq!(snap.epochs_published, 1);
        assert_eq!(snap.batches_applied, 1);
        assert_eq!(snap.updates_applied, 2);
        assert_eq!(snap.degraded, 0);

        let after = core.pin_epoch();
        assert_eq!(after.epoch, 1);
        // The pre-update pin still sees the old graph.
        assert_eq!(before.graph.num_edges() + 2, after.graph.num_edges());
        core.shutdown();
    }

    #[test]
    fn global_queries_need_no_sources_and_sources_are_validated() {
        let core = core();
        let cc = core.execute_query(query(AlgSpec::Cc, vec![])).unwrap();
        assert!(cc.warm);
        assert!(cc.converged);

        let err = core.execute_query(query(AlgSpec::Sssp, vec![]));
        assert!(matches!(err, Err(ServeError::InvalidRequest(_))));

        let err = core.execute_query(query(AlgSpec::Bfs, vec![10_000]));
        assert!(matches!(err, Err(ServeError::InvalidRequest(_))));
    }

    #[test]
    fn enqueue_after_shutdown_is_refused() {
        let core = core();
        core.shutdown();
        let err = core.enqueue_updates(vec![EdgeUpdate::insert(0, 1)]);
        assert!(matches!(err, Err(ServeError::Closed)));
        // Queries still work against the last epoch.
        assert!(core
            .execute_query(QueryRequest {
                alg: AlgSpec::Cc,
                mode: ModeSpec::Sync,
                sources: vec![],
                combine: false,
                max_epoch_lag: None,
            })
            .is_ok());
    }

    #[test]
    fn stale_queries_are_rejected_then_served_after_catchup() {
        // Stall the mutator on every batch so the lag window is wide
        // open when the bounded-staleness query arrives.
        let core = core_with(ServeConfig {
            warm: vec![WarmSpec::new(AlgSpec::Sssp, 0)],
            admission_window: Duration::ZERO,
            faults: FaultPlan::seeded(5).with_mutator_stalls(1.0, Duration::from_millis(400)),
            ..ServeConfig::default()
        });
        core.enqueue_updates(vec![EdgeUpdate::insert(0, 42)])
            .unwrap();

        let mut req = query(AlgSpec::Sssp, vec![0]);
        req.max_epoch_lag = Some(0);
        match core.execute_query(req.clone()) {
            Err(ServeError::Stale { lag, max }) => {
                assert_eq!(lag, 1);
                assert_eq!(max, 0);
            }
            other => panic!("expected Stale, got {other:?}"),
        }
        // Unbounded queries are still answered (against the old epoch).
        assert_eq!(
            core.execute_query(query(AlgSpec::Sssp, vec![0]))
                .unwrap()
                .epoch
                .epoch,
            0
        );

        core.quiesce();
        let served = core.execute_query(req).unwrap();
        assert_eq!(served.epoch.epoch, 1, "after catch-up the bound holds");
        core.shutdown();
    }

    #[test]
    fn mutator_panics_are_rolled_back_and_publication_continues() {
        // Pick a seed whose plan panics on some batches and passes
        // others, so both paths are exercised deterministically.
        let total = 6u64;
        let (seed, plan) = (0..64)
            .find_map(|seed| {
                let plan = FaultPlan::seeded(seed).with_mutator_panics(0.4);
                let fails = (1..=total).filter(|&s| plan.mutator_panic(s)).count();
                (fails >= 1 && fails < total as usize && !plan.mutator_panic(total))
                    .then_some((seed, plan))
            })
            .expect("some seed under 64 mixes panics and successes");
        let failing: Vec<u64> = (1..=total).filter(|&s| plan.mutator_panic(s)).collect();

        let config = ServeConfig {
            warm: vec![
                WarmSpec::new(AlgSpec::Sssp, 0),
                WarmSpec::new(AlgSpec::Cc, 0),
            ],
            admission_window: Duration::ZERO,
            ..ServeConfig::default()
        };
        let faulty = core_with(ServeConfig {
            faults: FaultPlan::seeded(seed).with_mutator_panics(0.4),
            ..config.clone()
        });
        let clean = core_with(config);

        // The faulty core gets every batch; the clean core only the
        // ones the plan lets through. Rollback must make them agree.
        for (i, batch) in batches(total as usize).into_iter().enumerate() {
            let seq = i as u64 + 1;
            faulty.enqueue_updates(batch.clone()).unwrap();
            if !failing.contains(&seq) {
                clean.enqueue_updates(batch).unwrap();
            }
        }
        faulty.quiesce();
        clean.quiesce();

        let s = faulty.stats_snapshot();
        assert_eq!(s.mutator_errors, failing.len() as u64);
        assert_eq!(s.mutator_restarts, failing.len() as u64);
        assert_eq!(s.batches_applied, total - failing.len() as u64);
        assert_eq!(s.epochs_published, s.batches_applied);
        assert_eq!(s.degraded, 0, "last batch succeeded; flag must clear");

        let fa = faulty.pin_epoch();
        let cl = clean.pin_epoch();
        // Epoch numbers differ only by the skipped batches' numbering.
        assert_eq!(fa.epoch, cl.epoch);
        assert_epochs_bit_identical(&fa, &cl);

        // Queries keep flowing on the faulty core.
        assert!(
            faulty
                .execute_query(query(AlgSpec::Sssp, vec![0]))
                .unwrap()
                .converged
        );
        faulty.shutdown();
        clean.shutdown();
    }

    #[test]
    fn durable_shutdown_recovers_bit_identically_with_empty_replay() {
        let dir = tmp_dir("clean-shutdown");
        let config = ServeConfig {
            warm: vec![WarmSpec::new(AlgSpec::Sssp, 0)],
            admission_window: Duration::ZERO,
            durability: Some(DurabilityConfig::new(&dir)),
            ..ServeConfig::default()
        };
        let core = ServeCore::start(&test_graph(), config.clone()).unwrap();
        for batch in batches(5) {
            core.enqueue_updates(batch).unwrap();
        }
        core.quiesce();
        let live = core.pin_epoch();
        let live_stats = core.stats_snapshot();
        core.shutdown();
        drop(core);

        // A clean shutdown checkpointed everything: recovery resumes
        // from the checkpoint and replays nothing.
        let recovered = ServeCore::recover(config).unwrap();
        let s = recovered.stats_snapshot();
        assert_eq!(s.wal_replayed, 0, "final checkpoint covers the WAL");
        assert_eq!(s.batches_enqueued, live_stats.batches_enqueued);
        assert_eq!(s.batches_applied, live_stats.batches_applied);
        assert_eq!(s.updates_applied, live_stats.updates_applied);
        assert_eq!(s.epochs_published, live_stats.epochs_published);
        assert_epochs_bit_identical(&recovered.pin_epoch(), &live);

        // The recovered service accepts further updates and queries.
        recovered
            .enqueue_updates(vec![EdgeUpdate::insert(1, 60)])
            .unwrap();
        recovered.quiesce();
        assert_eq!(recovered.pin_epoch().epoch, live.epoch + 1);
        recovered.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_recovery_replays_wal_tail_bit_identically() {
        let dir = tmp_dir("crash");
        let crash_copy = tmp_dir("crash-copy");
        let config = |d: &Path| ServeConfig {
            warm: vec![
                WarmSpec::new(AlgSpec::Sssp, 0),
                WarmSpec::new(AlgSpec::Cc, 0),
            ],
            admission_window: Duration::ZERO,
            durability: Some(DurabilityConfig {
                checkpoint_every_batches: 3,
                ..DurabilityConfig::new(d)
            }),
            ..ServeConfig::default()
        };
        let core = ServeCore::start(&test_graph(), config(&dir)).unwrap();
        for batch in batches(7) {
            core.enqueue_updates(batch).unwrap();
        }
        core.quiesce();
        let live = core.pin_epoch();
        let live_stats = core.stats_snapshot();

        // Simulate kill -9 at this instant: snapshot the durable dir
        // while the process is still running (every acked batch is on
        // disk — SyncPolicy::EveryBatch), then never shut down cleanly.
        for f in ["updates.wal", "epoch.ckpt"] {
            std::fs::copy(dir.join(f), crash_copy.join(f)).unwrap();
        }

        let recovered = ServeCore::recover(config(&crash_copy)).unwrap();
        let s = recovered.stats_snapshot();
        assert!(s.wal_replayed >= 1, "batches past the checkpoint replay");
        assert_eq!(s.batches_enqueued, live_stats.batches_enqueued);
        assert_eq!(s.batches_applied, live_stats.batches_applied);
        assert_eq!(s.updates_applied, live_stats.updates_applied);
        assert_eq!(s.mutator_rounds, live_stats.mutator_rounds);
        assert_eq!(s.epochs_published, live_stats.epochs_published);
        assert_epochs_bit_identical(&recovered.pin_epoch(), &live);

        // And the recovered core answers queries identically.
        let qa = core.execute_query(query(AlgSpec::Sssp, vec![7])).unwrap();
        let qb = recovered
            .execute_query(query(AlgSpec::Sssp, vec![7]))
            .unwrap();
        let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&qa.states), bits(&qb.states));

        core.shutdown();
        recovered.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&crash_copy);
    }

    #[test]
    fn fresh_start_refuses_existing_durable_state_and_recover_or_start_picks() {
        let dir = tmp_dir("refuse");
        let config = ServeConfig {
            warm: vec![WarmSpec::new(AlgSpec::Cc, 0)],
            admission_window: Duration::ZERO,
            durability: Some(DurabilityConfig::new(&dir)),
            ..ServeConfig::default()
        };
        let g = test_graph();
        let (core, recovered) = ServeCore::recover_or_start(&g, config.clone()).unwrap();
        assert!(!recovered, "empty dir boots fresh");
        core.enqueue_updates(vec![EdgeUpdate::insert(0, 9)])
            .unwrap();
        core.quiesce();
        core.shutdown();
        drop(core);

        let err = ServeCore::start(&g, config.clone());
        assert!(
            matches!(err, Err(ServeError::InvalidRequest(_))),
            "fresh start over durable state must refuse"
        );
        let (core, recovered) = ServeCore::recover_or_start(&g, config).unwrap();
        assert!(recovered, "existing checkpoint recovers");
        assert_eq!(core.pin_epoch().epoch, 1);
        core.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
