//! The in-process service core: epoch-pinned query execution on reader
//! threads, a single supervised mutator thread publishing epochs, and
//! shared counters for the stats reply.
//!
//! Transport-agnostic on purpose — [`crate::server`] wraps it in TCP,
//! tests drive it directly.
//!
//! # Durability and crash recovery
//!
//! With a [`DurabilityConfig`], every admitted update batch is appended
//! to a write-ahead log (see [`crate::wal`]) **before** the enqueue
//! call returns — the client's ack implies the batch is on disk. The
//! mutator periodically captures its full decision state in an atomic
//! checkpoint (see [`crate::checkpoint`]); [`ServeCore::recover`]
//! resumes from the last checkpoint and replays the WAL tail, landing
//! on **bit-identical** epochs to the uninterrupted run because the
//! streaming pipeline is deterministic and the checkpoint carries the
//! insertion order's exact float-key state.
//!
//! # Mutator supervision
//!
//! A panicking or failing batch application no longer halts epoch
//! publication: the mutator exports each pipeline's resumable state
//! before applying a batch, catches panics, and on any failure restores
//! every pipeline to the pre-batch state. The failed batch is skipped
//! (deterministically — a recovery replaying the same batches under the
//! same [`FaultPlan`] skips the same ones), `mutator_restarts` counts
//! the rollback, and the `degraded` flag stays raised until the next
//! successful publish.
//!
//! # Replication
//!
//! A core runs as the [`Role::Primary`] (accepts updates, owns the WAL)
//! or as a [`Role::Follower`] (replays the primary's WAL records through
//! the *same* supervised apply path — a follower is a crash recovery
//! that never stops replaying). Because batch application and batch
//! *failure* are deterministic, a healthy follower's epochs are
//! bit-identical to the primary's; both sides record a per-pipeline
//! state fingerprint after every settled batch, and the primary
//! compares the follower's fingerprints on every ack — a mismatch is a
//! detected divergence (typed error + counter), repaired by re-syncing
//! the follower from the primary's checkpoint. WAL compaction on the
//! primary is clamped to the slowest live follower's ack, with a
//! max-lag escape hatch that evicts a dead follower to checkpoint
//! re-sync instead of letting it pin the log forever.

use crate::admission::{Admission, AdmissionQueue};
use crate::checkpoint::{
    delta_path, diff_checkpoint, read_checkpoint_chain, remove_deltas, write_checkpoint,
    write_delta, Checkpoint, PipelineCheckpoint,
};
use crate::epoch::{EpochCell, EpochState, WarmEntry};
use crate::fault::{splitmix64, FaultPlan};
use crate::spec::{AlgSpec, ModeSpec};
use crate::wal::{
    compact_wal, read_wal, read_wal_segment, truncate_wal, SyncPolicy, TailStatus, WalWriter,
};
use gograph_engine::{
    Bfs, ConnectedComponents, EngineError, PageRank, Pipeline, ResumableState, Sssp, Sswp,
    StreamingPipeline, WarmStart,
};
use gograph_graph::{CsrGraph, EdgeUpdate, VertexId};
use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Sentinel in the compaction watermark meaning "nothing pending".
const NO_COMPACTION: u64 = u64::MAX;

/// An algorithm the mutator keeps converged across epochs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WarmSpec {
    /// The algorithm to maintain.
    pub alg: AlgSpec,
    /// Source vertex for sourced algorithms (ignored by global ones).
    pub source: VertexId,
}

impl WarmSpec {
    /// A warm spec for `alg` from `source`.
    pub fn new(alg: AlgSpec, source: VertexId) -> WarmSpec {
        WarmSpec { alg, source }
    }
}

/// Where and how the service persists update batches and checkpoints.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory holding the log (`updates.wal`) and the checkpoint
    /// (`epoch.ckpt`). Created on boot if missing.
    pub dir: PathBuf,
    /// Checkpoint (and schedule a WAL compaction) every this many
    /// assigned sequence numbers. 0 disables periodic checkpoints —
    /// one is still written at boot and on clean shutdown.
    pub checkpoint_every_batches: u64,
    /// How eagerly WAL appends reach stable storage.
    pub sync: SyncPolicy,
    /// When true, periodic checkpoints write only the state changed
    /// since the previous one (sparse patches + the applied batches),
    /// cutting the fsync burst at high update rates. Boot and shutdown
    /// checkpoints are always full; recovery chains base + deltas and
    /// is bit-identical to full-checkpoint recovery.
    pub delta_checkpoints: bool,
    /// With delta checkpoints: rebase onto a fresh full checkpoint
    /// after this many consecutive deltas (bounds the recovery chain).
    /// 0 forces every checkpoint full.
    pub full_rebase_every: u32,
}

impl DurabilityConfig {
    /// Durability under `dir` with the defaults: checkpoint every 16
    /// batches, fsync every append, full (non-delta) checkpoints.
    pub fn new(dir: impl Into<PathBuf>) -> DurabilityConfig {
        DurabilityConfig {
            dir: dir.into(),
            checkpoint_every_batches: 16,
            sync: SyncPolicy::EveryBatch,
            delta_checkpoints: false,
            full_rebase_every: 4,
        }
    }

    /// Path of the write-ahead log.
    pub fn wal_path(&self) -> PathBuf {
        self.dir.join("updates.wal")
    }

    /// Path of the epoch checkpoint.
    pub fn checkpoint_path(&self) -> PathBuf {
        self.dir.join("epoch.ckpt")
    }
}

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Algorithms the mutator maintains warm across epochs. When empty,
    /// a single global CC pipeline is used so the order still gets
    /// maintained.
    pub warm: Vec<WarmSpec>,
    /// How long an admission-batch leader holds its slot open for
    /// followers. Zero disables request combining.
    pub admission_window: Duration,
    /// Reorder parallelism handed to the mutator's pipelines.
    pub reorder_threads: usize,
    /// Whether the mutator uses partition-scoped re-reordering.
    pub partition_scoped: bool,
    /// When set, updates are write-ahead logged and epochs checkpointed
    /// so the service can [`recover`](ServeCore::recover) after a
    /// crash. `None` keeps the pre-durability in-memory behavior.
    pub durability: Option<DurabilityConfig>,
    /// Injected faults (tests and chaos drills; [`FaultPlan::none`]
    /// in production).
    pub faults: FaultPlan,
    /// Primary-side escape hatch for WAL compaction: a follower whose
    /// ack trails a proposed compaction watermark by more than this
    /// many batches is marked for checkpoint re-sync instead of
    /// pinning the log (a dead follower must not hold the WAL open
    /// forever).
    pub max_follower_lag: u64,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            warm: vec![
                WarmSpec::new(AlgSpec::Cc, 0),
                WarmSpec::new(AlgSpec::Sssp, 0),
            ],
            admission_window: Duration::from_millis(2),
            reorder_threads: 1,
            partition_scoped: true,
            durability: None,
            faults: FaultPlan::none(),
            max_follower_lag: 1024,
        }
    }
}

/// Errors surfaced to clients.
#[derive(Debug)]
pub enum ServeError {
    /// The request was malformed (bad algorithm, missing sources,
    /// out-of-range vertex, ...).
    InvalidRequest(String),
    /// The engine failed to execute the query.
    Engine(EngineError),
    /// The service is shutting down.
    Closed,
    /// The current snapshot lags the newest admitted batch by more than
    /// the query's `max_epoch_lag` bound.
    Stale {
        /// Batches admitted but not yet reflected in an epoch.
        lag: u64,
        /// The bound the query asked for.
        max: u64,
    },
    /// The durability layer failed (WAL append, checkpoint I/O, ...).
    Io(std::io::Error),
    /// A write (or a replication request only the primary can serve)
    /// reached a follower. Retryable against the primary.
    NotPrimary,
    /// A follower's probe fingerprints disagree with the primary's at
    /// the same settled sequence number: its replayed state has
    /// diverged and it must re-sync from a checkpoint.
    Divergent {
        /// The sequence watermark the fingerprints were compared at.
        seq: u64,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::InvalidRequest(m) => write!(f, "invalid request: {m}"),
            ServeError::Engine(e) => write!(f, "engine error: {e}"),
            ServeError::Closed => write!(f, "service is shutting down"),
            ServeError::Stale { lag, max } => {
                write!(f, "snapshot lags by {lag} batches (bound {max})")
            }
            ServeError::Io(e) => write!(f, "durability I/O error: {e}"),
            ServeError::NotPrimary => write!(f, "this node is not the primary"),
            ServeError::Divergent { seq } => {
                write!(f, "replica state diverged at seq {seq}; re-sync required")
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<EngineError> for ServeError {
    fn from(e: EngineError) -> ServeError {
        ServeError::Engine(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> ServeError {
        ServeError::Io(e)
    }
}

/// One query as the core sees it (the wire layer decodes into this).
#[derive(Debug, Clone)]
pub struct QueryRequest {
    /// Which algorithm to run.
    pub alg: AlgSpec,
    /// Execution mode.
    pub mode: ModeSpec,
    /// Source vertices (exactly the client's own; admission may widen).
    pub sources: Vec<VertexId>,
    /// Whether this request may be coalesced with concurrent
    /// same-algorithm requests into one multi-source run.
    pub combine: bool,
    /// Bounded staleness: reject (typed, retryable) instead of
    /// answering when more than this many admitted batches are not yet
    /// reflected in the pinned epoch. `None` accepts any staleness.
    pub max_epoch_lag: Option<u64>,
}

/// A finished query: the pinned epoch it ran against plus the full
/// result. Shared by every coalesced follower via `Arc`.
#[derive(Debug)]
pub struct QueryOutcome {
    /// The epoch snapshot the query executed against (still pinned as
    /// long as this outcome is alive).
    pub epoch: Arc<EpochState>,
    /// Algorithm that ran.
    pub alg: AlgSpec,
    /// Mode it ran under.
    pub mode: ModeSpec,
    /// The *effective* source set — the admitted union when the run was
    /// coalesced, the client's own sources otherwise. Replies carry
    /// this so any client can reproduce the exact run.
    pub effective_sources: Vec<VertexId>,
    /// How many client requests this one execution served.
    pub admitted: usize,
    /// Whether the run warm-started from the epoch's converged states.
    pub warm: bool,
    /// Rounds the engine executed.
    pub rounds: usize,
    /// Rounds executed in the push direction (direction-optimizing
    /// engines; 0 otherwise).
    pub push_rounds: usize,
    /// Engine state memory for the run.
    pub state_memory_bytes: usize,
    /// Whether the run converged within the round cap.
    pub converged: bool,
    /// Engine-side runtime of the iteration loop.
    pub runtime: Duration,
    /// Final per-vertex states (in original vertex ids).
    pub states: Arc<Vec<f64>>,
}

/// Shared atomic counters, snapshotted into the wire stats reply.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Queries answered (leaders and followers alike).
    pub queries: AtomicU64,
    /// Queries answered from another leader's execution.
    pub coalesced: AtomicU64,
    /// Executions that warm-started from epoch warm state.
    pub warm_hits: AtomicU64,
    /// Executions that ran cold.
    pub cold_runs: AtomicU64,
    /// Total rounds across query executions.
    pub query_rounds: AtomicU64,
    /// Total push-direction rounds across query executions.
    pub query_push_rounds: AtomicU64,
    /// State bytes of the most recent query execution.
    pub last_state_bytes: AtomicU64,
    /// Update batches accepted into the queue.
    pub batches_enqueued: AtomicU64,
    /// Update batches the mutator applied (== epochs published).
    pub batches_applied: AtomicU64,
    /// Individual edge updates applied.
    pub updates_applied: AtomicU64,
    /// Total rounds the mutator's warm pipelines spent re-converging.
    pub mutator_rounds: AtomicU64,
    /// Update batches the mutator failed to apply (skipped after
    /// rollback).
    pub mutator_errors: AtomicU64,
    /// Times the supervisor rolled the mutator back to its pre-batch
    /// state after a panic or engine error.
    pub mutator_restarts: AtomicU64,
    /// Admission slots poisoned because their leader's execution
    /// failed (followers retried solo).
    pub poisoned_slots: AtomicU64,
    /// 1 while the last batch application failed and no epoch has been
    /// published since; 0 once publication resumes.
    pub degraded: AtomicU64,
    /// Batches appended to the write-ahead log.
    pub wal_appends: AtomicU64,
    /// Bytes appended to the write-ahead log.
    pub wal_bytes: AtomicU64,
    /// WAL records replayed during the last recovery.
    pub wal_replayed: AtomicU64,
    /// Checkpoints written (boot, periodic, and shutdown).
    pub checkpoints_written: AtomicU64,
    /// Connections refused at accept time because the cap was reached.
    pub connections_shed: AtomicU64,
    /// WAL segments shipped to followers (primary side).
    pub repl_segments_shipped: AtomicU64,
    /// WAL records shipped inside those segments (primary side).
    pub repl_records_shipped: AtomicU64,
    /// Follower acks received (primary side).
    pub repl_acks: AtomicU64,
    /// Worst live-follower lag in batches behind the settled sequence
    /// number, at the last subscribe/ack (primary side; gauge).
    pub repl_follower_lag: AtomicU64,
    /// Follower fingerprint mismatches detected (primary side).
    pub repl_divergences: AtomicU64,
    /// Checkpoint re-syncs: served with `resync` set on the primary,
    /// performed on the follower.
    pub repl_resyncs: AtomicU64,
    /// Last sequence number this node settled and fingerprinted
    /// (gauge; both roles).
    pub repl_last_seq: AtomicU64,
    /// The primary's settled sequence number as of the last received
    /// segment (follower side; gauge — the bounded-staleness
    /// reference point).
    pub repl_primary_seq: AtomicU64,
    /// Checkpoints written as deltas against the previous one.
    pub delta_checkpoints_written: AtomicU64,
    /// Total bytes of checkpoint files written (full and delta).
    pub checkpoint_bytes_written: AtomicU64,
}

/// A plain-value copy of every counter plus epoch/graph facts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Current epoch number.
    pub epoch: u64,
    /// Epochs published since bootstrap.
    pub epochs_published: u64,
    /// Vertices in the current epoch's graph.
    pub num_vertices: u64,
    /// Edges in the current epoch's graph.
    pub num_edges: u64,
    /// Partitions tracked by the current epoch.
    pub num_partitions: u64,
    /// Queries answered.
    pub queries: u64,
    /// Queries served from a coalesced execution.
    pub coalesced: u64,
    /// Warm-started executions.
    pub warm_hits: u64,
    /// Cold executions.
    pub cold_runs: u64,
    /// Total query rounds.
    pub query_rounds: u64,
    /// Total query push rounds.
    pub query_push_rounds: u64,
    /// State bytes of the most recent execution.
    pub last_state_bytes: u64,
    /// Update batches enqueued.
    pub batches_enqueued: u64,
    /// Update batches applied.
    pub batches_applied: u64,
    /// Individual updates applied.
    pub updates_applied: u64,
    /// Mutator re-convergence rounds.
    pub mutator_rounds: u64,
    /// Mutator failures (skipped batches).
    pub mutator_errors: u64,
    /// Supervisor rollbacks of the mutator.
    pub mutator_restarts: u64,
    /// Admission slots poisoned by failed leaders.
    pub poisoned_slots: u64,
    /// 1 while publication is stalled on a failed batch.
    pub degraded: u64,
    /// WAL appends.
    pub wal_appends: u64,
    /// WAL bytes written.
    pub wal_bytes: u64,
    /// WAL records replayed at recovery.
    pub wal_replayed: u64,
    /// Checkpoints written.
    pub checkpoints_written: u64,
    /// Connections shed at the accept cap.
    pub connections_shed: u64,
    /// WAL segments shipped to followers.
    pub repl_segments_shipped: u64,
    /// WAL records shipped to followers.
    pub repl_records_shipped: u64,
    /// Follower acks received.
    pub repl_acks: u64,
    /// Worst live-follower lag behind the settled seq (gauge).
    pub repl_follower_lag: u64,
    /// Follower divergences detected by probe comparison.
    pub repl_divergences: u64,
    /// Checkpoint re-syncs (served or performed).
    pub repl_resyncs: u64,
    /// Last settled-and-fingerprinted sequence number (gauge).
    pub repl_last_seq: u64,
    /// Last known primary settled seq (follower gauge).
    pub repl_primary_seq: u64,
    /// Delta checkpoints written.
    pub delta_checkpoints_written: u64,
    /// Checkpoint bytes written (full + delta).
    pub checkpoint_bytes_written: u64,
}

/// Which side of a replicated pair this node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Accepts updates, owns the WAL, streams it to followers.
    Primary,
    /// Replays the primary's WAL through the supervised apply path;
    /// serves reads, refuses writes (until promoted).
    Follower,
}

const ROLE_PRIMARY: u8 = 0;
const ROLE_FOLLOWER: u8 = 1;

/// Probe-history entries kept per node (one per settled batch).
const PROBE_HISTORY: usize = 1024;

/// One registered follower, as the primary tracks it.
#[derive(Debug, Default)]
struct FollowerEntry {
    acked_seq: u64,
    needs_resync: bool,
}

/// One quiesced fingerprint record: the per-pipeline state hashes
/// after the batch with sequence number `seq` settled.
#[derive(Debug, Clone)]
struct ProbeEntry {
    seq: u64,
    epoch: u64,
    fingerprints: Vec<u64>,
}

/// Shared replication bookkeeping: the role, the follower registry,
/// the bounded probe-fingerprint history, and the compaction floor.
#[derive(Debug)]
struct ReplicationState {
    role: AtomicU8,
    followers: Mutex<HashMap<u64, FollowerEntry>>,
    probes: Mutex<VecDeque<ProbeEntry>>,
    /// Seq through which the WAL has been compacted: records at or
    /// below it may no longer be on disk.
    compacted_through: AtomicU64,
    /// Generation counter bumped by the mutator after each completed
    /// re-sync ([`ServeCore::resync_from`] blocks on it).
    resync_done: AtomicU64,
}

impl ReplicationState {
    fn new(role: Role) -> ReplicationState {
        ReplicationState {
            role: AtomicU8::new(match role {
                Role::Primary => ROLE_PRIMARY,
                Role::Follower => ROLE_FOLLOWER,
            }),
            followers: Mutex::new(HashMap::new()),
            probes: Mutex::new(VecDeque::new()),
            compacted_through: AtomicU64::new(0),
            resync_done: AtomicU64::new(0),
        }
    }

    fn role(&self) -> Role {
        if self.role.load(Ordering::Acquire) == ROLE_FOLLOWER {
            Role::Follower
        } else {
            Role::Primary
        }
    }

    fn record_probe(&self, seq: u64, epoch: u64, fingerprints: Vec<u64>) {
        let mut probes = crate::lock_unpoisoned(&self.probes);
        if probes.len() == PROBE_HISTORY {
            probes.pop_front();
        }
        probes.push_back(ProbeEntry {
            seq,
            epoch,
            fingerprints,
        });
    }

    fn probe_at(&self, at_seq: Option<u64>) -> Option<ProbeEntry> {
        let probes = crate::lock_unpoisoned(&self.probes);
        match at_seq {
            None => probes.back().cloned(),
            Some(s) => probes.iter().rev().find(|p| p.seq == s).cloned(),
        }
    }

    /// Clamps a proposed compaction watermark to the acks of live
    /// followers. A follower trailing `proposed` by more than
    /// `max_lag` is marked for checkpoint re-sync instead of pinning
    /// the log (the escape hatch for dead followers).
    fn clamp_watermark(&self, proposed: u64, max_lag: u64) -> u64 {
        let mut w = proposed;
        let mut followers = crate::lock_unpoisoned(&self.followers);
        for entry in followers.values_mut() {
            if entry.needs_resync {
                continue; // re-syncs from a checkpoint; needs no WAL records
            }
            if proposed.saturating_sub(entry.acked_seq) > max_lag {
                entry.needs_resync = true;
            } else {
                w = w.min(entry.acked_seq);
            }
        }
        w
    }
}

/// The payload of one shipped WAL segment: `(seq, updates)` pairs in
/// ascending seq order, exactly as the primary's mutator settled them.
pub type SegmentRecords = Vec<(u64, Vec<EdgeUpdate>)>;

/// A fingerprint probe answer: the per-pipeline state hashes this node
/// recorded when `seq` settled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeReport {
    /// The sequence watermark the fingerprints were captured at.
    pub seq: u64,
    /// The epoch counter at that watermark.
    pub epoch: u64,
    /// Whether this node still holds a record at the requested
    /// watermark (the history is bounded; old entries age out).
    pub known: bool,
    /// One hash per warm pipeline, in `ServeConfig::warm` order.
    pub fingerprints: Vec<u64>,
}

/// A 64-bit fingerprint of one pipeline's externally visible state:
/// graph shape, exact converged-state bits, and the processing order.
/// Two pipelines that replayed the same batches from the same start
/// hash identically (the bit-identical-replay guarantee); any
/// divergence flips the hash with overwhelming probability.
fn pipeline_fingerprint(sp: &StreamingPipeline) -> u64 {
    let mut h: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut mix = |x: u64| h = splitmix64(h ^ x);
    mix(sp.graph().num_vertices() as u64);
    mix(sp.graph().num_edges() as u64);
    for &s in sp.states() {
        mix(s.to_bits());
    }
    for &v in sp.order().order() {
        mix(v as u64);
    }
    h
}

fn fingerprints(pipelines: &[(WarmSpec, StreamingPipeline)]) -> Vec<u64> {
    pipelines
        .iter()
        .map(|(_, sp)| pipeline_fingerprint(sp))
        .collect()
}

enum MutatorMsg {
    Batch { seq: u64, updates: Vec<EdgeUpdate> },
    Resync(Box<Checkpoint>),
    Stop,
}

/// The enqueue side of the update path: sequence assignment, the WAL
/// writer (owner of the log's fd), and the mutator channel — all under
/// one lock so "append, then send, then ack" is a single atomic step
/// from any client's point of view.
struct UpdateLane {
    tx: Sender<MutatorMsg>,
    next_seq: u64,
    wal: Option<WalWriter>,
}

/// Pipeline construction knobs threaded to the supervisor so restored
/// pipelines are built exactly like the originals.
#[derive(Debug, Clone, Copy)]
struct PipelineBuild {
    reorder_threads: usize,
    partition_scoped: bool,
}

impl PipelineBuild {
    fn from_config(config: &ServeConfig) -> PipelineBuild {
        PipelineBuild {
            reorder_threads: config.reorder_threads,
            partition_scoped: config.partition_scoped,
        }
    }
}

/// Everything the mutator thread owns.
struct MutatorCtx {
    pipelines: Vec<(WarmSpec, StreamingPipeline)>,
    build: PipelineBuild,
    faults: FaultPlan,
    durability: Option<DurabilityConfig>,
    compact_after: Arc<AtomicU64>,
    repl: Arc<ReplicationState>,
    max_follower_lag: u64,
    epoch: u64,
    last_seq: u64,
    /// Base of the next delta checkpoint (kept only when delta
    /// checkpoints are enabled — it holds full exported state).
    ckpt_base: Option<Checkpoint>,
    /// Successfully applied batches since `ckpt_base` was captured.
    pending_batches: Vec<(u64, Vec<EdgeUpdate>)>,
    /// Delta files written since the last full rebase.
    deltas_since_rebase: u32,
}

/// Delta-checkpoint bookkeeping carried from `start`/`recover` into
/// the mutator (empty for followers and non-delta configurations).
#[derive(Default)]
struct RecoverySeed {
    ckpt_base: Option<Checkpoint>,
    pending_batches: Vec<(u64, Vec<EdgeUpdate>)>,
    deltas_since_rebase: u32,
}

/// The service core. `Arc<ServeCore>` is shared by every connection
/// handler; all methods take `&self`.
pub struct ServeCore {
    epoch: Arc<EpochCell>,
    admission: AdmissionQueue<(u8, u8), Arc<QueryOutcome>>,
    stats: Arc<ServeStats>,
    update_lane: Mutex<Option<UpdateLane>>,
    mutator: Mutex<Option<JoinHandle<()>>>,
    compact_after: Arc<AtomicU64>,
    durability: Option<DurabilityConfig>,
    faults: FaultPlan,
    repl: Arc<ReplicationState>,
    max_follower_lag: u64,
}

impl ServeCore {
    /// Boots the service over `graph`: builds one warm
    /// [`StreamingPipeline`] per configured algorithm (cold bootstrap
    /// runs happen here), publishes the bootstrap epoch, and starts the
    /// mutator thread.
    ///
    /// With durability configured, a fresh start refuses to run over
    /// existing durable state (that is what [`recover`](Self::recover)
    /// is for); it writes the bootstrap checkpoint and opens the WAL
    /// before accepting any update.
    pub fn start(graph: &CsrGraph, config: ServeConfig) -> Result<Arc<ServeCore>, ServeError> {
        let warm_specs = if config.warm.is_empty() {
            vec![WarmSpec::new(AlgSpec::Cc, 0)]
        } else {
            config.warm.clone()
        };
        for w in &warm_specs {
            if w.alg.needs_sources() && (w.source as usize) >= graph.num_vertices() {
                return Err(ServeError::InvalidRequest(format!(
                    "warm source {} out of range for {} vertices",
                    w.source,
                    graph.num_vertices()
                )));
            }
        }

        let build = PipelineBuild::from_config(&config);
        let mut pipelines: Vec<(WarmSpec, StreamingPipeline)> =
            Vec::with_capacity(warm_specs.len());
        for spec in &warm_specs {
            let sp = build_warm_pipeline(graph, *spec, build)?;
            pipelines.push((*spec, sp));
        }

        let stats = Arc::new(ServeStats::default());
        let mut wal = None;
        let mut seed = RecoverySeed::default();
        if let Some(d) = &config.durability {
            std::fs::create_dir_all(&d.dir)?;
            if d.checkpoint_path().exists() || d.wal_path().exists() {
                return Err(ServeError::InvalidRequest(format!(
                    "durable state already present in {}; recover instead of starting fresh",
                    d.dir.display()
                )));
            }
            // Bootstrap checkpoint: recovery always has a base state,
            // even if the process dies before the first periodic one.
            let ck = make_checkpoint(&pipelines, 0, 0, &stats);
            let bytes = write_checkpoint(&d.checkpoint_path(), &ck)?;
            stats.checkpoints_written.fetch_add(1, Ordering::Relaxed);
            stats
                .checkpoint_bytes_written
                .fetch_add(bytes, Ordering::Relaxed);
            if d.delta_checkpoints {
                seed.ckpt_base = Some(ck);
            }
            wal = Some(WalWriter::open(&d.wal_path(), d.sync)?);
        }

        let bootstrap = epoch_from_pipelines(0, &pipelines);
        Self::launch(
            Arc::new(EpochCell::new(bootstrap)),
            pipelines,
            stats,
            config,
            build,
            wal,
            0,
            0,
            Role::Primary,
            seed,
        )
    }

    /// Rebuilds the service from its durable state: resumes every warm
    /// pipeline from the last checkpoint, truncates any torn WAL tail,
    /// replays the records the checkpoint does not cover, and restores
    /// the counters — the recovered epoch is bit-identical to the
    /// epoch the crashed process would have served.
    pub fn recover(config: ServeConfig) -> Result<Arc<ServeCore>, ServeError> {
        let d = config.durability.clone().ok_or_else(|| {
            ServeError::InvalidRequest("recover requires a durability config".to_string())
        })?;
        // Chained read: the base checkpoint plus any delta files a
        // delta-checkpointing run left behind (stale deltas from a
        // crashed rebase are detected by their base_seq and ignored).
        let (ck, chained) = read_checkpoint_chain(&d.checkpoint_path())?.ok_or_else(|| {
            ServeError::InvalidRequest(format!(
                "no checkpoint in {}; nothing to recover",
                d.dir.display()
            ))
        })?;
        if ck.pipelines.is_empty() {
            return Err(ServeError::InvalidRequest(
                "checkpoint carries no pipelines".to_string(),
            ));
        }
        let mut seed = RecoverySeed {
            ckpt_base: d.delta_checkpoints.then(|| ck.clone()),
            pending_batches: Vec::new(),
            deltas_since_rebase: chained,
        };

        let build = PipelineBuild::from_config(&config);
        let mut pipelines: Vec<(WarmSpec, StreamingPipeline)> =
            Vec::with_capacity(ck.pipelines.len());
        for p in ck.pipelines {
            let sp = resume_warm_pipeline(p.warm, p.state, build)?;
            pipelines.push((p.warm, sp));
        }

        // Only the longest intact WAL prefix is replayable; anything
        // past it is a torn (never acked) append and is discarded.
        let wal_path = d.wal_path();
        let contents = read_wal(&wal_path)?;
        if contents.tail == TailStatus::CorruptTail {
            truncate_wal(&wal_path, contents.valid_bytes)?;
        }

        let stats = Arc::new(ServeStats::default());
        // The checkpoint pins the counter identities: every assigned
        // seq was enqueued, every published epoch was an applied batch,
        // and the difference is the skipped (failed) batches.
        stats.batches_applied.store(ck.epoch, Ordering::Relaxed);
        stats
            .mutator_errors
            .store(ck.seq.saturating_sub(ck.epoch), Ordering::Relaxed);
        stats
            .updates_applied
            .store(ck.updates_applied, Ordering::Relaxed);
        stats
            .mutator_rounds
            .store(ck.mutator_rounds, Ordering::Relaxed);

        let mut epoch = ck.epoch;
        let mut last_seq = ck.seq;
        let mut replayed = 0u64;
        for rec in contents.records.iter().filter(|r| r.seq > ck.seq) {
            last_seq = rec.seq;
            replayed += 1;
            if let Some(rounds) = apply_supervised(
                &mut pipelines,
                rec.seq,
                &rec.updates,
                &stats,
                &config.faults,
                build,
            ) {
                epoch += 1;
                stats.batches_applied.fetch_add(1, Ordering::Relaxed);
                stats
                    .updates_applied
                    .fetch_add(rec.updates.len() as u64, Ordering::Relaxed);
                stats.mutator_rounds.fetch_add(rounds, Ordering::Relaxed);
                stats.degraded.store(0, Ordering::Relaxed);
                if seed.ckpt_base.is_some() {
                    // The replayed tail belongs to the next delta.
                    seed.pending_batches.push((rec.seq, rec.updates.clone()));
                }
            }
        }
        stats.batches_enqueued.store(last_seq, Ordering::Relaxed);
        stats.wal_replayed.store(replayed, Ordering::Relaxed);

        let cell = Arc::new(EpochCell::with_published(
            epoch_from_pipelines(epoch, &pipelines),
            epoch,
        ));
        let wal = Some(WalWriter::open(&wal_path, d.sync)?);
        Self::launch(
            cell,
            pipelines,
            stats,
            config,
            build,
            wal,
            epoch,
            last_seq,
            Role::Primary,
            seed,
        )
    }

    /// [`recover`](Self::recover) when durable state exists, otherwise
    /// [`start`](Self::start) fresh over `graph`. The bool is true when
    /// the service was recovered.
    pub fn recover_or_start(
        graph: &CsrGraph,
        config: ServeConfig,
    ) -> Result<(Arc<ServeCore>, bool), ServeError> {
        let has_checkpoint = config
            .durability
            .as_ref()
            .is_some_and(|d| d.checkpoint_path().exists());
        if has_checkpoint {
            Ok((Self::recover(config)?, true))
        } else {
            Ok((Self::start(graph, config)?, false))
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn launch(
        cell: Arc<EpochCell>,
        pipelines: Vec<(WarmSpec, StreamingPipeline)>,
        stats: Arc<ServeStats>,
        config: ServeConfig,
        build: PipelineBuild,
        wal: Option<WalWriter>,
        epoch: u64,
        last_seq: u64,
        role: Role,
        seed: RecoverySeed,
    ) -> Result<Arc<ServeCore>, ServeError> {
        let compact_after = Arc::new(AtomicU64::new(NO_COMPACTION));
        let repl = Arc::new(ReplicationState::new(role));
        // Seed the probe history: an ack or probe at the boot
        // watermark has an answer before any batch settles.
        repl.record_probe(last_seq, epoch, fingerprints(&pipelines));
        stats.repl_last_seq.store(last_seq, Ordering::Relaxed);
        let ctx = MutatorCtx {
            pipelines,
            build,
            faults: config.faults.clone(),
            durability: config.durability.clone(),
            compact_after: Arc::clone(&compact_after),
            repl: Arc::clone(&repl),
            max_follower_lag: config.max_follower_lag,
            epoch,
            last_seq,
            ckpt_base: seed.ckpt_base,
            pending_batches: seed.pending_batches,
            deltas_since_rebase: seed.deltas_since_rebase,
        };
        // The mutator owns only the shared inner pieces (epoch cell +
        // counters), never an `Arc<ServeCore>` — a core handle here
        // would keep the thread and the core alive in a cycle.
        let (tx, rx) = mpsc::channel();
        let mcell = Arc::clone(&cell);
        let mstats = Arc::clone(&stats);
        let handle = std::thread::Builder::new()
            .name("gograph-mutator".into())
            .spawn(move || mutator_loop(rx, ctx, &mcell, &mstats))?;

        Ok(Arc::new(ServeCore {
            epoch: cell,
            admission: AdmissionQueue::new(config.admission_window),
            stats,
            update_lane: Mutex::new(Some(UpdateLane {
                tx,
                next_seq: last_seq,
                wal,
            })),
            mutator: Mutex::new(Some(handle)),
            compact_after,
            durability: config.durability,
            faults: config.faults,
            repl,
            max_follower_lag: config.max_follower_lag,
        }))
    }

    /// Pins and returns the current epoch snapshot.
    pub fn pin_epoch(&self) -> Arc<EpochState> {
        self.epoch.pin()
    }

    /// The shared counters (the server front end bumps shed/transport
    /// counters directly).
    pub(crate) fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// The configured fault plan (the server front end consults it for
    /// reply drops/delays).
    pub(crate) fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    /// Executes `req` against a pinned epoch, possibly coalescing it
    /// with concurrent compatible requests (see [`crate::admission`]).
    pub fn execute_query(&self, req: QueryRequest) -> Result<Arc<QueryOutcome>, ServeError> {
        if let Some(max) = req.max_epoch_lag {
            // On a follower the freshest reference is the primary's
            // settled seq from the last WAL segment — bounded staleness
            // holds against the primary, not just the local queue.
            let enqueued = self
                .stats
                .batches_enqueued
                .load(Ordering::Relaxed)
                .max(self.stats.repl_primary_seq.load(Ordering::Relaxed));
            let settled = self.stats.batches_applied.load(Ordering::Relaxed)
                + self.stats.mutator_errors.load(Ordering::Relaxed);
            let lag = enqueued.saturating_sub(settled);
            if lag > max {
                return Err(ServeError::Stale { lag, max });
            }
        }
        if req.alg.needs_sources() && req.sources.is_empty() {
            return Err(ServeError::InvalidRequest(format!(
                "{} requires at least one source vertex",
                req.alg.name()
            )));
        }
        let sources: &[VertexId] = if req.alg.needs_sources() {
            &req.sources
        } else {
            &[]
        };

        let outcome = if req.combine {
            let key = (req.alg.code(), req.mode.code());
            match self.admission.submit(key, sources) {
                Admission::Lead {
                    slot,
                    sources,
                    admitted,
                } => match self.run(req.alg, req.mode, sources, admitted) {
                    Ok(outcome) => {
                        self.admission.complete(&slot, Arc::clone(&outcome));
                        outcome
                    }
                    Err(e) => {
                        self.stats.poisoned_slots.fetch_add(1, Ordering::Relaxed);
                        self.admission.poison(&slot);
                        return Err(e);
                    }
                },
                Admission::Follow(outcome) => {
                    self.stats.coalesced.fetch_add(1, Ordering::Relaxed);
                    outcome
                }
            }
        } else {
            self.run(req.alg, req.mode, sources.to_vec(), 1)?
        };
        self.stats.queries.fetch_add(1, Ordering::Relaxed);
        Ok(outcome)
    }

    /// One execution against a freshly pinned epoch.
    fn run(
        &self,
        alg: AlgSpec,
        mode: ModeSpec,
        sources: Vec<VertexId>,
        admitted: usize,
    ) -> Result<Arc<QueryOutcome>, ServeError> {
        let epoch = self.epoch.pin();
        let n = epoch.graph.num_vertices();
        if let Some(&bad) = sources.iter().find(|&&s| (s as usize) >= n) {
            return Err(ServeError::InvalidRequest(format!(
                "source vertex {bad} out of range for {n} vertices"
            )));
        }

        // Warm-start only exact-match single-source (or global) queries
        // from the epoch's converged states.
        let warm_entry: Option<&WarmEntry> = if sources.len() <= 1 {
            epoch.warm_for(alg, sources.first().copied().unwrap_or(0))
        } else {
            None
        };

        let algorithm = alg.instantiate(&sources);
        let mut builder = Pipeline::on(&epoch.graph)
            .order_ref(&epoch.order)
            .mode(mode.mode())
            .algorithm_ref(algorithm.as_ref());
        let warm = warm_entry.is_some();
        if let Some(entry) = warm_entry {
            builder = builder.warm_start(WarmStart::from_states((*entry.states).clone()));
        }
        let result = builder.execute()?;

        let stats = result.stats;
        if warm {
            self.stats.warm_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.stats.cold_runs.fetch_add(1, Ordering::Relaxed);
        }
        self.stats
            .query_rounds
            .fetch_add(stats.rounds as u64, Ordering::Relaxed);
        self.stats
            .query_push_rounds
            .fetch_add(stats.push_rounds as u64, Ordering::Relaxed);
        self.stats
            .last_state_bytes
            .store(stats.state_memory_bytes as u64, Ordering::Relaxed);

        Ok(Arc::new(QueryOutcome {
            epoch,
            alg,
            mode,
            effective_sources: sources,
            admitted,
            warm,
            rounds: stats.rounds,
            push_rounds: stats.push_rounds,
            state_memory_bytes: stats.state_memory_bytes,
            converged: stats.converged,
            runtime: stats.runtime,
            states: Arc::new(stats.final_states),
        }))
    }

    /// Queues an update batch for the mutator. With durability, the
    /// batch is appended (and synced, per policy) to the WAL before
    /// this returns — an acked batch survives a crash. Returns the
    /// number of updates accepted.
    pub fn enqueue_updates(&self, updates: Vec<EdgeUpdate>) -> Result<usize, ServeError> {
        if self.role() != Role::Primary {
            return Err(ServeError::NotPrimary);
        }
        if updates.is_empty() {
            return Err(ServeError::InvalidRequest("empty update batch".to_string()));
        }
        let n = updates.len();
        let mut guard = crate::lock_unpoisoned(&self.update_lane);
        let lane = guard.as_mut().ok_or(ServeError::Closed)?;
        let seq = lane.next_seq + 1;
        if let Some(d) = &self.durability {
            // A compaction watermark set by the mutator (post-
            // checkpoint) is honored here, under the lane lock, because
            // this thread owns the log's fd: compaction renames a fresh
            // inode over the path, so the writer must be reopened. The
            // proposal is clamped to the slowest live follower's ack so
            // compaction never discards a record a follower still
            // needs (laggards past `max_follower_lag` are evicted to
            // checkpoint re-sync instead).
            let watermark = self.compact_after.swap(NO_COMPACTION, Ordering::AcqRel);
            if watermark != NO_COMPACTION {
                let watermark = self.repl.clamp_watermark(watermark, self.max_follower_lag);
                lane.wal = None; // close the fd the rename strands
                match compact_wal(&d.wal_path(), watermark) {
                    Ok(_) => {
                        self.repl
                            .compacted_through
                            .store(watermark, Ordering::Release);
                    }
                    Err(e) => eprintln!("gograph-serve: WAL compaction failed: {e}"),
                }
            }
            if lane.wal.is_none() {
                lane.wal = Some(WalWriter::open(&d.wal_path(), d.sync)?);
            }
            if let Some(wal) = lane.wal.as_mut() {
                let bytes = wal.append(seq, &updates)?;
                self.stats.wal_appends.fetch_add(1, Ordering::Relaxed);
                self.stats.wal_bytes.fetch_add(bytes, Ordering::Relaxed);
            }
        }
        lane.tx
            .send(MutatorMsg::Batch { seq, updates })
            .map_err(|_| ServeError::Closed)?;
        lane.next_seq = seq;
        self.stats.batches_enqueued.fetch_add(1, Ordering::Relaxed);
        Ok(n)
    }

    /// A point-in-time copy of every counter.
    pub fn stats_snapshot(&self) -> StatsSnapshot {
        let ep = self.epoch.pin();
        let s = &self.stats;
        StatsSnapshot {
            epoch: ep.epoch,
            epochs_published: self.epoch.epochs_published(),
            num_vertices: ep.graph.num_vertices() as u64,
            num_edges: ep.graph.num_edges() as u64,
            num_partitions: ep.num_partitions as u64,
            queries: s.queries.load(Ordering::Relaxed),
            coalesced: s.coalesced.load(Ordering::Relaxed),
            warm_hits: s.warm_hits.load(Ordering::Relaxed),
            cold_runs: s.cold_runs.load(Ordering::Relaxed),
            query_rounds: s.query_rounds.load(Ordering::Relaxed),
            query_push_rounds: s.query_push_rounds.load(Ordering::Relaxed),
            last_state_bytes: s.last_state_bytes.load(Ordering::Relaxed),
            batches_enqueued: s.batches_enqueued.load(Ordering::Relaxed),
            batches_applied: s.batches_applied.load(Ordering::Relaxed),
            updates_applied: s.updates_applied.load(Ordering::Relaxed),
            mutator_rounds: s.mutator_rounds.load(Ordering::Relaxed),
            mutator_errors: s.mutator_errors.load(Ordering::Relaxed),
            mutator_restarts: s.mutator_restarts.load(Ordering::Relaxed),
            poisoned_slots: s.poisoned_slots.load(Ordering::Relaxed),
            degraded: s.degraded.load(Ordering::Relaxed),
            wal_appends: s.wal_appends.load(Ordering::Relaxed),
            wal_bytes: s.wal_bytes.load(Ordering::Relaxed),
            wal_replayed: s.wal_replayed.load(Ordering::Relaxed),
            checkpoints_written: s.checkpoints_written.load(Ordering::Relaxed),
            connections_shed: s.connections_shed.load(Ordering::Relaxed),
            repl_segments_shipped: s.repl_segments_shipped.load(Ordering::Relaxed),
            repl_records_shipped: s.repl_records_shipped.load(Ordering::Relaxed),
            repl_acks: s.repl_acks.load(Ordering::Relaxed),
            repl_follower_lag: s.repl_follower_lag.load(Ordering::Relaxed),
            repl_divergences: s.repl_divergences.load(Ordering::Relaxed),
            repl_resyncs: s.repl_resyncs.load(Ordering::Relaxed),
            repl_last_seq: s.repl_last_seq.load(Ordering::Relaxed),
            repl_primary_seq: s.repl_primary_seq.load(Ordering::Relaxed),
            delta_checkpoints_written: s.delta_checkpoints_written.load(Ordering::Relaxed),
            checkpoint_bytes_written: s.checkpoint_bytes_written.load(Ordering::Relaxed),
        }
    }

    /// Stops the mutator after it drains every queued batch (writing a
    /// final checkpoint and compacting the WAL when durable), and joins
    /// it. Idempotent; queries keep working against the last epoch.
    pub fn shutdown(&self) {
        let lane = crate::lock_unpoisoned(&self.update_lane).take();
        if let Some(lane) = lane {
            let _ = lane.tx.send(MutatorMsg::Stop);
            // Dropping the lane closes the WAL fd before the mutator's
            // final compaction renames a fresh log over the path.
        }
        let handle = crate::lock_unpoisoned(&self.mutator).take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }

    /// Blocks until the mutator has applied every batch enqueued before
    /// this call (used by tests and the CI smoke to make "≥ 1 epoch
    /// published" deterministic).
    pub fn quiesce(&self) {
        loop {
            let s = self.stats_snapshot();
            if s.batches_applied + s.mutator_errors >= s.batches_enqueued {
                return;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// This node's current replication role.
    pub fn role(&self) -> Role {
        self.repl.role()
    }

    /// Promotes this node to primary (failover): its puller observes
    /// the flip and stops, and writes are accepted from then on.
    /// Idempotent. A promoted follower has no durability of its own —
    /// post-failover writes are in-memory until it is given a WAL.
    pub fn promote(&self) {
        self.repl.role.store(ROLE_PRIMARY, Ordering::Release);
    }

    /// Registers (or refreshes) a follower and returns the settled WAL
    /// records after its ack watermark: `(primary_seq, resync,
    /// records)`. `primary_seq` is this primary's settled sequence
    /// number (the follower's staleness reference). When `resync` is
    /// true the follower was marked divergent or fell behind the
    /// compaction floor: it must re-bootstrap from
    /// [`fetch_checkpoint`](Self::fetch_checkpoint) before
    /// re-subscribing.
    pub fn replica_subscribe(
        &self,
        follower: u64,
        after_seq: u64,
        max_records: u32,
    ) -> Result<(u64, bool, SegmentRecords), ServeError> {
        if self.role() != Role::Primary {
            return Err(ServeError::NotPrimary);
        }
        let d = self.durability.as_ref().ok_or_else(|| {
            ServeError::InvalidRequest(
                "replication requires a durable primary (no WAL to ship)".to_string(),
            )
        })?;
        let settled = self.stats.batches_applied.load(Ordering::Relaxed)
            + self.stats.mutator_errors.load(Ordering::Relaxed);
        let marked = {
            let mut followers = crate::lock_unpoisoned(&self.repl.followers);
            let entry = followers.entry(follower).or_default();
            if entry.needs_resync {
                entry.needs_resync = false; // it re-bootstraps now
                entry.acked_seq = after_seq;
                true
            } else {
                entry.acked_seq = entry.acked_seq.max(after_seq);
                false
            }
        };
        let compacted = self.repl.compacted_through.load(Ordering::Acquire);
        if marked || after_seq < compacted {
            self.stats.repl_resyncs.fetch_add(1, Ordering::Relaxed);
            return Ok((settled, true, Vec::new()));
        }
        // Read under the lane lock: a concurrent compaction swaps the
        // log's inode, and the read must see one or the other whole.
        let records: SegmentRecords = {
            let _guard = crate::lock_unpoisoned(&self.update_lane);
            read_wal_segment(&d.wal_path(), after_seq, settled, max_records.min(4096))?
                .into_iter()
                .map(|r| (r.seq, r.updates))
                .collect()
        };
        // Belt and braces: if the log no longer covers the record right
        // after the follower's watermark (e.g. a compaction that ran
        // before this follower registered), force a re-sync rather
        // than silently skipping records.
        let gap = match records.first() {
            Some((first, _)) => *first != after_seq + 1,
            None => settled > after_seq,
        };
        if gap {
            self.stats.repl_resyncs.fetch_add(1, Ordering::Relaxed);
            return Ok((settled, true, Vec::new()));
        }
        self.stats
            .repl_segments_shipped
            .fetch_add(1, Ordering::Relaxed);
        self.stats
            .repl_records_shipped
            .fetch_add(records.len() as u64, Ordering::Relaxed);
        self.update_follower_lag(settled);
        Ok((settled, false, records))
    }

    /// Records a follower's cumulative ack and compares its probe
    /// fingerprints against this primary's own at the same watermark.
    /// A mismatch marks the follower divergent (its next subscribe is
    /// answered with `resync`) and returns [`ServeError::Divergent`].
    pub fn replica_ack(
        &self,
        follower: u64,
        seq: u64,
        fingerprints: &[u64],
    ) -> Result<ProbeReport, ServeError> {
        if self.role() != Role::Primary {
            return Err(ServeError::NotPrimary);
        }
        self.stats.repl_acks.fetch_add(1, Ordering::Relaxed);
        {
            let mut followers = crate::lock_unpoisoned(&self.repl.followers);
            let entry = followers.entry(follower).or_default();
            entry.acked_seq = entry.acked_seq.max(seq);
        }
        let settled = self.stats.batches_applied.load(Ordering::Relaxed)
            + self.stats.mutator_errors.load(Ordering::Relaxed);
        self.update_follower_lag(settled);
        match self.repl.probe_at(Some(seq)) {
            Some(own) if own.fingerprints == fingerprints => Ok(ProbeReport {
                seq,
                epoch: own.epoch,
                known: true,
                fingerprints: own.fingerprints,
            }),
            Some(_) => {
                self.stats.repl_divergences.fetch_add(1, Ordering::Relaxed);
                let mut followers = crate::lock_unpoisoned(&self.repl.followers);
                if let Some(entry) = followers.get_mut(&follower) {
                    entry.needs_resync = true;
                }
                Err(ServeError::Divergent { seq })
            }
            // The watermark aged out of the bounded history: nothing
            // to judge against, accept the ack.
            None => Ok(ProbeReport {
                seq,
                epoch: 0,
                known: false,
                fingerprints: Vec::new(),
            }),
        }
    }

    /// This node's own probe fingerprints at `at_seq`, or at the
    /// newest settled watermark when `None`. Works on both roles (the
    /// CI smoke compares a primary's and a follower's reports).
    pub fn probe(&self, at_seq: Option<u64>) -> ProbeReport {
        match self.repl.probe_at(at_seq) {
            Some(p) => ProbeReport {
                seq: p.seq,
                epoch: p.epoch,
                known: true,
                fingerprints: p.fingerprints,
            },
            None => ProbeReport {
                seq: at_seq.unwrap_or(0),
                epoch: 0,
                known: false,
                fingerprints: Vec::new(),
            },
        }
    }

    /// The latest on-disk checkpoint (base plus delta chain) — what a
    /// bootstrapping or re-syncing follower resumes from.
    pub fn fetch_checkpoint(&self) -> Result<Checkpoint, ServeError> {
        if self.role() != Role::Primary {
            return Err(ServeError::NotPrimary);
        }
        let d = self.durability.as_ref().ok_or_else(|| {
            ServeError::InvalidRequest("no durability configured; nothing to ship".to_string())
        })?;
        read_checkpoint_chain(&d.checkpoint_path())?
            .map(|(ck, _)| ck)
            .ok_or_else(|| ServeError::InvalidRequest("no checkpoint on disk yet".to_string()))
    }

    /// Boots a read-serving follower from a primary's checkpoint: the
    /// same resume path as [`recover`](Self::recover), but with no
    /// local durability (the primary's WAL is the record of truth) and
    /// writes refused — batches arrive only through
    /// [`replicate_batch`](Self::replicate_batch).
    pub fn follow_from_checkpoint(
        ck: Checkpoint,
        config: ServeConfig,
    ) -> Result<Arc<ServeCore>, ServeError> {
        if config.durability.is_some() {
            return Err(ServeError::InvalidRequest(
                "a follower keeps no durable state of its own; drop the durability config"
                    .to_string(),
            ));
        }
        if ck.pipelines.is_empty() {
            return Err(ServeError::InvalidRequest(
                "checkpoint carries no pipelines".to_string(),
            ));
        }
        let build = PipelineBuild::from_config(&config);
        let mut pipelines: Vec<(WarmSpec, StreamingPipeline)> =
            Vec::with_capacity(ck.pipelines.len());
        for p in ck.pipelines {
            let sp = resume_warm_pipeline(p.warm, p.state, build)?;
            pipelines.push((p.warm, sp));
        }
        let stats = Arc::new(ServeStats::default());
        stats.batches_applied.store(ck.epoch, Ordering::Relaxed);
        stats
            .mutator_errors
            .store(ck.seq.saturating_sub(ck.epoch), Ordering::Relaxed);
        stats
            .updates_applied
            .store(ck.updates_applied, Ordering::Relaxed);
        stats
            .mutator_rounds
            .store(ck.mutator_rounds, Ordering::Relaxed);
        stats.batches_enqueued.store(ck.seq, Ordering::Relaxed);
        stats.repl_primary_seq.store(ck.seq, Ordering::Relaxed);
        let cell = Arc::new(EpochCell::with_published(
            epoch_from_pipelines(ck.epoch, &pipelines),
            ck.epoch,
        ));
        Self::launch(
            cell,
            pipelines,
            stats,
            config,
            build,
            None,
            ck.epoch,
            ck.seq,
            Role::Follower,
            RecoverySeed::default(),
        )
    }

    /// Hands one replicated batch to the mutator — the follower-side
    /// twin of [`enqueue_updates`](Self::enqueue_updates): no WAL
    /// append (the primary's log is the record of truth), and the
    /// primary's sequence number is kept verbatim so both sides'
    /// fingerprints line up at the same watermarks.
    pub fn replicate_batch(&self, seq: u64, updates: Vec<EdgeUpdate>) -> Result<(), ServeError> {
        if self.role() != Role::Follower {
            return Err(ServeError::InvalidRequest(
                "replicate_batch is follower-only; the primary applies its own WAL".to_string(),
            ));
        }
        let mut guard = crate::lock_unpoisoned(&self.update_lane);
        let lane = guard.as_mut().ok_or(ServeError::Closed)?;
        if seq != lane.next_seq + 1 {
            return Err(ServeError::InvalidRequest(format!(
                "replicated batch {seq} is not contiguous with {}",
                lane.next_seq
            )));
        }
        lane.tx
            .send(MutatorMsg::Batch { seq, updates })
            .map_err(|_| ServeError::Closed)?;
        lane.next_seq = seq;
        // On a follower "enqueued" is the last primary seq received —
        // the counter identity enqueued == last assigned seq holds on
        // both roles.
        self.stats.batches_enqueued.store(seq, Ordering::Relaxed);
        Ok(())
    }

    /// Records the primary's settled sequence number from the latest
    /// WAL segment — the follower's bounded-staleness reference.
    pub fn note_primary_seq(&self, seq: u64) {
        let cur = self.stats.repl_primary_seq.load(Ordering::Relaxed);
        if seq > cur {
            self.stats.repl_primary_seq.store(seq, Ordering::Relaxed);
        }
    }

    /// Resets this follower onto a primary checkpoint (divergence
    /// repair, or catch-up after falling behind the compaction floor).
    /// Blocks until the mutator has swapped the restored state in and
    /// published it.
    pub fn resync_from(&self, ck: Checkpoint) -> Result<(), ServeError> {
        if ck.pipelines.is_empty() {
            return Err(ServeError::InvalidRequest(
                "checkpoint carries no pipelines".to_string(),
            ));
        }
        let seq = ck.seq;
        let gen = self.repl.resync_done.load(Ordering::Acquire);
        {
            let mut guard = crate::lock_unpoisoned(&self.update_lane);
            let lane = guard.as_mut().ok_or(ServeError::Closed)?;
            lane.tx
                .send(MutatorMsg::Resync(Box::new(ck)))
                .map_err(|_| ServeError::Closed)?;
            lane.next_seq = seq;
            self.stats.batches_enqueued.store(seq, Ordering::Relaxed);
        }
        self.stats.repl_resyncs.fetch_add(1, Ordering::Relaxed);
        while self.repl.resync_done.load(Ordering::Acquire) <= gen {
            std::thread::sleep(Duration::from_millis(1));
        }
        Ok(())
    }

    /// Refreshes the worst-live-follower-lag gauge.
    fn update_follower_lag(&self, settled: u64) {
        let followers = crate::lock_unpoisoned(&self.repl.followers);
        let worst = followers
            .values()
            .filter(|e| !e.needs_resync)
            .map(|e| settled.saturating_sub(e.acked_seq))
            .max()
            .unwrap_or(0);
        self.stats.repl_follower_lag.store(worst, Ordering::Relaxed);
    }
}

/// Applies one batch to every pipeline under a supervisor: on a panic
/// or engine error anywhere, every pipeline is restored to its
/// pre-batch exported state and the batch is skipped. Returns the total
/// re-convergence rounds on success, `None` on a (rolled-back) failure.
fn apply_supervised(
    pipelines: &mut [(WarmSpec, StreamingPipeline)],
    seq: u64,
    updates: &[EdgeUpdate],
    stats: &ServeStats,
    faults: &FaultPlan,
    build: PipelineBuild,
) -> Option<u64> {
    if let Some(stall) = faults.mutator_stall(seq) {
        std::thread::sleep(stall);
    }
    // Export the pre-batch state first: a panic can leave some
    // pipelines one batch ahead of others, and publishing (or building
    // on) that torn mix is exactly what the supervisor must prevent.
    let saved: Vec<ResumableState> = pipelines.iter().map(|(_, sp)| sp.export_state()).collect();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if faults.mutator_panic(seq) {
            panic!("injected fault: mutator panic before batch {seq}");
        }
        let mut rounds = 0u64;
        for (i, (_, sp)) in pipelines.iter_mut().enumerate() {
            if i > 0 && faults.mutator_panic_mid(seq) {
                panic!("injected fault: mutator panic mid-batch {seq}");
            }
            rounds += sp.apply_batch(updates)?.stats.rounds as u64;
        }
        Ok::<u64, EngineError>(rounds)
    }));
    match outcome {
        Ok(Ok(rounds)) => Some(rounds),
        failure => {
            match &failure {
                Ok(Err(e)) => {
                    eprintln!("gograph-serve: mutator batch {seq} failed ({e}); rolling back")
                }
                _ => eprintln!("gograph-serve: mutator panicked on batch {seq}; rolling back"),
            }
            for ((spec, sp), state) in pipelines.iter_mut().zip(saved) {
                match resume_warm_pipeline(*spec, state, build) {
                    Ok(fresh) => *sp = fresh,
                    // Resuming a just-exported state cannot ordinarily
                    // fail; if it does, the old pipeline (a valid
                    // state, never published) is the safest fallback.
                    Err(e) => eprintln!(
                        "gograph-serve: could not restore {} pipeline: {e}",
                        spec.alg.name()
                    ),
                }
            }
            stats.mutator_errors.fetch_add(1, Ordering::Relaxed);
            stats.mutator_restarts.fetch_add(1, Ordering::Relaxed);
            stats.degraded.store(1, Ordering::Relaxed);
            None
        }
    }
}

fn make_checkpoint(
    pipelines: &[(WarmSpec, StreamingPipeline)],
    seq: u64,
    epoch: u64,
    stats: &ServeStats,
) -> Checkpoint {
    Checkpoint {
        seq,
        epoch,
        updates_applied: stats.updates_applied.load(Ordering::Relaxed),
        mutator_rounds: stats.mutator_rounds.load(Ordering::Relaxed),
        pipelines: pipelines
            .iter()
            .map(|(spec, sp)| PipelineCheckpoint {
                warm: *spec,
                state: sp.export_state(),
            })
            .collect(),
    }
}

/// Writes the periodic checkpoint — a delta against the previous one
/// when enabled and the rebase cadence allows, a full (rebasing)
/// checkpoint otherwise. On success optionally publishes `seq` as the
/// compaction watermark *proposal* (clamping to follower acks happens
/// at the compaction site). A failed write is not fatal — the WAL
/// still covers everything since the last good checkpoint, recovery
/// just replays more.
fn checkpoint_step(
    ctx: &mut MutatorCtx,
    seq: u64,
    stats: &ServeStats,
    force_full: bool,
    propose_compaction: bool,
) -> bool {
    let Some(d) = ctx.durability.clone() else {
        return false;
    };
    let cur = make_checkpoint(&ctx.pipelines, seq, ctx.epoch, stats);
    let mut wrote = false;
    let want_delta = d.delta_checkpoints
        && !force_full
        && ctx.ckpt_base.is_some()
        && ctx.deltas_since_rebase < d.full_rebase_every;
    if want_delta {
        let base = ctx.ckpt_base.as_ref().expect("delta base present");
        match diff_checkpoint(base, &cur, ctx.pending_batches.clone()) {
            Ok(delta) => {
                let k = ctx.deltas_since_rebase + 1;
                match write_delta(&delta_path(&d.checkpoint_path(), k), &delta) {
                    Ok(bytes) => {
                        stats.checkpoints_written.fetch_add(1, Ordering::Relaxed);
                        stats
                            .delta_checkpoints_written
                            .fetch_add(1, Ordering::Relaxed);
                        stats
                            .checkpoint_bytes_written
                            .fetch_add(bytes, Ordering::Relaxed);
                        ctx.deltas_since_rebase = k;
                        ctx.pending_batches.clear();
                        wrote = true;
                    }
                    Err(e) => eprintln!("gograph-serve: delta checkpoint write failed: {e}"),
                }
            }
            Err(e) => eprintln!("gograph-serve: delta diff failed: {e}"),
        }
    }
    if !wrote {
        // Full checkpoint (rebase): write the new base first, then
        // drop the old chain — a crash in between leaves stale deltas
        // whose base_seq no longer matches, which chain reading
        // detects and ignores.
        match write_checkpoint(&d.checkpoint_path(), &cur) {
            Ok(bytes) => {
                stats.checkpoints_written.fetch_add(1, Ordering::Relaxed);
                stats
                    .checkpoint_bytes_written
                    .fetch_add(bytes, Ordering::Relaxed);
                if let Err(e) = remove_deltas(&d.checkpoint_path()) {
                    eprintln!("gograph-serve: stale delta removal failed: {e}");
                }
                ctx.deltas_since_rebase = 0;
                ctx.pending_batches.clear();
                wrote = true;
            }
            Err(e) => eprintln!("gograph-serve: checkpoint write failed: {e}"),
        }
    }
    if wrote {
        if d.delta_checkpoints {
            ctx.ckpt_base = Some(cur);
        }
        if propose_compaction {
            ctx.compact_after.store(seq, Ordering::Release);
        }
    }
    wrote
}

/// Chaos drill (armed only by follower test plans): flips one
/// converged state in the first pipeline to an impossible value and
/// resumes the pipeline over it, so subsequent epochs and fingerprints
/// silently diverge from the primary's — exactly the fault the probe
/// comparison must catch.
fn corrupt_pipeline_state(ctx: &mut MutatorCtx, seq: u64) {
    let (spec, sp) = &mut ctx.pipelines[0];
    let mut st = sp.export_state();
    if st.states.is_empty() {
        return;
    }
    let idx = seq as usize % st.states.len();
    st.states[idx] = -4096.5;
    match resume_warm_pipeline(*spec, st, ctx.build) {
        Ok(fresh) => {
            *sp = fresh;
            eprintln!("gograph-serve: injected state corruption after batch {seq}");
        }
        Err(e) => eprintln!("gograph-serve: corruption injection failed to resume: {e}"),
    }
}

/// Swaps the mutator's entire decision state for a primary checkpoint
/// (divergence repair). Publishes the restored epoch and resets the
/// probe history — stale fingerprints of diverged state must not
/// answer probes at watermarks the follower is about to replay again.
fn resync_mutator(ctx: &mut MutatorCtx, ck: Checkpoint, cell: &EpochCell, stats: &ServeStats) {
    let mut pipelines = Vec::with_capacity(ck.pipelines.len());
    for p in &ck.pipelines {
        match resume_warm_pipeline(p.warm, p.state.clone(), ctx.build) {
            Ok(sp) => pipelines.push((p.warm, sp)),
            Err(e) => {
                eprintln!("gograph-serve: re-sync resume failed: {e}; keeping current state");
                return;
            }
        }
    }
    ctx.pipelines = pipelines;
    ctx.epoch = ck.epoch;
    ctx.last_seq = ck.seq;
    stats.batches_applied.store(ck.epoch, Ordering::Relaxed);
    stats
        .mutator_errors
        .store(ck.seq.saturating_sub(ck.epoch), Ordering::Relaxed);
    stats
        .updates_applied
        .store(ck.updates_applied, Ordering::Relaxed);
    stats
        .mutator_rounds
        .store(ck.mutator_rounds, Ordering::Relaxed);
    stats.degraded.store(0, Ordering::Relaxed);
    cell.publish(epoch_from_pipelines(ctx.epoch, &ctx.pipelines));
    crate::lock_unpoisoned(&ctx.repl.probes).clear();
    ctx.repl
        .record_probe(ck.seq, ck.epoch, fingerprints(&ctx.pipelines));
    stats.repl_last_seq.store(ck.seq, Ordering::Relaxed);
}

fn mutator_loop(
    rx: Receiver<MutatorMsg>,
    mut ctx: MutatorCtx,
    cell: &EpochCell,
    stats: &ServeStats,
) {
    loop {
        match rx.recv() {
            Ok(MutatorMsg::Batch { seq, updates }) => {
                ctx.last_seq = seq;
                if let Some(rounds) = apply_supervised(
                    &mut ctx.pipelines,
                    seq,
                    &updates,
                    stats,
                    &ctx.faults,
                    ctx.build,
                ) {
                    ctx.epoch += 1;
                    if ctx.faults.corrupt_state(seq) {
                        corrupt_pipeline_state(&mut ctx, seq);
                    }
                    cell.publish(epoch_from_pipelines(ctx.epoch, &ctx.pipelines));
                    stats.batches_applied.fetch_add(1, Ordering::Relaxed);
                    stats
                        .updates_applied
                        .fetch_add(updates.len() as u64, Ordering::Relaxed);
                    stats.mutator_rounds.fetch_add(rounds, Ordering::Relaxed);
                    stats.degraded.store(0, Ordering::Relaxed);
                    if ctx.ckpt_base.is_some() {
                        ctx.pending_batches.push((seq, updates));
                    }
                    let every = ctx
                        .durability
                        .as_ref()
                        .map_or(0, |d| d.checkpoint_every_batches);
                    if every > 0 && seq % every == 0 {
                        checkpoint_step(&mut ctx, seq, stats, false, true);
                    }
                }
                // Fingerprint every settled batch, applied or skipped:
                // failure is deterministic, so a healthy replicated
                // pair records identical hashes at every watermark.
                ctx.repl
                    .record_probe(seq, ctx.epoch, fingerprints(&ctx.pipelines));
                stats.repl_last_seq.store(seq, Ordering::Relaxed);
            }
            Ok(MutatorMsg::Resync(ck)) => {
                resync_mutator(&mut ctx, *ck, cell, stats);
                ctx.repl.resync_done.fetch_add(1, Ordering::AcqRel);
            }
            Ok(MutatorMsg::Stop) | Err(_) => break,
        }
    }
    // Clean shutdown: capture everything in a final (always full)
    // checkpoint and compact the WAL directly — the update lane is
    // already closed, so no append can race the rename. The watermark
    // is still clamped to live-follower acks.
    if let Some(d) = ctx.durability.clone() {
        let last_seq = ctx.last_seq;
        if checkpoint_step(&mut ctx, last_seq, stats, true, false) {
            let w = ctx.repl.clamp_watermark(last_seq, ctx.max_follower_lag);
            match compact_wal(&d.wal_path(), w) {
                Ok(_) => ctx.repl.compacted_through.store(w, Ordering::Release),
                Err(e) => eprintln!("gograph-serve: final WAL compaction failed: {e}"),
            }
        }
    }
}

impl Drop for ServeCore {
    fn drop(&mut self) {
        // Last owner going away: stop the mutator if still running
        // (dropping the lane closes the channel and the WAL fd).
        let lane = crate::lock_unpoisoned(&self.update_lane).take();
        drop(lane);
        let handle = crate::lock_unpoisoned(&self.mutator).take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for ServeCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeCore")
            .field("stats", &self.stats_snapshot())
            .finish_non_exhaustive()
    }
}

fn build_warm_pipeline(
    graph: &CsrGraph,
    spec: WarmSpec,
    build: PipelineBuild,
) -> Result<StreamingPipeline, EngineError> {
    let b = StreamingPipeline::over(graph)
        .reorder_parallelism(build.reorder_threads)
        .partition_scoped_reorder(build.partition_scoped);
    match spec.alg {
        AlgSpec::Sssp => b.algorithm(Sssp::new(spec.source)).build(),
        AlgSpec::Bfs => b.algorithm(Bfs::new(spec.source)).build(),
        AlgSpec::Cc => b.algorithm(ConnectedComponents).build(),
        AlgSpec::PageRank => b.algorithm(PageRank::default()).build(),
        AlgSpec::Sswp => b.algorithm(Sswp::new(spec.source)).build(),
    }
}

/// Rebuilds a warm pipeline from an exported state — the restore half
/// of both supervision (rollback) and recovery (checkpoint resume).
fn resume_warm_pipeline(
    spec: WarmSpec,
    state: ResumableState,
    build: PipelineBuild,
) -> Result<StreamingPipeline, EngineError> {
    let b = StreamingPipeline::over(&state.graph)
        .reorder_parallelism(build.reorder_threads)
        .partition_scoped_reorder(build.partition_scoped);
    match spec.alg {
        AlgSpec::Sssp => b.algorithm(Sssp::new(spec.source)).resume(state),
        AlgSpec::Bfs => b.algorithm(Bfs::new(spec.source)).resume(state),
        AlgSpec::Cc => b.algorithm(ConnectedComponents).resume(state),
        AlgSpec::PageRank => b.algorithm(PageRank::default()).resume(state),
        AlgSpec::Sswp => b.algorithm(Sswp::new(spec.source)).resume(state),
    }
}

fn epoch_from_pipelines(epoch: u64, pipelines: &[(WarmSpec, StreamingPipeline)]) -> EpochState {
    let (_, first) = &pipelines[0];
    EpochState {
        epoch,
        // O(1): the CSR payloads are Arc-shared with the pipeline's
        // copy, which stops aliasing them the moment it next mutates.
        graph: first.graph().snapshot(),
        order: Arc::new(first.order().clone()),
        part_of: Arc::new(first.part_assignment().to_vec()),
        num_partitions: first.num_partitions(),
        warm: pipelines
            .iter()
            .map(|(spec, sp)| WarmEntry {
                alg: spec.alg,
                source: spec.source,
                states: Arc::new(sp.states().to_vec()),
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gograph_graph::generators::{planted_partition, PlantedPartitionConfig};
    use std::path::Path;

    fn test_graph() -> CsrGraph {
        planted_partition(PlantedPartitionConfig {
            num_vertices: 80,
            num_edges: 400,
            communities: 4,
            p_intra: 0.8,
            gamma: 2.4,
            seed: 11,
        })
    }

    fn core() -> Arc<ServeCore> {
        core_with(ServeConfig {
            warm: vec![
                WarmSpec::new(AlgSpec::Sssp, 0),
                WarmSpec::new(AlgSpec::Cc, 0),
            ],
            admission_window: Duration::ZERO,
            ..ServeConfig::default()
        })
    }

    fn core_with(config: ServeConfig) -> Arc<ServeCore> {
        ServeCore::start(&test_graph(), config).unwrap()
    }

    fn query(alg: AlgSpec, sources: Vec<VertexId>) -> QueryRequest {
        QueryRequest {
            alg,
            mode: ModeSpec::Async,
            sources,
            combine: false,
            max_epoch_lag: None,
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gograph-core-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Deterministic churn batches over the test graph.
    fn batches(count: usize) -> Vec<Vec<EdgeUpdate>> {
        (0..count as u32)
            .map(|k| {
                vec![
                    EdgeUpdate::insert(k % 80, (k * 7 + 13) % 80),
                    EdgeUpdate::insert((k * 3 + 1) % 80, (k * 11 + 29) % 80),
                    EdgeUpdate::remove(k % 80, (k + 1) % 80),
                ]
            })
            .collect()
    }

    fn assert_epochs_bit_identical(a: &EpochState, b: &EpochState) {
        assert_eq!(a.epoch, b.epoch, "epoch number");
        assert_eq!(a.graph, b.graph, "graph");
        assert_eq!(a.order, b.order, "processing order");
        assert_eq!(a.part_of, b.part_of, "partition assignment");
        assert_eq!(a.num_partitions, b.num_partitions, "partition count");
        assert_eq!(a.warm.len(), b.warm.len(), "warm entries");
        for (wa, wb) in a.warm.iter().zip(&b.warm) {
            assert_eq!(wa.alg, wb.alg);
            assert_eq!(wa.source, wb.source);
            let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(
                bits(&wa.states),
                bits(&wb.states),
                "warm states for {:?}",
                wa.alg
            );
        }
    }

    #[test]
    fn warm_query_matches_cold_run_exactly() {
        let core = core();
        let warm = core.execute_query(query(AlgSpec::Sssp, vec![0])).unwrap();
        assert!(warm.warm, "configured warm algorithm must warm-start");
        assert_eq!(warm.rounds, 1, "fixpoint re-check is one round");

        let cold = core.execute_query(query(AlgSpec::Sssp, vec![3])).unwrap();
        assert!(!cold.warm, "unconfigured source runs cold");

        // Max-norm warm results are bit-identical to the stored fixpoint.
        let ep = core.pin_epoch();
        let entry = ep.warm_for(AlgSpec::Sssp, 0).unwrap();
        assert_eq!(&*warm.states, &*entry.states);
    }

    #[test]
    fn updates_publish_epochs_and_queries_stay_pinned() {
        let core = core();
        let before = core.pin_epoch();
        assert_eq!(before.epoch, 0);

        core.enqueue_updates(vec![EdgeUpdate::insert(0, 50), EdgeUpdate::insert(50, 70)])
            .unwrap();
        core.quiesce();
        let snap = core.stats_snapshot();
        assert_eq!(snap.epochs_published, 1);
        assert_eq!(snap.batches_applied, 1);
        assert_eq!(snap.updates_applied, 2);
        assert_eq!(snap.degraded, 0);

        let after = core.pin_epoch();
        assert_eq!(after.epoch, 1);
        // The pre-update pin still sees the old graph.
        assert_eq!(before.graph.num_edges() + 2, after.graph.num_edges());
        core.shutdown();
    }

    #[test]
    fn global_queries_need_no_sources_and_sources_are_validated() {
        let core = core();
        let cc = core.execute_query(query(AlgSpec::Cc, vec![])).unwrap();
        assert!(cc.warm);
        assert!(cc.converged);

        let err = core.execute_query(query(AlgSpec::Sssp, vec![]));
        assert!(matches!(err, Err(ServeError::InvalidRequest(_))));

        let err = core.execute_query(query(AlgSpec::Bfs, vec![10_000]));
        assert!(matches!(err, Err(ServeError::InvalidRequest(_))));
    }

    #[test]
    fn enqueue_after_shutdown_is_refused() {
        let core = core();
        core.shutdown();
        let err = core.enqueue_updates(vec![EdgeUpdate::insert(0, 1)]);
        assert!(matches!(err, Err(ServeError::Closed)));
        // Queries still work against the last epoch.
        assert!(core
            .execute_query(QueryRequest {
                alg: AlgSpec::Cc,
                mode: ModeSpec::Sync,
                sources: vec![],
                combine: false,
                max_epoch_lag: None,
            })
            .is_ok());
    }

    #[test]
    fn stale_queries_are_rejected_then_served_after_catchup() {
        // Stall the mutator on every batch so the lag window is wide
        // open when the bounded-staleness query arrives.
        let core = core_with(ServeConfig {
            warm: vec![WarmSpec::new(AlgSpec::Sssp, 0)],
            admission_window: Duration::ZERO,
            faults: FaultPlan::seeded(5).with_mutator_stalls(1.0, Duration::from_millis(400)),
            ..ServeConfig::default()
        });
        core.enqueue_updates(vec![EdgeUpdate::insert(0, 42)])
            .unwrap();

        let mut req = query(AlgSpec::Sssp, vec![0]);
        req.max_epoch_lag = Some(0);
        match core.execute_query(req.clone()) {
            Err(ServeError::Stale { lag, max }) => {
                assert_eq!(lag, 1);
                assert_eq!(max, 0);
            }
            other => panic!("expected Stale, got {other:?}"),
        }
        // Unbounded queries are still answered (against the old epoch).
        assert_eq!(
            core.execute_query(query(AlgSpec::Sssp, vec![0]))
                .unwrap()
                .epoch
                .epoch,
            0
        );

        core.quiesce();
        let served = core.execute_query(req).unwrap();
        assert_eq!(served.epoch.epoch, 1, "after catch-up the bound holds");
        core.shutdown();
    }

    #[test]
    fn mutator_panics_are_rolled_back_and_publication_continues() {
        // Pick a seed whose plan panics on some batches and passes
        // others, so both paths are exercised deterministically.
        let total = 6u64;
        let (seed, plan) = (0..64)
            .find_map(|seed| {
                let plan = FaultPlan::seeded(seed).with_mutator_panics(0.4);
                let fails = (1..=total).filter(|&s| plan.mutator_panic(s)).count();
                (fails >= 1 && fails < total as usize && !plan.mutator_panic(total))
                    .then_some((seed, plan))
            })
            .expect("some seed under 64 mixes panics and successes");
        let failing: Vec<u64> = (1..=total).filter(|&s| plan.mutator_panic(s)).collect();

        let config = ServeConfig {
            warm: vec![
                WarmSpec::new(AlgSpec::Sssp, 0),
                WarmSpec::new(AlgSpec::Cc, 0),
            ],
            admission_window: Duration::ZERO,
            ..ServeConfig::default()
        };
        let faulty = core_with(ServeConfig {
            faults: FaultPlan::seeded(seed).with_mutator_panics(0.4),
            ..config.clone()
        });
        let clean = core_with(config);

        // The faulty core gets every batch; the clean core only the
        // ones the plan lets through. Rollback must make them agree.
        for (i, batch) in batches(total as usize).into_iter().enumerate() {
            let seq = i as u64 + 1;
            faulty.enqueue_updates(batch.clone()).unwrap();
            if !failing.contains(&seq) {
                clean.enqueue_updates(batch).unwrap();
            }
        }
        faulty.quiesce();
        clean.quiesce();

        let s = faulty.stats_snapshot();
        assert_eq!(s.mutator_errors, failing.len() as u64);
        assert_eq!(s.mutator_restarts, failing.len() as u64);
        assert_eq!(s.batches_applied, total - failing.len() as u64);
        assert_eq!(s.epochs_published, s.batches_applied);
        assert_eq!(s.degraded, 0, "last batch succeeded; flag must clear");

        let fa = faulty.pin_epoch();
        let cl = clean.pin_epoch();
        // Epoch numbers differ only by the skipped batches' numbering.
        assert_eq!(fa.epoch, cl.epoch);
        assert_epochs_bit_identical(&fa, &cl);

        // Queries keep flowing on the faulty core.
        assert!(
            faulty
                .execute_query(query(AlgSpec::Sssp, vec![0]))
                .unwrap()
                .converged
        );
        faulty.shutdown();
        clean.shutdown();
    }

    #[test]
    fn durable_shutdown_recovers_bit_identically_with_empty_replay() {
        let dir = tmp_dir("clean-shutdown");
        let config = ServeConfig {
            warm: vec![WarmSpec::new(AlgSpec::Sssp, 0)],
            admission_window: Duration::ZERO,
            durability: Some(DurabilityConfig::new(&dir)),
            ..ServeConfig::default()
        };
        let core = ServeCore::start(&test_graph(), config.clone()).unwrap();
        for batch in batches(5) {
            core.enqueue_updates(batch).unwrap();
        }
        core.quiesce();
        let live = core.pin_epoch();
        let live_stats = core.stats_snapshot();
        core.shutdown();
        drop(core);

        // A clean shutdown checkpointed everything: recovery resumes
        // from the checkpoint and replays nothing.
        let recovered = ServeCore::recover(config).unwrap();
        let s = recovered.stats_snapshot();
        assert_eq!(s.wal_replayed, 0, "final checkpoint covers the WAL");
        assert_eq!(s.batches_enqueued, live_stats.batches_enqueued);
        assert_eq!(s.batches_applied, live_stats.batches_applied);
        assert_eq!(s.updates_applied, live_stats.updates_applied);
        assert_eq!(s.epochs_published, live_stats.epochs_published);
        assert_epochs_bit_identical(&recovered.pin_epoch(), &live);

        // The recovered service accepts further updates and queries.
        recovered
            .enqueue_updates(vec![EdgeUpdate::insert(1, 60)])
            .unwrap();
        recovered.quiesce();
        assert_eq!(recovered.pin_epoch().epoch, live.epoch + 1);
        recovered.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_recovery_replays_wal_tail_bit_identically() {
        let dir = tmp_dir("crash");
        let crash_copy = tmp_dir("crash-copy");
        let config = |d: &Path| ServeConfig {
            warm: vec![
                WarmSpec::new(AlgSpec::Sssp, 0),
                WarmSpec::new(AlgSpec::Cc, 0),
            ],
            admission_window: Duration::ZERO,
            durability: Some(DurabilityConfig {
                checkpoint_every_batches: 3,
                ..DurabilityConfig::new(d)
            }),
            ..ServeConfig::default()
        };
        let core = ServeCore::start(&test_graph(), config(&dir)).unwrap();
        for batch in batches(7) {
            core.enqueue_updates(batch).unwrap();
        }
        core.quiesce();
        let live = core.pin_epoch();
        let live_stats = core.stats_snapshot();

        // Simulate kill -9 at this instant: snapshot the durable dir
        // while the process is still running (every acked batch is on
        // disk — SyncPolicy::EveryBatch), then never shut down cleanly.
        for f in ["updates.wal", "epoch.ckpt"] {
            std::fs::copy(dir.join(f), crash_copy.join(f)).unwrap();
        }

        let recovered = ServeCore::recover(config(&crash_copy)).unwrap();
        let s = recovered.stats_snapshot();
        assert!(s.wal_replayed >= 1, "batches past the checkpoint replay");
        assert_eq!(s.batches_enqueued, live_stats.batches_enqueued);
        assert_eq!(s.batches_applied, live_stats.batches_applied);
        assert_eq!(s.updates_applied, live_stats.updates_applied);
        assert_eq!(s.mutator_rounds, live_stats.mutator_rounds);
        assert_eq!(s.epochs_published, live_stats.epochs_published);
        assert_epochs_bit_identical(&recovered.pin_epoch(), &live);

        // And the recovered core answers queries identically.
        let qa = core.execute_query(query(AlgSpec::Sssp, vec![7])).unwrap();
        let qb = recovered
            .execute_query(query(AlgSpec::Sssp, vec![7]))
            .unwrap();
        let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&qa.states), bits(&qb.states));

        core.shutdown();
        recovered.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&crash_copy);
    }

    #[test]
    fn fresh_start_refuses_existing_durable_state_and_recover_or_start_picks() {
        let dir = tmp_dir("refuse");
        let config = ServeConfig {
            warm: vec![WarmSpec::new(AlgSpec::Cc, 0)],
            admission_window: Duration::ZERO,
            durability: Some(DurabilityConfig::new(&dir)),
            ..ServeConfig::default()
        };
        let g = test_graph();
        let (core, recovered) = ServeCore::recover_or_start(&g, config.clone()).unwrap();
        assert!(!recovered, "empty dir boots fresh");
        core.enqueue_updates(vec![EdgeUpdate::insert(0, 9)])
            .unwrap();
        core.quiesce();
        core.shutdown();
        drop(core);

        let err = ServeCore::start(&g, config.clone());
        assert!(
            matches!(err, Err(ServeError::InvalidRequest(_))),
            "fresh start over durable state must refuse"
        );
        let (core, recovered) = ServeCore::recover_or_start(&g, config).unwrap();
        assert!(recovered, "existing checkpoint recovers");
        assert_eq!(core.pin_epoch().epoch, 1);
        core.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
