//! Deterministic fault injection for the crash-recovery test harness.
//!
//! A [`FaultPlan`] decides, purely as a function of `(seed, fault
//! kind, event number)`, whether a given event fails: the mutator
//! panics before or mid-way through batch `seq`, a reply frame is
//! dropped or delayed, a replication link is severed mid-segment, a
//! follower crashes mid-replay or silently corrupts its warm state.
//! Determinism matters twice over — a failing test
//! reproduces from its seed alone, and a recovered process driven by
//! the *same* plan re-injects the *same* faults, so the
//! bit-identical-recovery property can be asserted even under
//! repeated, planned failure.
//!
//! Decisions hash through SplitMix64 (no shared RNG state, so
//! concurrent connection threads never contend or perturb each
//! other's draws).

use std::time::Duration;

/// SplitMix64: a tiny, high-quality 64-bit mixer. Also used for client
/// retry jitter, keeping the serve crate free of RNG dependencies
/// outside dev-tests.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit(seed: u64, kind: u64, event: u64) -> f64 {
    let h = splitmix64(seed ^ kind.wrapping_mul(0xA076_1D64_78BD_642F) ^ event);
    // 53 mantissa bits → uniform in [0, 1).
    (h >> 11) as f64 / (1u64 << 53) as f64
}

const KIND_PANIC: u64 = 1;
const KIND_PANIC_MID: u64 = 2;
const KIND_DROP: u64 = 3;
const KIND_DELAY: u64 = 4;
const KIND_STALL: u64 = 5;
const KIND_LINK_DROP: u64 = 6;
const KIND_FOLLOWER_CRASH: u64 = 7;
const KIND_ACK_DELAY: u64 = 8;
const KIND_CORRUPT: u64 = 9;

/// A seeded, deterministic schedule of injected faults. The default
/// ([`FaultPlan::none`]) injects nothing and costs one branch per
/// check.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    mutator_panic_rate: f64,
    mutator_panic_mid_rate: f64,
    drop_reply_rate: f64,
    delay_reply_rate: f64,
    delay: Duration,
    mutator_stall_rate: f64,
    stall: Duration,
    link_drop_rate: f64,
    follower_crash_rate: f64,
    ack_delay_rate: f64,
    ack_delay: Duration,
    corrupt_state_rate: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// No faults, ever.
    pub fn none() -> FaultPlan {
        FaultPlan::seeded(0)
    }

    /// A plan with the given seed and no faults enabled yet; chain the
    /// `with_*` builders to arm specific kinds.
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            mutator_panic_rate: 0.0,
            mutator_panic_mid_rate: 0.0,
            drop_reply_rate: 0.0,
            delay_reply_rate: 0.0,
            delay: Duration::ZERO,
            mutator_stall_rate: 0.0,
            stall: Duration::ZERO,
            link_drop_rate: 0.0,
            follower_crash_rate: 0.0,
            ack_delay_rate: 0.0,
            ack_delay: Duration::ZERO,
            corrupt_state_rate: 0.0,
        }
    }

    /// Panic the mutator *before* applying a batch, at this rate.
    pub fn with_mutator_panics(mut self, rate: f64) -> FaultPlan {
        self.mutator_panic_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Panic the mutator *mid-batch* (after the batch reached some
    /// pipelines but not all), at this rate.
    pub fn with_mid_batch_panics(mut self, rate: f64) -> FaultPlan {
        self.mutator_panic_mid_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Silently drop reply frames at this rate (the connection is
    /// closed instead, as a crashed peer would).
    pub fn with_dropped_replies(mut self, rate: f64) -> FaultPlan {
        self.drop_reply_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Delay reply frames by `delay` at this rate.
    pub fn with_delayed_replies(mut self, rate: f64, delay: Duration) -> FaultPlan {
        self.delay_reply_rate = rate.clamp(0.0, 1.0);
        self.delay = delay;
        self
    }

    /// Stall the mutator for `stall` before applying a batch, at this
    /// rate — models a slow mutator so bounded-staleness rejection can
    /// be exercised deterministically.
    pub fn with_mutator_stalls(mut self, rate: f64, stall: Duration) -> FaultPlan {
        self.mutator_stall_rate = rate.clamp(0.0, 1.0);
        self.stall = stall;
        self
    }

    /// Sever the replication link mid-segment (the follower applies a
    /// prefix of the segment, then the connection dies), at this rate
    /// per shipped segment.
    pub fn with_link_drops(mut self, rate: f64) -> FaultPlan {
        self.link_drop_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Crash the follower mid-replay (it loses all in-memory state and
    /// re-bootstraps from the primary's checkpoint), at this rate per
    /// shipped segment.
    pub fn with_follower_crashes(mut self, rate: f64) -> FaultPlan {
        self.follower_crash_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Delay follower acks by `delay` at this rate — models a slow
    /// replication link so ack-clamped WAL compaction and laggard
    /// eviction can be exercised deterministically.
    pub fn with_delayed_acks(mut self, rate: f64, delay: Duration) -> FaultPlan {
        self.ack_delay_rate = rate.clamp(0.0, 1.0);
        self.ack_delay = delay;
        self
    }

    /// Silently corrupt the replica's warm state after applying batch
    /// `seq`, at this rate — the injected divergence that probe
    /// fingerprint comparison must catch.
    pub fn with_state_corruption(mut self, rate: f64) -> FaultPlan {
        self.corrupt_state_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// True when no fault kind is armed (the hot-path short-circuit).
    pub fn is_none(&self) -> bool {
        self.mutator_panic_rate == 0.0
            && self.mutator_panic_mid_rate == 0.0
            && self.drop_reply_rate == 0.0
            && self.delay_reply_rate == 0.0
            && self.mutator_stall_rate == 0.0
            && self.link_drop_rate == 0.0
            && self.follower_crash_rate == 0.0
            && self.ack_delay_rate == 0.0
            && self.corrupt_state_rate == 0.0
    }

    /// Should the mutator panic before applying batch `seq`?
    pub fn mutator_panic(&self, seq: u64) -> bool {
        self.mutator_panic_rate > 0.0 && unit(self.seed, KIND_PANIC, seq) < self.mutator_panic_rate
    }

    /// Should the mutator panic mid-way through batch `seq`?
    pub fn mutator_panic_mid(&self, seq: u64) -> bool {
        self.mutator_panic_mid_rate > 0.0
            && unit(self.seed, KIND_PANIC_MID, seq) < self.mutator_panic_mid_rate
    }

    /// Should reply number `k` be dropped (connection severed)?
    pub fn drop_reply(&self, k: u64) -> bool {
        self.drop_reply_rate > 0.0 && unit(self.seed, KIND_DROP, k) < self.drop_reply_rate
    }

    /// Should reply number `k` be delayed, and by how much?
    pub fn delay_reply(&self, k: u64) -> Option<Duration> {
        if self.delay_reply_rate > 0.0 && unit(self.seed, KIND_DELAY, k) < self.delay_reply_rate {
            Some(self.delay)
        } else {
            None
        }
    }

    /// Should the mutator stall before applying batch `seq`, and for
    /// how long?
    pub fn mutator_stall(&self, seq: u64) -> Option<Duration> {
        if self.mutator_stall_rate > 0.0
            && unit(self.seed, KIND_STALL, seq) < self.mutator_stall_rate
        {
            Some(self.stall)
        } else {
            None
        }
    }

    /// Should the replication link be severed mid-way through shipped
    /// segment number `k`?
    pub fn link_drop(&self, k: u64) -> bool {
        self.link_drop_rate > 0.0 && unit(self.seed, KIND_LINK_DROP, k) < self.link_drop_rate
    }

    /// Should the follower crash (lose all in-memory state) while
    /// replaying shipped segment number `k`?
    pub fn follower_crash(&self, k: u64) -> bool {
        self.follower_crash_rate > 0.0
            && unit(self.seed, KIND_FOLLOWER_CRASH, k) < self.follower_crash_rate
    }

    /// Should the follower's ack for segment number `k` be delayed,
    /// and by how much?
    pub fn ack_delay(&self, k: u64) -> Option<Duration> {
        if self.ack_delay_rate > 0.0 && unit(self.seed, KIND_ACK_DELAY, k) < self.ack_delay_rate {
            Some(self.ack_delay)
        } else {
            None
        }
    }

    /// Should the warm state be silently corrupted after applying
    /// batch `seq`?
    pub fn corrupt_state(&self, seq: u64) -> bool {
        self.corrupt_state_rate > 0.0
            && unit(self.seed, KIND_CORRUPT, seq) < self.corrupt_state_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_injects_nothing() {
        let p = FaultPlan::none();
        assert!(p.is_none());
        for k in 0..1000 {
            assert!(!p.mutator_panic(k));
            assert!(!p.mutator_panic_mid(k));
            assert!(!p.drop_reply(k));
            assert!(p.delay_reply(k).is_none());
        }
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::seeded(7).with_mutator_panics(0.3);
        let b = FaultPlan::seeded(7).with_mutator_panics(0.3);
        let c = FaultPlan::seeded(8).with_mutator_panics(0.3);
        let draws_a: Vec<bool> = (0..256).map(|s| a.mutator_panic(s)).collect();
        let draws_b: Vec<bool> = (0..256).map(|s| b.mutator_panic(s)).collect();
        let draws_c: Vec<bool> = (0..256).map(|s| c.mutator_panic(s)).collect();
        assert_eq!(draws_a, draws_b, "same seed ⇒ same schedule");
        assert_ne!(draws_a, draws_c, "different seed ⇒ different schedule");
        let hits = draws_a.iter().filter(|&&x| x).count();
        assert!(
            (40..=115).contains(&hits),
            "rate 0.3 over 256 draws landed wildly off: {hits}"
        );
    }

    #[test]
    fn kinds_draw_independently() {
        let p = FaultPlan::seeded(42)
            .with_mutator_panics(0.5)
            .with_dropped_replies(0.5);
        let panics: Vec<bool> = (0..512).map(|s| p.mutator_panic(s)).collect();
        let drops: Vec<bool> = (0..512).map(|s| p.drop_reply(s)).collect();
        assert_ne!(panics, drops, "kinds must not share a decision stream");
    }

    #[test]
    fn delay_carries_the_configured_duration() {
        let p = FaultPlan::seeded(3).with_delayed_replies(1.0, Duration::from_millis(25));
        assert_eq!(p.delay_reply(0), Some(Duration::from_millis(25)));
        assert!(!p.is_none());
    }

    #[test]
    fn replication_kinds_draw_independently_and_arm_is_none() {
        let p = FaultPlan::seeded(9)
            .with_link_drops(0.5)
            .with_follower_crashes(0.5)
            .with_state_corruption(0.5);
        assert!(!p.is_none());
        let drops: Vec<bool> = (0..512).map(|k| p.link_drop(k)).collect();
        let crashes: Vec<bool> = (0..512).map(|k| p.follower_crash(k)).collect();
        let corrupts: Vec<bool> = (0..512).map(|k| p.corrupt_state(k)).collect();
        assert_ne!(drops, crashes);
        assert_ne!(drops, corrupts);
        let again: Vec<bool> = (0..512).map(|k| p.link_drop(k)).collect();
        assert_eq!(drops, again, "replication draws must be deterministic");

        let acks = FaultPlan::seeded(4).with_delayed_acks(1.0, Duration::from_millis(5));
        assert_eq!(acks.ack_delay(7), Some(Duration::from_millis(5)));
        assert!(!acks.is_none());
        assert!(FaultPlan::none().ack_delay(7).is_none());
        assert!(!FaultPlan::none().corrupt_state(7));
    }
}
