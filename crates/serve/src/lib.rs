//! Epoch-snapshot graph query service.
//!
//! Turns the workspace's reordering + warm-start machinery into a
//! long-running serving system, per the paper's "serve heavy traffic"
//! motivation:
//!
//! - **[`epoch`]** — RCU-style snapshots: readers pin an immutable
//!   [`EpochState`] (reordered CSR, processing order, converged warm
//!   states) and never see a mutation; the mutator publishes the next
//!   epoch with a swap and old epochs retire with their last reader.
//! - **[`core`]** — [`ServeCore`], the transport-agnostic service:
//!   epoch-pinned query execution, a single mutator thread draining
//!   update batches through `StreamingPipeline::apply_batch`, and
//!   counters.
//! - **[`admission`]** — leader/follower combining of concurrent
//!   same-algorithm queries into one multi-source run.
//! - **[`spec`]** — wire-addressable algorithm/mode codes and the
//!   [`MultiSource`] widening wrapper.
//! - **[`wire`]** — the length-prefixed binary protocol.
//! - **[`server`] / [`client`]** — thread-per-connection TCP front end
//!   and the matching blocking client.
//! - **[`wal`] / [`checkpoint`]** — the durability layer: a CRC-framed
//!   write-ahead log of admitted update batches plus atomic epoch
//!   checkpoints (full or delta-chained), so a crashed server recovers
//!   to a bit-identical epoch by replaying the WAL tail.
//! - **[`replication`]** — WAL-shipping primary/follower pairs: the
//!   follower replays the primary's records through the same
//!   supervised apply path (bit-identical epochs), fingerprint probes
//!   detect divergence, checkpoint re-sync repairs it.
//! - **[`fault`]** — deterministic, seeded fault injection
//!   ([`FaultPlan`]) used by the crash-recovery and replication test
//!   harnesses.

#![warn(missing_docs)]

pub mod admission;
pub mod checkpoint;
pub mod client;
pub mod core;
pub mod epoch;
pub mod fault;
pub mod replication;
pub mod server;
pub mod spec;
pub mod wal;
pub mod wire;

pub use crate::core::{
    DurabilityConfig, ProbeReport, QueryOutcome, QueryRequest, Role, SegmentRecords, ServeConfig,
    ServeCore, ServeError, StatsSnapshot, WarmSpec,
};
pub use admission::{Admission, AdmissionQueue};
pub use checkpoint::{
    read_checkpoint, read_checkpoint_chain, write_checkpoint, Checkpoint, DeltaCheckpoint,
    PipelineCheckpoint,
};
pub use client::{ClientError, RetryPolicy, ServeClient};
pub use epoch::{EpochCell, EpochState, WarmEntry};
pub use fault::FaultPlan;
pub use replication::{
    bootstrap_follower, start_follower, FollowerHandle, ReplicaPuller, ReplicationConfig,
    StepOutcome,
};
pub use server::{serve, serve_with, ServerConfig, ServerHandle};
pub use spec::{AlgSpec, ModeSpec, MultiSource, RoleSpec};
pub use wal::{
    compact_wal, read_wal, read_wal_segment, truncate_wal, SyncPolicy, TailStatus, WalContents,
    WalRecord, WalWriter,
};
pub use wire::{ErrorCode, ProbeVerdict, QueryReply, Reply, Request, WireError};

use std::sync::{Mutex, MutexGuard};

/// Locks `m`, recovering the guard if a previous holder panicked.
///
/// Every shared structure in this crate is left consistent at each
/// instruction boundary (swaps of `Arc`s, counter bumps), so a
/// poisoned mutex carries no torn state — propagating the poison
/// would only turn one thread's panic into a service-wide outage.
pub(crate) fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod end_to_end {
    use super::*;
    use gograph_graph::generators::{planted_partition, PlantedPartitionConfig};
    use gograph_graph::EdgeUpdate;
    use std::time::Duration;

    #[test]
    fn tcp_roundtrip_query_update_stats_shutdown() {
        let g = planted_partition(PlantedPartitionConfig {
            num_vertices: 60,
            num_edges: 300,
            communities: 3,
            p_intra: 0.8,
            gamma: 2.4,
            seed: 5,
        });
        let core = ServeCore::start(
            &g,
            ServeConfig {
                warm: vec![WarmSpec::new(AlgSpec::Sssp, 0)],
                admission_window: Duration::ZERO,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let server = serve("127.0.0.1:0", core).unwrap();
        let addr = server.local_addr();

        let mut c = ServeClient::connect(addr).unwrap();
        let q = c
            .query(AlgSpec::Sssp, ModeSpec::Async, false, &[0], &[0, 5, 59])
            .unwrap();
        assert_eq!(q.epoch, 0);
        assert!(q.warm);
        assert!(q.converged);
        assert_eq!(q.effective_sources, vec![0]);
        assert_eq!(q.values.len(), 3);
        assert_eq!(q.values[0], (0, 0.0), "source distance is 0");

        let (accepted, _) = c
            .send_updates(&[EdgeUpdate::insert(0, 30), EdgeUpdate::insert(30, 59)])
            .unwrap();
        assert_eq!(accepted, 2);
        server.core().quiesce();

        let s = c.stats().unwrap();
        assert_eq!(s.epochs_published, 1);
        assert_eq!(s.queries, 1);
        assert_eq!(s.num_edges, g.num_edges() as u64 + 2);

        let q2 = c
            .query(AlgSpec::Sssp, ModeSpec::Async, false, &[0], &[59])
            .unwrap();
        assert_eq!(q2.epoch, 1, "post-update queries pin the new epoch");

        let last = c.shutdown_server().unwrap();
        assert!(last.queries >= 2);
        // The accept loop notices the flag; wait() would block until it
        // has, shutdown() forces it.
        let mut server = server;
        server.shutdown();
        assert!(server.is_stopped());
    }
}
