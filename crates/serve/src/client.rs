//! Blocking client for the wire protocol — used by the load generator,
//! the CI smoke, and tests.
//!
//! The client is fault-aware: [`ServeClient::connect_with_retry`]
//! retries the initial connect with exponential backoff, and
//! **idempotent** requests (queries, stats) transparently reconnect and
//! retry when the server drops the connection mid-roundtrip (as the
//! fault plan's reply drops, a restart, or a capacity shed do). Update
//! batches are *not* auto-retried — the ack may have been lost after
//! the WAL append, and resending would double-apply.

use crate::core::{SegmentRecords, StatsSnapshot};
use crate::fault::splitmix64;
use crate::spec::{AlgSpec, ModeSpec};
use crate::wire::{
    decode_reply, encode_request, read_frame, write_frame, ErrorCode, ProbeVerdict, QueryReply,
    Reply, Request,
};
use gograph_graph::{EdgeUpdate, VertexId};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Client-side failure: transport, protocol, or a server-reported error.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (after retries, where applicable).
    Io(std::io::Error),
    /// The server's bytes didn't parse.
    Protocol(String),
    /// The server answered with a typed error reply.
    Server {
        /// The machine-readable error class.
        code: ErrorCode,
        /// The human-readable detail.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server { code, message } => {
                write!(f, "server error ({code:?}): {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// Reconnect/retry tuning for [`ServeClient`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Retries after the first failed attempt (0 disables retrying).
    pub max_retries: u32,
    /// First backoff; doubles per attempt.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Seed for the deterministic jitter ([0.5, 1.5)× the backoff) that
    /// keeps a reconnecting fleet from stampeding in lockstep.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 3,
            base_backoff: Duration::from_millis(20),
            max_backoff: Duration::from_secs(1),
            jitter_seed: 0x9E37_79B9,
        }
    }
}

impl RetryPolicy {
    /// The jittered backoff before retry number `attempt` (0-based).
    fn backoff(&self, attempt: u32) -> Duration {
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.max_backoff);
        let h = splitmix64(self.jitter_seed ^ u64::from(attempt));
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        exp.mul_f64(0.5 + unit)
    }
}

/// A blocking connection to a `gograph_serve` server.
#[derive(Debug)]
pub struct ServeClient {
    stream: TcpStream,
    addr: SocketAddr,
    retry: RetryPolicy,
}

impl ServeClient {
    /// Connects to `addr` (no connect retries; roundtrip retries use
    /// [`RetryPolicy::default`]).
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<ServeClient> {
        let addr = resolve(addr)?;
        let stream = open(addr)?;
        Ok(ServeClient {
            stream,
            addr,
            retry: RetryPolicy::default(),
        })
    }

    /// Connects to `addr`, retrying refused/failed connects with
    /// exponential backoff + jitter — rides out a server that is
    /// restarting (e.g. recovering from its WAL).
    pub fn connect_with_retry(
        addr: impl ToSocketAddrs,
        retry: RetryPolicy,
    ) -> std::io::Result<ServeClient> {
        let addr = resolve(addr)?;
        let mut attempt = 0u32;
        loop {
            match open(addr) {
                Ok(stream) => {
                    return Ok(ServeClient {
                        stream,
                        addr,
                        retry,
                    })
                }
                Err(e) if attempt < retry.max_retries => {
                    let _ = e;
                    std::thread::sleep(retry.backoff(attempt));
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// The server address this client talks (and reconnects) to.
    pub fn peer_addr(&self) -> SocketAddr {
        self.addr
    }

    /// One request/reply exchange with no retry (used for updates and
    /// shutdown, which must not be replayed blindly).
    fn roundtrip(&mut self, req: &Request) -> Result<Reply, ClientError> {
        write_frame(&mut self.stream, &encode_request(req))?;
        let frame = read_frame(&mut self.stream)?
            .ok_or_else(|| ClientError::Protocol("server closed the connection".into()))?;
        let reply = decode_reply(frame).map_err(|e| ClientError::Protocol(e.to_string()))?;
        if let Reply::Error { code, message } = reply {
            return Err(ClientError::Server { code, message });
        }
        Ok(reply)
    }

    /// [`roundtrip`](Self::roundtrip) for idempotent requests: on a
    /// transport failure (or a capacity shed), reconnects and retries
    /// under the policy's backoff.
    fn roundtrip_idempotent(&mut self, req: &Request) -> Result<Reply, ClientError> {
        let mut attempt = 0u32;
        loop {
            let retryable = match self.roundtrip(req) {
                Ok(reply) => return Ok(reply),
                Err(e) if attempt >= self.retry.max_retries => return Err(e),
                Err(ClientError::Io(_)) => true,
                // A closed connection surfaces as a protocol EOF.
                Err(ClientError::Protocol(m)) => m.contains("closed the connection"),
                Err(ClientError::Server {
                    code: ErrorCode::Capacity,
                    ..
                }) => true,
                Err(e) => return Err(e),
            };
            if !retryable {
                unreachable!("non-retryable errors returned above");
            }
            std::thread::sleep(self.retry.backoff(attempt));
            attempt += 1;
            if let Ok(stream) = open(self.addr) {
                self.stream = stream;
            }
        }
    }

    /// Runs `alg` from `sources`, asking for the final states of
    /// `targets`. Retries transparently on transport failure —
    /// queries are read-only and safe to repeat.
    pub fn query(
        &mut self,
        alg: AlgSpec,
        mode: ModeSpec,
        combine: bool,
        sources: &[VertexId],
        targets: &[VertexId],
    ) -> Result<QueryReply, ClientError> {
        self.query_bounded(alg, mode, combine, None, sources, targets)
    }

    /// [`query`](Self::query) with a bounded-staleness requirement: the
    /// server rejects with [`ErrorCode::Stale`] instead of answering
    /// from a snapshot lagging more than `max_epoch_lag` batches.
    pub fn query_bounded(
        &mut self,
        alg: AlgSpec,
        mode: ModeSpec,
        combine: bool,
        max_epoch_lag: Option<u64>,
        sources: &[VertexId],
        targets: &[VertexId],
    ) -> Result<QueryReply, ClientError> {
        match self.roundtrip_idempotent(&Request::Query {
            alg,
            mode,
            combine,
            max_epoch_lag,
            sources: sources.to_vec(),
            targets: targets.to_vec(),
        })? {
            Reply::Query(q) => Ok(q),
            other => Err(ClientError::Protocol(format!(
                "expected query reply, got {other:?}"
            ))),
        }
    }

    /// Enqueues an update batch; returns `(accepted, epochs_published)`.
    /// Never auto-retried: a lost ack does not prove a lost batch, and
    /// a blind resend could apply the updates twice.
    pub fn send_updates(&mut self, updates: &[EdgeUpdate]) -> Result<(u32, u64), ClientError> {
        match self.roundtrip(&Request::Updates(updates.to_vec()))? {
            Reply::UpdateAck {
                accepted,
                epochs_published,
            } => Ok((accepted, epochs_published)),
            other => Err(ClientError::Protocol(format!(
                "expected update ack, got {other:?}"
            ))),
        }
    }

    /// Fetches the server's counter snapshot (idempotent, retried).
    pub fn stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        match self.roundtrip_idempotent(&Request::Stats)? {
            Reply::Stats(s) => Ok(s),
            other => Err(ClientError::Protocol(format!(
                "expected stats reply, got {other:?}"
            ))),
        }
    }

    /// Asks the server to shut down; the final stats snapshot is the
    /// acknowledgement. Not retried (a repeat would hit a dead server).
    pub fn shutdown_server(&mut self) -> Result<StatsSnapshot, ClientError> {
        match self.roundtrip(&Request::Shutdown)? {
            Reply::Stats(s) => Ok(s),
            other => Err(ClientError::Protocol(format!(
                "expected stats reply, got {other:?}"
            ))),
        }
    }

    /// Follower → primary: registers with `after_seq` as the cumulative
    /// ack and pulls the next WAL segment. Returns `(primary_seq,
    /// resync, records)`. Idempotent — re-asking for the same records
    /// is harmless, so transport failures are retried.
    pub fn subscribe(
        &mut self,
        follower: u64,
        after_seq: u64,
        max_records: u32,
    ) -> Result<(u64, bool, SegmentRecords), ClientError> {
        match self.roundtrip_idempotent(&Request::Subscribe {
            follower,
            after_seq,
            max_records,
        })? {
            Reply::WalSegment {
                primary_seq,
                resync,
                records,
            } => Ok((primary_seq, resync, records)),
            other => Err(ClientError::Protocol(format!(
                "expected wal segment, got {other:?}"
            ))),
        }
    }

    /// Follower → primary: acks everything through `seq` and submits
    /// this follower's probe fingerprints at that watermark for
    /// comparison. A divergence surfaces as
    /// [`ErrorCode::Divergent`]. Idempotent (re-acking the same
    /// watermark is harmless), so transport failures are retried.
    pub fn replica_ack(
        &mut self,
        follower: u64,
        seq: u64,
        fingerprints: &[u64],
    ) -> Result<(ProbeVerdict, u64, Vec<u64>), ClientError> {
        match self.roundtrip_idempotent(&Request::ReplicaAck {
            follower,
            seq,
            fingerprints: fingerprints.to_vec(),
        })? {
            Reply::Probe {
                seq,
                verdict,
                fingerprints,
                ..
            } => Ok((verdict, seq, fingerprints)),
            other => Err(ClientError::Protocol(format!(
                "expected probe reply, got {other:?}"
            ))),
        }
    }

    /// Fetches the node's probe fingerprints at `at_seq` (or its
    /// newest settled watermark). `(seq, epoch, verdict, fingerprints)`;
    /// idempotent, retried.
    pub fn probe(
        &mut self,
        at_seq: Option<u64>,
    ) -> Result<(u64, u64, ProbeVerdict, Vec<u64>), ClientError> {
        match self.roundtrip_idempotent(&Request::Probe { at_seq })? {
            Reply::Probe {
                seq,
                epoch,
                verdict,
                fingerprints,
            } => Ok((seq, epoch, verdict, fingerprints)),
            other => Err(ClientError::Protocol(format!(
                "expected probe reply, got {other:?}"
            ))),
        }
    }

    /// Downloads the primary's latest checkpoint (encoded) for
    /// follower bootstrap or re-sync. Idempotent, retried.
    pub fn fetch_checkpoint(&mut self) -> Result<Vec<u8>, ClientError> {
        match self.roundtrip_idempotent(&Request::FetchCheckpoint)? {
            Reply::Checkpoint(bytes) => Ok(bytes),
            other => Err(ClientError::Protocol(format!(
                "expected checkpoint reply, got {other:?}"
            ))),
        }
    }

    /// Promotes the node to primary (failover); the stats snapshot is
    /// the acknowledgement. Idempotent, retried.
    pub fn promote(&mut self) -> Result<StatsSnapshot, ClientError> {
        match self.roundtrip_idempotent(&Request::Promote)? {
            Reply::Stats(s) => Ok(s),
            other => Err(ClientError::Protocol(format!(
                "expected stats reply, got {other:?}"
            ))),
        }
    }
}

fn resolve(addr: impl ToSocketAddrs) -> std::io::Result<SocketAddr> {
    addr.to_socket_addrs()?.next().ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "address resolved to nothing",
        )
    })
}

fn open(addr: SocketAddr) -> std::io::Result<TcpStream> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    Ok(stream)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_is_capped_and_jittered() {
        let p = RetryPolicy {
            max_retries: 8,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(200),
            jitter_seed: 7,
        };
        let b: Vec<Duration> = (0..8).map(|a| p.backoff(a)).collect();
        // Jitter spans [0.5, 1.5)× the exponential schedule.
        assert!(b[0] >= Duration::from_millis(5) && b[0] < Duration::from_millis(15));
        assert!(b[7] >= Duration::from_millis(100) && b[7] < Duration::from_millis(300));
        // Deterministic for a fixed seed...
        assert_eq!(p.backoff(3), p.backoff(3));
        // ...and different across seeds.
        let q = RetryPolicy {
            jitter_seed: 8,
            ..p
        };
        assert_ne!(p.backoff(3), q.backoff(3));
    }
}
