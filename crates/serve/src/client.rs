//! Blocking client for the wire protocol — used by the load generator,
//! the CI smoke, and tests.

use crate::core::StatsSnapshot;
use crate::spec::{AlgSpec, ModeSpec};
use crate::wire::{
    decode_reply, encode_request, read_frame, write_frame, QueryReply, Reply, Request,
};
use gograph_graph::{EdgeUpdate, VertexId};
use std::net::{TcpStream, ToSocketAddrs};

/// Client-side failure: transport, protocol, or a server-reported error.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server's bytes didn't parse.
    Protocol(String),
    /// The server answered with an error reply.
    Server(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// A blocking connection to a `gograph_serve` server.
#[derive(Debug)]
pub struct ServeClient {
    stream: TcpStream,
}

impl ServeClient {
    /// Connects to `addr`.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<ServeClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(ServeClient { stream })
    }

    fn roundtrip(&mut self, req: &Request) -> Result<Reply, ClientError> {
        write_frame(&mut self.stream, &encode_request(req))?;
        let frame = read_frame(&mut self.stream)?
            .ok_or_else(|| ClientError::Protocol("server closed the connection".into()))?;
        let reply = decode_reply(frame).map_err(|e| ClientError::Protocol(e.to_string()))?;
        if let Reply::Error(msg) = reply {
            return Err(ClientError::Server(msg));
        }
        Ok(reply)
    }

    /// Runs `alg` from `sources`, asking for the final states of
    /// `targets`.
    pub fn query(
        &mut self,
        alg: AlgSpec,
        mode: ModeSpec,
        combine: bool,
        sources: &[VertexId],
        targets: &[VertexId],
    ) -> Result<QueryReply, ClientError> {
        match self.roundtrip(&Request::Query {
            alg,
            mode,
            combine,
            sources: sources.to_vec(),
            targets: targets.to_vec(),
        })? {
            Reply::Query(q) => Ok(q),
            other => Err(ClientError::Protocol(format!(
                "expected query reply, got {other:?}"
            ))),
        }
    }

    /// Enqueues an update batch; returns `(accepted, epochs_published)`.
    pub fn send_updates(&mut self, updates: &[EdgeUpdate]) -> Result<(u32, u64), ClientError> {
        match self.roundtrip(&Request::Updates(updates.to_vec()))? {
            Reply::UpdateAck {
                accepted,
                epochs_published,
            } => Ok((accepted, epochs_published)),
            other => Err(ClientError::Protocol(format!(
                "expected update ack, got {other:?}"
            ))),
        }
    }

    /// Fetches the server's counter snapshot.
    pub fn stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        match self.roundtrip(&Request::Stats)? {
            Reply::Stats(s) => Ok(s),
            other => Err(ClientError::Protocol(format!(
                "expected stats reply, got {other:?}"
            ))),
        }
    }

    /// Asks the server to shut down; the final stats snapshot is the
    /// acknowledgement.
    pub fn shutdown_server(&mut self) -> Result<StatsSnapshot, ClientError> {
        match self.roundtrip(&Request::Shutdown)? {
            Reply::Stats(s) => Ok(s),
            other => Err(ClientError::Protocol(format!(
                "expected stats reply, got {other:?}"
            ))),
        }
    }
}
