//! WAL-shipping replication: the follower side of a primary/follower
//! pair.
//!
//! The primary is an ordinary durable [`ServeCore`]: every admitted
//! batch is fsynced to its WAL before the mutator applies it. A
//! follower bootstraps from the primary's latest checkpoint
//! ([`bootstrap_follower`]) and then pulls the settled WAL tail in
//! segments ([`ReplicaPuller::step`]), feeding each record through
//! [`ServeCore::replicate_batch`] — the same supervised
//! `StreamingPipeline` apply path live traffic and crash recovery use.
//! Batch failures are deterministic functions of (state, batch), so
//! the follower skips exactly the batches the primary skipped and a
//! healthy follower's epochs are **bit-identical** to the primary's.
//!
//! That identity is what makes divergence *detectable*: after applying
//! a segment the puller acks its watermark together with the
//! fingerprints of its own quiesced state at that seq, and the primary
//! compares them against its recorded probe history. A mismatch is a
//! typed [`ErrorCode::Divergent`] fault — the follower discards its
//! state and re-syncs from the primary's checkpoint chain, then
//! replays the newer WAL tail. The same re-sync path serves as the
//! escape hatch when a follower lags past the primary's compaction
//! horizon.
//!
//! Replication faults (link drops mid-segment, follower crashes
//! mid-replay, delayed acks) are driven by the follower core's
//! [`FaultPlan`] so the test harness can exercise every recovery edge
//! deterministically.
//!
//! [`ErrorCode::Divergent`]: crate::wire::ErrorCode::Divergent
//! [`FaultPlan`]: crate::fault::FaultPlan

use crate::checkpoint::decode_checkpoint;
use crate::client::{ClientError, RetryPolicy, ServeClient};
use crate::core::{Role, ServeConfig, ServeCore};
use crate::wire::ErrorCode;
use bytes::Bytes;
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Tuning for a [`ReplicaPuller`].
#[derive(Debug, Clone)]
pub struct ReplicationConfig {
    /// This follower's identity in the primary's registry. Two pullers
    /// sharing an id would stomp each other's ack watermark; give each
    /// follower its own.
    pub follower_id: u64,
    /// Upper bound on WAL records per subscribe round-trip (the
    /// primary additionally clamps to its own cap).
    pub max_records_per_segment: u32,
    /// How long [`start_follower`]'s loop sleeps after an idle step or
    /// a transport error before polling again.
    pub poll_interval: Duration,
}

impl Default for ReplicationConfig {
    fn default() -> ReplicationConfig {
        ReplicationConfig {
            follower_id: 1,
            max_records_per_segment: 256,
            poll_interval: Duration::from_millis(20),
        }
    }
}

/// What one [`ReplicaPuller::step`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The primary had nothing settled past our watermark.
    Idle,
    /// Applied this many WAL records and acked the new watermark.
    Applied(usize),
    /// Discarded local state and re-synced from the primary's
    /// checkpoint (divergence, compaction overrun, or bootstrap race).
    Resynced,
    /// Fault injection dropped the link mid-segment: a prefix was
    /// applied and the ack for it was lost.
    LinkDropped,
    /// Fault injection crashed the follower mid-replay; it came back
    /// via checkpoint re-sync.
    Crashed,
    /// This node is no longer a follower (it was promoted); the pull
    /// loop should stop.
    Stopped,
}

/// Pulls the primary's settled WAL records into a follower core, one
/// segment per [`step`](ReplicaPuller::step). Single-threaded by
/// design: replication progress is a deterministic sequence of steps,
/// which is what lets the fault harness replay exact schedules.
pub struct ReplicaPuller {
    core: Arc<ServeCore>,
    client: ServeClient,
    peer: SocketAddr,
    config: ReplicationConfig,
    segment_no: u64,
    acked_seq: u64,
}

impl ReplicaPuller {
    /// Wraps an already-bootstrapped follower `core` whose state
    /// matches the primary at `acked_seq`.
    pub fn new(
        core: Arc<ServeCore>,
        client: ServeClient,
        config: ReplicationConfig,
        acked_seq: u64,
    ) -> ReplicaPuller {
        let peer = client.peer_addr();
        ReplicaPuller {
            core,
            client,
            peer,
            config,
            segment_no: 0,
            acked_seq,
        }
    }

    /// The follower core this puller feeds.
    pub fn core(&self) -> &Arc<ServeCore> {
        &self.core
    }

    /// The primary's address.
    pub fn peer(&self) -> SocketAddr {
        self.peer
    }

    /// The highest primary seq this follower has applied and acked.
    pub fn acked_seq(&self) -> u64 {
        self.acked_seq
    }

    /// One replication round-trip: subscribe after our watermark,
    /// replay the returned records through the supervised apply path,
    /// ack with our fingerprints at the new watermark, and handle
    /// whatever the primary (or the fault plan) throws at us.
    pub fn step(&mut self) -> Result<StepOutcome, ClientError> {
        if self.core.role() != Role::Follower {
            return Ok(StepOutcome::Stopped);
        }
        let (primary_seq, resync, records) = self.client.subscribe(
            self.config.follower_id,
            self.acked_seq,
            self.config.max_records_per_segment,
        )?;
        self.core.note_primary_seq(primary_seq);
        if resync {
            self.resync()?;
            return Ok(StepOutcome::Resynced);
        }
        if records.is_empty() {
            return Ok(StepOutcome::Idle);
        }

        let k = self.segment_no;
        self.segment_no += 1;
        let faults = self.core.fault_plan().clone();

        if faults.follower_crash(k) {
            // Crash mid-replay: some prefix of the segment made it into
            // the in-memory pipelines, then the process died. A real
            // restart has no durable state (followers keep none), so it
            // comes back the only way it can — checkpoint re-sync.
            for (seq, updates) in records.iter().take(records.len() / 2) {
                self.apply(*seq, updates.clone())?;
            }
            self.core.quiesce();
            self.resync()?;
            return Ok(StepOutcome::Crashed);
        }

        if faults.link_drop(k) {
            // Link drops mid-segment: a prefix was applied but the ack
            // never reached the primary. The watermark advances locally
            // so the next subscribe re-fetches only the lost suffix;
            // the primary just sees a stale ack until then.
            let prefix = records.len().div_ceil(2);
            let mut last = self.acked_seq;
            for (seq, updates) in records.iter().take(prefix) {
                self.apply(*seq, updates.clone())?;
                last = *seq;
            }
            self.core.quiesce();
            self.acked_seq = last;
            return Ok(StepOutcome::LinkDropped);
        }

        let n = records.len();
        let mut last = self.acked_seq;
        for (seq, updates) in records {
            self.apply(seq, updates)?;
            last = seq;
        }
        // Fingerprints are only meaningful once the mutator has settled
        // every shipped batch.
        self.core.quiesce();
        self.acked_seq = last;

        if let Some(d) = faults.ack_delay(k) {
            std::thread::sleep(d);
        }
        let fingerprints = self.core.probe(Some(self.acked_seq)).fingerprints;
        match self
            .client
            .replica_ack(self.config.follower_id, self.acked_seq, &fingerprints)
        {
            Ok(_) => Ok(StepOutcome::Applied(n)),
            Err(ClientError::Server {
                code: ErrorCode::Divergent,
                ..
            }) => {
                // The primary compared our fingerprints against its
                // probe history and they differ: our state is wrong.
                // Throw it away and rebuild from the primary's truth.
                self.resync()?;
                Ok(StepOutcome::Resynced)
            }
            Err(e) => Err(e),
        }
    }

    fn apply(&self, seq: u64, updates: Vec<gograph_graph::EdgeUpdate>) -> Result<(), ClientError> {
        self.core
            .replicate_batch(seq, updates)
            .map_err(|e| ClientError::Protocol(format!("replicate_batch(seq {seq}): {e}")))
    }

    /// Fetches the primary's checkpoint chain and resets the follower
    /// core (and our watermark) to it.
    fn resync(&mut self) -> Result<(), ClientError> {
        let bytes = self.client.fetch_checkpoint()?;
        let ck = decode_checkpoint(Bytes::from(bytes))
            .map_err(|e| ClientError::Protocol(format!("bad checkpoint from primary: {e}")))?;
        let seq = ck.seq;
        self.core
            .resync_from(ck)
            .map_err(|e| ClientError::Protocol(format!("resync to seq {seq}: {e}")))?;
        self.acked_seq = seq;
        Ok(())
    }
}

/// Connects to a primary, ships its latest checkpoint over the wire,
/// builds a follower [`ServeCore`] from it, and returns the core plus
/// a [`ReplicaPuller`] positioned at the checkpoint's seq.
///
/// `config` shapes the follower's serving behaviour (staleness bound,
/// admission window, fault plan); its `durability` must be `None` —
/// a follower's durable truth lives on the primary.
pub fn bootstrap_follower(
    peer: impl ToSocketAddrs,
    config: ServeConfig,
    replication: ReplicationConfig,
) -> Result<(Arc<ServeCore>, ReplicaPuller), ClientError> {
    let mut client = ServeClient::connect_with_retry(peer, RetryPolicy::default())?;
    let bytes = client.fetch_checkpoint()?;
    let ck = decode_checkpoint(Bytes::from(bytes))
        .map_err(|e| ClientError::Protocol(format!("bad checkpoint from primary: {e}")))?;
    let seq = ck.seq;
    let core = ServeCore::follow_from_checkpoint(ck, config)
        .map_err(|e| ClientError::Protocol(format!("follower bootstrap: {e}")))?;
    let puller = ReplicaPuller::new(Arc::clone(&core), client, replication, seq);
    Ok((core, puller))
}

/// A background replication loop started by [`start_follower`].
/// Dropping the handle stops the loop and joins the thread.
pub struct FollowerHandle {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<ReplicaPuller>>,
}

impl FollowerHandle {
    /// Signals the loop to stop and returns the puller once it has
    /// (so a failover test can keep stepping it by hand).
    pub fn stop(mut self) -> Option<ReplicaPuller> {
        self.stop.store(true, Ordering::Relaxed);
        self.thread.take().and_then(|t| t.join().ok())
    }
}

impl Drop for FollowerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Runs `puller` on a background thread until it reports
/// [`StepOutcome::Stopped`] (promotion) or the handle is stopped.
/// Transport errors don't kill the loop — the puller's client
/// reconnects under its retry policy, so the loop just backs off for a
/// poll interval and tries again (the primary may be restarting).
pub fn start_follower(mut puller: ReplicaPuller) -> FollowerHandle {
    let stop = Arc::new(AtomicBool::new(false));
    let loop_stop = Arc::clone(&stop);
    let interval = puller.config.poll_interval;
    let thread = std::thread::Builder::new()
        .name("gograph-replica".into())
        .spawn(move || {
            while !loop_stop.load(Ordering::Relaxed) {
                match puller.step() {
                    Ok(StepOutcome::Stopped) => break,
                    Ok(StepOutcome::Idle) | Err(_) => std::thread::sleep(interval),
                    Ok(_) => {}
                }
            }
            puller
        })
        .expect("spawn replica thread");
    FollowerHandle {
        stop,
        thread: Some(thread),
    }
}
