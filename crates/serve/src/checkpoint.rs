//! Epoch checkpoints: the compaction half of crash recovery.
//!
//! A checkpoint is a serialized [`ResumableState`] per warm pipeline
//! plus the WAL sequence number and epoch it captures — everything
//! needed to rebuild the mutator's exact decision state via
//! [`StreamingPipelineBuilder::resume`](gograph_engine::StreamingPipelineBuilder::resume)
//! and then replay only the WAL records with `seq >` the checkpoint's.
//! Because the streaming pipeline is deterministic and the resumable
//! state carries the insertion order's full float-key state, recovery
//! lands on **bit-identical** epochs to an uninterrupted run.
//!
//! Layout (all integers little-endian, floats as raw bit patterns so
//! round-trips are exact):
//!
//! ```text
//! GGCKPT1\0 · payload · crc u32
//! payload = seq u64 · epoch u64 · updates_applied u64 · mutator_rounds u64
//!         · n_pipelines u32 · n × pipeline
//! pipeline = alg u8 · source u32 · state
//! state   = graph (len u64 · binary CSR) · order_vals (n u64 bits)
//!         · min/max bits u64 · part_of (n u32) · part_members
//!         · baseline_intra ((positive, total) u64 pairs)
//!         · baseline_fraction/density bits u64 · states (n u64 bits)
//!         · 5 evolution counters u64
//! ```
//!
//! The trailing CRC-32 covers the whole payload; a mismatch (torn
//! write, bit rot) is an error — the file is written atomically
//! (temp + fsync + rename) precisely so this never happens in normal
//! crash windows.
//!
//! ## Delta checkpoints
//!
//! A full checkpoint serializes every pipeline's whole state; at high
//! update rates the fsync burst dominates. A **delta checkpoint**
//! (`epoch.ckpt.d1`, `.d2`, …, magic `GGCKD1`) records only what
//! changed since the previous checkpoint: the applied update batches
//! (the graph is reconstructed by replaying them through the same
//! [`apply_updates`](gograph_graph::CsrGraph::apply_updates) call the
//! streaming pipeline uses, after the same self-loop filter), the
//! order/state entries whose bit patterns differ, and the partition /
//! baseline structures only when they changed. Recovery chains
//! base + deltas ([`read_checkpoint_chain`]) and is bit-identical to
//! full-checkpoint recovery; a periodic full rebase rewrites the base
//! and deletes the deltas. A crash mid-rebase leaves stale delta files
//! whose `base_seq` no longer matches the chain tip — the chain
//! validation cuts there, so they are ignored, never misapplied.

use crate::core::WarmSpec;
use crate::spec::AlgSpec;
use crate::wire::{get_updates, put_updates};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use gograph_core::PartitionContribution;
use gograph_engine::ResumableState;
use gograph_graph::io::{crc32, from_binary, to_binary};
use gograph_graph::{EdgeUpdate, VertexId};
use std::fs::File;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// File magic: identifies a GoGraph checkpoint, version 1.
pub const CHECKPOINT_MAGIC: &[u8; 8] = b"GGCKPT1\0";

/// File magic: identifies a GoGraph delta checkpoint, version 1.
pub const DELTA_MAGIC: &[u8; 8] = b"GGCKD1\0\0";

/// A recovery point: per-pipeline resumable state plus the WAL
/// position it captures.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Highest WAL sequence number whose batch is folded in. Replay
    /// starts at `seq + 1`.
    pub seq: u64,
    /// Epoch counter at the capture point.
    pub epoch: u64,
    /// `ServeStats::updates_applied` at the capture point.
    pub updates_applied: u64,
    /// `ServeStats::mutator_rounds` at the capture point.
    pub mutator_rounds: u64,
    /// One entry per warm pipeline, in `ServeConfig::warm` order.
    pub pipelines: Vec<PipelineCheckpoint>,
}

/// One warm pipeline's identity and exported state.
#[derive(Debug, Clone)]
pub struct PipelineCheckpoint {
    /// Which warm pipeline this is.
    pub warm: WarmSpec,
    /// Its full resumable state.
    pub state: ResumableState,
}

fn put_f64s(buf: &mut BytesMut, xs: &[f64]) {
    buf.put_u64_le(xs.len() as u64);
    for &x in xs {
        buf.put_u64_le(x.to_bits());
    }
}

fn get_f64s(buf: &mut Bytes) -> io::Result<Vec<f64>> {
    let n = get_len(buf, 8)?;
    Ok((0..n).map(|_| f64::from_bits(buf.get_u64_le())).collect())
}

fn corrupt(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Reads a u64 length prefix and bounds-checks `n * elem_bytes`
/// against the remaining payload before any allocation.
fn get_len(buf: &mut Bytes, elem_bytes: usize) -> io::Result<usize> {
    if buf.remaining() < 8 {
        return Err(corrupt("truncated length prefix"));
    }
    let n = buf.get_u64_le();
    let need = (n as usize)
        .checked_mul(elem_bytes)
        .ok_or_else(|| corrupt("length overflow"))?;
    if buf.remaining() < need {
        return Err(corrupt("length prefix exceeds payload"));
    }
    Ok(n as usize)
}

fn put_state(buf: &mut BytesMut, s: &ResumableState) {
    let graph = to_binary(&s.graph);
    buf.put_u64_le(graph.len() as u64);
    buf.put_slice(&graph);
    put_f64s(buf, &s.order_vals);
    buf.put_u64_le(s.order_min_val.to_bits());
    buf.put_u64_le(s.order_max_val.to_bits());
    buf.put_u64_le(s.part_of.len() as u64);
    for &p in &s.part_of {
        buf.put_u32_le(p);
    }
    buf.put_u64_le(s.part_members.len() as u64);
    for members in &s.part_members {
        buf.put_u64_le(members.len() as u64);
        for &v in members {
            buf.put_u32_le(v);
        }
    }
    buf.put_u64_le(s.baseline_intra.len() as u64);
    for c in &s.baseline_intra {
        buf.put_u64_le(c.positive as u64);
        buf.put_u64_le(c.total as u64);
    }
    buf.put_u64_le(s.baseline_fraction.to_bits());
    buf.put_u64_le(s.baseline_density.to_bits());
    put_f64s(buf, &s.states);
    for c in [
        s.total_rounds,
        s.batches_applied,
        s.full_reorders,
        s.partition_reorders,
        s.partition_repair_attempts,
    ] {
        buf.put_u64_le(c as u64);
    }
}

fn get_state(buf: &mut Bytes) -> io::Result<ResumableState> {
    let graph_len = get_len(buf, 1)?;
    let graph = from_binary(buf.split_to(graph_len))?;
    let order_vals = get_f64s(buf)?;
    if buf.remaining() < 16 {
        return Err(corrupt("truncated order bounds"));
    }
    let order_min_val = f64::from_bits(buf.get_u64_le());
    let order_max_val = f64::from_bits(buf.get_u64_le());
    let n_part_of = get_len(buf, 4)?;
    let part_of: Vec<u32> = (0..n_part_of).map(|_| buf.get_u32_le()).collect();
    let n_parts = get_len(buf, 8)?;
    let mut part_members: Vec<Vec<VertexId>> = Vec::with_capacity(n_parts.min(4096));
    for _ in 0..n_parts {
        let m = get_len(buf, 4)?;
        part_members.push((0..m).map(|_| buf.get_u32_le()).collect());
    }
    let n_intra = get_len(buf, 16)?;
    let baseline_intra: Vec<PartitionContribution> = (0..n_intra)
        .map(|_| {
            let positive = buf.get_u64_le() as usize;
            let total = buf.get_u64_le() as usize;
            PartitionContribution { positive, total }
        })
        .collect();
    if buf.remaining() < 16 {
        return Err(corrupt("truncated baselines"));
    }
    let baseline_fraction = f64::from_bits(buf.get_u64_le());
    let baseline_density = f64::from_bits(buf.get_u64_le());
    let states = get_f64s(buf)?;
    if buf.remaining() < 5 * 8 {
        return Err(corrupt("truncated evolution counters"));
    }
    let mut counters = [0u64; 5];
    for c in counters.iter_mut() {
        *c = buf.get_u64_le();
    }
    Ok(ResumableState {
        graph,
        order_vals,
        order_min_val,
        order_max_val,
        part_of,
        part_members,
        baseline_intra,
        baseline_fraction,
        baseline_density,
        states,
        total_rounds: counters[0] as usize,
        batches_applied: counters[1] as usize,
        full_reorders: counters[2] as usize,
        partition_reorders: counters[3] as usize,
        partition_repair_attempts: counters[4] as usize,
    })
}

/// Serializes a checkpoint (magic + payload + CRC trailer).
pub fn encode_checkpoint(ck: &Checkpoint) -> Bytes {
    let mut payload = BytesMut::with_capacity(1 << 16);
    payload.put_u64_le(ck.seq);
    payload.put_u64_le(ck.epoch);
    payload.put_u64_le(ck.updates_applied);
    payload.put_u64_le(ck.mutator_rounds);
    payload.put_u32_le(ck.pipelines.len() as u32);
    for p in &ck.pipelines {
        payload.put_u8(p.warm.alg.code());
        payload.put_u32_le(p.warm.source);
        put_state(&mut payload, &p.state);
    }
    let crc = crc32(&payload);
    let mut out = BytesMut::with_capacity(8 + payload.len() + 4);
    out.put_slice(CHECKPOINT_MAGIC);
    out.put_slice(&payload);
    out.put_u32_le(crc);
    out.freeze()
}

/// Deserializes and CRC-verifies a checkpoint.
pub fn decode_checkpoint(data: Bytes) -> io::Result<Checkpoint> {
    if data.len() < 8 + 4 || &data[..8] != CHECKPOINT_MAGIC {
        return Err(corrupt("not a GoGraph checkpoint (bad magic)"));
    }
    let payload = data.slice(8..data.len() - 4);
    let stored_crc = u32::from_le_bytes(data[data.len() - 4..].try_into().unwrap());
    if crc32(&payload) != stored_crc {
        return Err(corrupt("checkpoint CRC mismatch"));
    }
    let mut buf = payload;
    if buf.remaining() < 4 * 8 + 4 {
        return Err(corrupt("truncated checkpoint header"));
    }
    let seq = buf.get_u64_le();
    let epoch = buf.get_u64_le();
    let updates_applied = buf.get_u64_le();
    let mutator_rounds = buf.get_u64_le();
    let n = buf.get_u32_le() as usize;
    let mut pipelines = Vec::with_capacity(n.min(256));
    for _ in 0..n {
        if buf.remaining() < 5 {
            return Err(corrupt("truncated pipeline header"));
        }
        let code = buf.get_u8();
        let alg = AlgSpec::from_code(code)
            .ok_or_else(|| corrupt(format!("unknown algorithm code {code}")))?;
        let source = buf.get_u32_le();
        let state = get_state(&mut buf)?;
        pipelines.push(PipelineCheckpoint {
            warm: WarmSpec::new(alg, source),
            state,
        });
    }
    if buf.has_remaining() {
        return Err(corrupt("trailing bytes after checkpoint"));
    }
    Ok(Checkpoint {
        seq,
        epoch,
        updates_applied,
        mutator_rounds,
        pipelines,
    })
}

/// Atomically writes `bytes` to `path` via temp file + fsync + rename,
/// so a crash at any instant leaves either the previous complete file
/// or the new complete one — never a torn mix. Returns bytes written.
fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<u64> {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".tmp");
    let tmp = path.with_file_name(name);
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_data()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        if let Ok(dir) = File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(bytes.len() as u64)
}

/// Atomically writes a checkpoint to `path` (temp + fsync + rename).
/// Returns the bytes written.
pub fn write_checkpoint(path: &Path, ck: &Checkpoint) -> io::Result<u64> {
    write_atomic(path, &encode_checkpoint(ck))
}

/// Reads the checkpoint at `path`; `Ok(None)` when none exists yet.
pub fn read_checkpoint(path: &Path) -> io::Result<Option<Checkpoint>> {
    match std::fs::read(path) {
        Ok(raw) => decode_checkpoint(Bytes::from(raw)).map(Some),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(e),
    }
}

/// A sparse patch of an `f64` vector: the new length plus every entry
/// whose bit pattern differs from the base (indices past the base
/// length are always included, so growth is covered).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SparsePatch {
    /// Vector length after the patch.
    pub new_len: u64,
    /// `(index, f64 bit pattern)` entries to overwrite.
    pub entries: Vec<(u32, u64)>,
}

fn diff_patch(base: &[f64], cur: &[f64]) -> SparsePatch {
    SparsePatch {
        new_len: cur.len() as u64,
        entries: cur
            .iter()
            .enumerate()
            .filter(|(i, x)| base.get(*i).is_none_or(|b| b.to_bits() != x.to_bits()))
            .map(|(i, x)| (i as u32, x.to_bits()))
            .collect(),
    }
}

fn apply_patch(vec: &mut Vec<f64>, patch: &SparsePatch) -> io::Result<()> {
    vec.resize(patch.new_len as usize, 0.0);
    for &(i, bits) in &patch.entries {
        let slot = vec
            .get_mut(i as usize)
            .ok_or_else(|| corrupt("patch index out of bounds"))?;
        *slot = f64::from_bits(bits);
    }
    Ok(())
}

/// One pipeline's changes since the base checkpoint. The graph itself
/// is not stored — it is reconstructed from the delta's applied
/// batches.
#[derive(Debug, Clone)]
pub struct PipelineDelta {
    /// Which warm pipeline this is (must match the base's entry).
    pub warm: WarmSpec,
    /// Changed insertion-order key entries.
    pub order_vals: SparsePatch,
    /// New order key range minimum (bit pattern).
    pub order_min_bits: u64,
    /// New order key range maximum (bit pattern).
    pub order_max_bits: u64,
    /// Changed warm-state entries.
    pub states: SparsePatch,
    /// Full partition structures (`part_of`, `part_members`), present
    /// only when they changed.
    pub part: Option<(Vec<u32>, Vec<Vec<VertexId>>)>,
    /// Full baseline structures (`baseline_intra`, fraction bits,
    /// density bits), present only when they changed.
    pub baseline: Option<(Vec<PartitionContribution>, u64, u64)>,
    /// The five evolution counters, always rewritten (they are tiny).
    pub counters: [u64; 5],
}

/// State changed since the previous checkpoint. Applying a delta to
/// its base (see [`apply_delta`]) reproduces the full checkpoint the
/// primary would have written, bit for bit.
#[derive(Debug, Clone)]
pub struct DeltaCheckpoint {
    /// `seq` of the checkpoint this delta chains onto. A delta whose
    /// `base_seq` does not match the chain tip is stale (left behind
    /// by a crashed rebase) and must be ignored.
    pub base_seq: u64,
    /// Highest WAL sequence number folded in after applying.
    pub seq: u64,
    /// Epoch counter at the capture point.
    pub epoch: u64,
    /// `ServeStats::updates_applied` at the capture point.
    pub updates_applied: u64,
    /// `ServeStats::mutator_rounds` at the capture point.
    pub mutator_rounds: u64,
    /// The `(seq, updates)` batches applied since the base, in order —
    /// replayed through the pipeline's own graph-patching call to
    /// reconstruct the graph.
    pub batches: Vec<(u64, Vec<EdgeUpdate>)>,
    /// One entry per warm pipeline, in base order.
    pub pipelines: Vec<PipelineDelta>,
}

/// Computes the delta from `base` to `cur` given the batches applied
/// between them. Errors if the pipeline sets do not line up.
pub fn diff_checkpoint(
    base: &Checkpoint,
    cur: &Checkpoint,
    batches: Vec<(u64, Vec<EdgeUpdate>)>,
) -> io::Result<DeltaCheckpoint> {
    if base.pipelines.len() != cur.pipelines.len() {
        return Err(corrupt("delta pipeline count mismatch"));
    }
    let mut pipelines = Vec::with_capacity(cur.pipelines.len());
    for (b, c) in base.pipelines.iter().zip(&cur.pipelines) {
        if b.warm != c.warm {
            return Err(corrupt("delta pipeline identity mismatch"));
        }
        let (bs, cs) = (&b.state, &c.state);
        let part_changed = bs.part_of != cs.part_of || bs.part_members != cs.part_members;
        let baseline_changed = bs.baseline_intra != cs.baseline_intra
            || bs.baseline_fraction.to_bits() != cs.baseline_fraction.to_bits()
            || bs.baseline_density.to_bits() != cs.baseline_density.to_bits();
        pipelines.push(PipelineDelta {
            warm: c.warm,
            order_vals: diff_patch(&bs.order_vals, &cs.order_vals),
            order_min_bits: cs.order_min_val.to_bits(),
            order_max_bits: cs.order_max_val.to_bits(),
            states: diff_patch(&bs.states, &cs.states),
            part: part_changed.then(|| (cs.part_of.clone(), cs.part_members.clone())),
            baseline: baseline_changed.then(|| {
                (
                    cs.baseline_intra.clone(),
                    cs.baseline_fraction.to_bits(),
                    cs.baseline_density.to_bits(),
                )
            }),
            counters: [
                cs.total_rounds as u64,
                cs.batches_applied as u64,
                cs.full_reorders as u64,
                cs.partition_reorders as u64,
                cs.partition_repair_attempts as u64,
            ],
        });
    }
    Ok(DeltaCheckpoint {
        base_seq: base.seq,
        seq: cur.seq,
        epoch: cur.epoch,
        updates_applied: cur.updates_applied,
        mutator_rounds: cur.mutator_rounds,
        batches,
        pipelines,
    })
}

/// Applies a delta to its base in place, reconstructing the full
/// checkpoint at `delta.seq`. The graph is rebuilt by replaying the
/// delta's batches through
/// [`apply_updates`](gograph_graph::CsrGraph::apply_updates) after the
/// same self-loop filter `StreamingPipeline::apply_batch` uses, so the
/// result is bit-identical to the state the primary exported.
pub fn apply_delta(base: &mut Checkpoint, delta: &DeltaCheckpoint) -> io::Result<()> {
    if delta.base_seq != base.seq {
        return Err(corrupt(format!(
            "delta base_seq {} does not chain onto checkpoint seq {}",
            delta.base_seq, base.seq
        )));
    }
    if delta.pipelines.len() != base.pipelines.len() {
        return Err(corrupt("delta pipeline count mismatch"));
    }
    for (pc, pd) in base.pipelines.iter_mut().zip(&delta.pipelines) {
        if pc.warm != pd.warm {
            return Err(corrupt("delta pipeline identity mismatch"));
        }
        let s = &mut pc.state;
        for (_seq, updates) in &delta.batches {
            // Mirror StreamingPipeline::apply_batch: self-loops are
            // filtered before the graph is patched.
            let filtered: Vec<EdgeUpdate> = updates
                .iter()
                .copied()
                .filter(|u| u.src() != u.dst())
                .collect();
            s.graph = s.graph.apply_updates(&filtered);
        }
        apply_patch(&mut s.order_vals, &pd.order_vals)?;
        s.order_min_val = f64::from_bits(pd.order_min_bits);
        s.order_max_val = f64::from_bits(pd.order_max_bits);
        apply_patch(&mut s.states, &pd.states)?;
        if let Some((part_of, part_members)) = &pd.part {
            s.part_of = part_of.clone();
            s.part_members = part_members.clone();
        }
        if let Some((intra, fraction_bits, density_bits)) = &pd.baseline {
            s.baseline_intra = intra.clone();
            s.baseline_fraction = f64::from_bits(*fraction_bits);
            s.baseline_density = f64::from_bits(*density_bits);
        }
        s.total_rounds = pd.counters[0] as usize;
        s.batches_applied = pd.counters[1] as usize;
        s.full_reorders = pd.counters[2] as usize;
        s.partition_reorders = pd.counters[3] as usize;
        s.partition_repair_attempts = pd.counters[4] as usize;
    }
    base.seq = delta.seq;
    base.epoch = delta.epoch;
    base.updates_applied = delta.updates_applied;
    base.mutator_rounds = delta.mutator_rounds;
    Ok(())
}

fn put_patch(buf: &mut BytesMut, patch: &SparsePatch) {
    buf.put_u64_le(patch.new_len);
    buf.put_u64_le(patch.entries.len() as u64);
    for &(i, bits) in &patch.entries {
        buf.put_u32_le(i);
        buf.put_u64_le(bits);
    }
}

fn get_patch(buf: &mut Bytes) -> io::Result<SparsePatch> {
    if buf.remaining() < 8 {
        return Err(corrupt("truncated patch length"));
    }
    let new_len = buf.get_u64_le();
    let n = get_len(buf, 12)?;
    let entries = (0..n)
        .map(|_| {
            let i = buf.get_u32_le();
            let bits = buf.get_u64_le();
            (i, bits)
        })
        .collect();
    Ok(SparsePatch { new_len, entries })
}

/// Serializes a delta checkpoint (magic + payload + CRC trailer).
pub fn encode_delta(delta: &DeltaCheckpoint) -> Bytes {
    let mut payload = BytesMut::with_capacity(1 << 12);
    payload.put_u64_le(delta.base_seq);
    payload.put_u64_le(delta.seq);
    payload.put_u64_le(delta.epoch);
    payload.put_u64_le(delta.updates_applied);
    payload.put_u64_le(delta.mutator_rounds);
    payload.put_u32_le(delta.batches.len() as u32);
    for (seq, updates) in &delta.batches {
        payload.put_u64_le(*seq);
        put_updates(&mut payload, updates);
    }
    payload.put_u32_le(delta.pipelines.len() as u32);
    for p in &delta.pipelines {
        payload.put_u8(p.warm.alg.code());
        payload.put_u32_le(p.warm.source);
        put_patch(&mut payload, &p.order_vals);
        payload.put_u64_le(p.order_min_bits);
        payload.put_u64_le(p.order_max_bits);
        put_patch(&mut payload, &p.states);
        let flags = u8::from(p.part.is_some()) | (u8::from(p.baseline.is_some()) << 1);
        payload.put_u8(flags);
        if let Some((part_of, part_members)) = &p.part {
            payload.put_u64_le(part_of.len() as u64);
            for &x in part_of {
                payload.put_u32_le(x);
            }
            payload.put_u64_le(part_members.len() as u64);
            for members in part_members {
                payload.put_u64_le(members.len() as u64);
                for &v in members {
                    payload.put_u32_le(v);
                }
            }
        }
        if let Some((intra, fraction_bits, density_bits)) = &p.baseline {
            payload.put_u64_le(intra.len() as u64);
            for c in intra {
                payload.put_u64_le(c.positive as u64);
                payload.put_u64_le(c.total as u64);
            }
            payload.put_u64_le(*fraction_bits);
            payload.put_u64_le(*density_bits);
        }
        for c in p.counters {
            payload.put_u64_le(c);
        }
    }
    let crc = crc32(&payload);
    let mut out = BytesMut::with_capacity(8 + payload.len() + 4);
    out.put_slice(DELTA_MAGIC);
    out.put_slice(&payload);
    out.put_u32_le(crc);
    out.freeze()
}

/// Deserializes and CRC-verifies a delta checkpoint.
pub fn decode_delta(data: Bytes) -> io::Result<DeltaCheckpoint> {
    if data.len() < 8 + 4 || &data[..8] != DELTA_MAGIC {
        return Err(corrupt("not a GoGraph delta checkpoint (bad magic)"));
    }
    let payload = data.slice(8..data.len() - 4);
    let stored_crc = u32::from_le_bytes(data[data.len() - 4..].try_into().unwrap());
    if crc32(&payload) != stored_crc {
        return Err(corrupt("delta checkpoint CRC mismatch"));
    }
    let mut buf = payload;
    if buf.remaining() < 5 * 8 + 4 {
        return Err(corrupt("truncated delta header"));
    }
    let base_seq = buf.get_u64_le();
    let seq = buf.get_u64_le();
    let epoch = buf.get_u64_le();
    let updates_applied = buf.get_u64_le();
    let mutator_rounds = buf.get_u64_le();
    let n_batches = buf.get_u32_le() as usize;
    let mut batches = Vec::with_capacity(n_batches.min(4096));
    for _ in 0..n_batches {
        if buf.remaining() < 8 {
            return Err(corrupt("truncated delta batch seq"));
        }
        let bseq = buf.get_u64_le();
        let updates = get_updates(&mut buf).map_err(|e| corrupt(e.0))?;
        batches.push((bseq, updates));
    }
    if buf.remaining() < 4 {
        return Err(corrupt("truncated delta pipeline count"));
    }
    let n = buf.get_u32_le() as usize;
    let mut pipelines = Vec::with_capacity(n.min(256));
    for _ in 0..n {
        if buf.remaining() < 5 {
            return Err(corrupt("truncated delta pipeline header"));
        }
        let code = buf.get_u8();
        let alg = AlgSpec::from_code(code)
            .ok_or_else(|| corrupt(format!("unknown algorithm code {code}")))?;
        let source = buf.get_u32_le();
        let order_vals = get_patch(&mut buf)?;
        if buf.remaining() < 16 {
            return Err(corrupt("truncated delta order bounds"));
        }
        let order_min_bits = buf.get_u64_le();
        let order_max_bits = buf.get_u64_le();
        let states = get_patch(&mut buf)?;
        if buf.remaining() < 1 {
            return Err(corrupt("truncated delta flags"));
        }
        let flags = buf.get_u8();
        if flags & !0b11 != 0 {
            return Err(corrupt(format!("unknown delta flags {flags:#04x}")));
        }
        let part = if flags & 1 != 0 {
            let n_part_of = get_len(&mut buf, 4)?;
            let part_of: Vec<u32> = (0..n_part_of).map(|_| buf.get_u32_le()).collect();
            let n_parts = get_len(&mut buf, 8)?;
            let mut part_members: Vec<Vec<VertexId>> = Vec::with_capacity(n_parts.min(4096));
            for _ in 0..n_parts {
                let m = get_len(&mut buf, 4)?;
                part_members.push((0..m).map(|_| buf.get_u32_le()).collect());
            }
            Some((part_of, part_members))
        } else {
            None
        };
        let baseline = if flags & 2 != 0 {
            let n_intra = get_len(&mut buf, 16)?;
            let intra: Vec<PartitionContribution> = (0..n_intra)
                .map(|_| {
                    let positive = buf.get_u64_le() as usize;
                    let total = buf.get_u64_le() as usize;
                    PartitionContribution { positive, total }
                })
                .collect();
            if buf.remaining() < 16 {
                return Err(corrupt("truncated delta baselines"));
            }
            Some((intra, buf.get_u64_le(), buf.get_u64_le()))
        } else {
            None
        };
        if buf.remaining() < 5 * 8 {
            return Err(corrupt("truncated delta counters"));
        }
        let mut counters = [0u64; 5];
        for c in counters.iter_mut() {
            *c = buf.get_u64_le();
        }
        pipelines.push(PipelineDelta {
            warm: WarmSpec::new(alg, source),
            order_vals,
            order_min_bits,
            order_max_bits,
            states,
            part,
            baseline,
            counters,
        });
    }
    if buf.has_remaining() {
        return Err(corrupt("trailing bytes after delta checkpoint"));
    }
    Ok(DeltaCheckpoint {
        base_seq,
        seq,
        epoch,
        updates_applied,
        mutator_rounds,
        batches,
        pipelines,
    })
}

/// Atomically writes a delta checkpoint. Returns the bytes written.
pub fn write_delta(path: &Path, delta: &DeltaCheckpoint) -> io::Result<u64> {
    write_atomic(path, &encode_delta(delta))
}

/// The path of delta file `k` (1-based) chained onto the base
/// checkpoint at `base`: `epoch.ckpt` → `epoch.ckpt.d1`, `.d2`, …
pub fn delta_path(base: &Path, k: u32) -> PathBuf {
    let mut name = base
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(format!(".d{k}"));
    base.with_file_name(name)
}

/// Reads the base checkpoint and chains every valid delta onto it.
/// Returns the effective checkpoint plus the number of deltas applied;
/// `Ok(None)` when no base exists. The chain stops at the first
/// missing delta file or at the first delta whose `base_seq` does not
/// match the tip (a stale file from a crashed rebase); a delta that
/// fails CRC or decode is a hard error, since delta writes are atomic.
pub fn read_checkpoint_chain(base: &Path) -> io::Result<Option<(Checkpoint, u32)>> {
    let Some(mut ck) = read_checkpoint(base)? else {
        return Ok(None);
    };
    let mut applied = 0u32;
    loop {
        let path = delta_path(base, applied + 1);
        let raw = match std::fs::read(&path) {
            Ok(raw) => raw,
            Err(e) if e.kind() == io::ErrorKind::NotFound => break,
            Err(e) => return Err(e),
        };
        let delta = decode_delta(Bytes::from(raw))?;
        if delta.base_seq != ck.seq {
            break; // stale delta left behind by a crashed rebase
        }
        apply_delta(&mut ck, &delta)?;
        applied += 1;
    }
    Ok(Some((ck, applied)))
}

/// Deletes every delta file chained onto `base` (after a full rebase).
/// Stops at the first missing index; errors other than absence are
/// returned.
pub fn remove_deltas(base: &Path) -> io::Result<()> {
    for k in 1.. {
        match std::fs::remove_file(delta_path(base, k)) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::NotFound => break,
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gograph_engine::{Sssp, StreamingPipeline};
    use gograph_graph::generators::{planted_partition, shuffle_labels, PlantedPartitionConfig};
    use gograph_graph::EdgeUpdate;

    fn pipeline_state() -> ResumableState {
        let g = shuffle_labels(
            &planted_partition(PlantedPartitionConfig {
                num_vertices: 60,
                num_edges: 320,
                communities: 3,
                p_intra: 0.8,
                gamma: 2.4,
                seed: 41,
            }),
            3,
        );
        let mut sp = StreamingPipeline::over(&g)
            .algorithm(Sssp::new(0))
            .build()
            .unwrap();
        sp.apply_batch(&[EdgeUpdate::insert(0, 59), EdgeUpdate::remove(1, 2)])
            .unwrap();
        sp.export_state()
    }

    #[test]
    fn checkpoint_roundtrip_is_exact() {
        let state = pipeline_state();
        let ck = Checkpoint {
            seq: 17,
            epoch: 9,
            updates_applied: 120,
            mutator_rounds: 33,
            pipelines: vec![PipelineCheckpoint {
                warm: WarmSpec::new(AlgSpec::Sssp, 0),
                state: state.clone(),
            }],
        };
        let decoded = decode_checkpoint(encode_checkpoint(&ck)).unwrap();
        assert_eq!(decoded.seq, 17);
        assert_eq!(decoded.epoch, 9);
        assert_eq!(decoded.updates_applied, 120);
        assert_eq!(decoded.mutator_rounds, 33);
        let d = &decoded.pipelines[0];
        assert_eq!(d.warm, WarmSpec::new(AlgSpec::Sssp, 0));
        assert_eq!(d.state.graph, state.graph);
        let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&d.state.order_vals), bits(&state.order_vals));
        assert_eq!(
            d.state.order_min_val.to_bits(),
            state.order_min_val.to_bits()
        );
        assert_eq!(
            d.state.order_max_val.to_bits(),
            state.order_max_val.to_bits()
        );
        assert_eq!(d.state.part_of, state.part_of);
        assert_eq!(d.state.part_members, state.part_members);
        assert_eq!(d.state.baseline_intra, state.baseline_intra);
        assert_eq!(bits(&d.state.states), bits(&state.states));
        assert_eq!(d.state.total_rounds, state.total_rounds);
        assert_eq!(d.state.batches_applied, state.batches_applied);
    }

    #[test]
    fn corruption_is_detected_at_every_flipped_byte_region() {
        let ck = Checkpoint {
            seq: 1,
            epoch: 1,
            updates_applied: 2,
            mutator_rounds: 1,
            pipelines: vec![PipelineCheckpoint {
                warm: WarmSpec::new(AlgSpec::Cc, 0),
                state: pipeline_state(),
            }],
        };
        let good = encode_checkpoint(&ck);
        // Flip one byte in several regions: header, middle, trailer.
        for idx in [9, good.len() / 2, good.len() - 2] {
            let mut bad = good.to_vec();
            bad[idx] ^= 0x5A;
            assert!(
                decode_checkpoint(Bytes::from(bad)).is_err(),
                "flip at {idx} must be caught"
            );
        }
        // Truncations are caught too.
        for cut in [7, 12, good.len() - 5] {
            assert!(decode_checkpoint(good.slice(..cut)).is_err());
        }
    }

    #[test]
    fn file_roundtrip_and_missing_file() {
        let dir = std::env::temp_dir().join(format!("gograph-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("epoch.ckpt");
        assert!(read_checkpoint(&path).unwrap().is_none());
        let ck = Checkpoint {
            seq: 3,
            epoch: 2,
            updates_applied: 10,
            mutator_rounds: 3,
            pipelines: vec![PipelineCheckpoint {
                warm: WarmSpec::new(AlgSpec::Sssp, 5),
                state: pipeline_state(),
            }],
        };
        write_checkpoint(&path, &ck).unwrap();
        let back = read_checkpoint(&path).unwrap().unwrap();
        assert_eq!(back.seq, 3);
        assert_eq!(back.pipelines[0].warm.source, 5);
        // Overwrite is atomic and replaces the old contents.
        let ck2 = Checkpoint { seq: 8, ..ck };
        write_checkpoint(&path, &ck2).unwrap();
        assert_eq!(read_checkpoint(&path).unwrap().unwrap().seq, 8);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn assert_checkpoints_bit_identical(a: &Checkpoint, b: &Checkpoint) {
        assert_eq!(a.seq, b.seq);
        assert_eq!(a.epoch, b.epoch);
        assert_eq!(a.updates_applied, b.updates_applied);
        assert_eq!(a.mutator_rounds, b.mutator_rounds);
        assert_eq!(a.pipelines.len(), b.pipelines.len());
        let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        for (pa, pb) in a.pipelines.iter().zip(&b.pipelines) {
            assert_eq!(pa.warm, pb.warm);
            assert_eq!(pa.state.graph, pb.state.graph, "graphs diverge");
            assert_eq!(bits(&pa.state.order_vals), bits(&pb.state.order_vals));
            assert_eq!(
                pa.state.order_min_val.to_bits(),
                pb.state.order_min_val.to_bits()
            );
            assert_eq!(
                pa.state.order_max_val.to_bits(),
                pb.state.order_max_val.to_bits()
            );
            assert_eq!(pa.state.part_of, pb.state.part_of);
            assert_eq!(pa.state.part_members, pb.state.part_members);
            assert_eq!(pa.state.baseline_intra, pb.state.baseline_intra);
            assert_eq!(bits(&pa.state.states), bits(&pb.state.states));
            assert_eq!(pa.state.total_rounds, pb.state.total_rounds);
            assert_eq!(pa.state.batches_applied, pb.state.batches_applied);
        }
    }

    /// Drives a pipeline through batches, checkpointing fully at the
    /// start, and returns (base checkpoint, applied batches, final
    /// full checkpoint).
    fn delta_fixture() -> (Checkpoint, Vec<(u64, Vec<EdgeUpdate>)>, Checkpoint) {
        let g = shuffle_labels(
            &planted_partition(PlantedPartitionConfig {
                num_vertices: 60,
                num_edges: 320,
                communities: 3,
                p_intra: 0.8,
                gamma: 2.4,
                seed: 41,
            }),
            3,
        );
        let mut sp = StreamingPipeline::over(&g)
            .algorithm(Sssp::new(0))
            .build()
            .unwrap();
        let ck_at = |sp: &StreamingPipeline, seq: u64, epoch: u64| Checkpoint {
            seq,
            epoch,
            updates_applied: seq * 3,
            mutator_rounds: epoch,
            pipelines: vec![PipelineCheckpoint {
                warm: WarmSpec::new(AlgSpec::Sssp, 0),
                state: sp.export_state(),
            }],
        };
        sp.apply_batch(&[EdgeUpdate::insert(0, 59)]).unwrap();
        let base = ck_at(&sp, 1, 1);
        let mut batches = Vec::new();
        for k in 2u64..=5 {
            // Includes a self-loop: the reconstruction path must apply
            // the same filter apply_batch does.
            let batch = vec![
                EdgeUpdate::insert_weighted((k % 60) as u32, ((k * 7 + 3) % 60) as u32, 1.5),
                EdgeUpdate::insert((k % 60) as u32, (k % 60) as u32),
                EdgeUpdate::remove((k % 60) as u32, ((k + 1) % 60) as u32),
            ];
            sp.apply_batch(&batch).unwrap();
            batches.push((k, batch));
        }
        let cur = ck_at(&sp, 5, 5);
        (base, batches, cur)
    }

    #[test]
    fn delta_roundtrip_and_apply_are_bit_identical_to_full() {
        let (base, batches, cur) = delta_fixture();
        let delta = diff_checkpoint(&base, &cur, batches).unwrap();
        // The patch is actually sparse: untouched entries are omitted.
        assert!(
            (delta.pipelines[0].states.entries.len() as u64) < delta.pipelines[0].states.new_len,
            "delta should not rewrite every state entry"
        );
        let decoded = decode_delta(encode_delta(&delta)).unwrap();
        assert_eq!(decoded.base_seq, 1);
        assert_eq!(decoded.seq, 5);
        assert_eq!(decoded.batches.len(), 4);
        let mut rebuilt = base.clone();
        apply_delta(&mut rebuilt, &decoded).unwrap();
        assert_checkpoints_bit_identical(&rebuilt, &cur);
    }

    #[test]
    fn delta_corruption_and_chain_mismatch_are_refused() {
        let (base, batches, cur) = delta_fixture();
        let delta = diff_checkpoint(&base, &cur, batches).unwrap();
        let good = encode_delta(&delta);
        for idx in [9, good.len() / 2, good.len() - 2] {
            let mut bad = good.to_vec();
            bad[idx] ^= 0x5A;
            assert!(decode_delta(Bytes::from(bad)).is_err());
        }
        // A delta must refuse to chain onto the wrong base.
        let mut wrong = base.clone();
        wrong.seq = 99;
        assert!(apply_delta(&mut wrong, &delta).is_err());
    }

    #[test]
    fn chain_reading_applies_deltas_and_cuts_at_stale_files() {
        let dir = std::env::temp_dir().join(format!("gograph-ckpt-chain-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("epoch.ckpt");
        let (base, batches, cur) = delta_fixture();
        let delta = diff_checkpoint(&base, &cur, batches).unwrap();
        write_checkpoint(&path, &base).unwrap();
        write_delta(&delta_path(&path, 1), &delta).unwrap();
        let (eff, applied) = read_checkpoint_chain(&path).unwrap().unwrap();
        assert_eq!(applied, 1);
        assert_checkpoints_bit_identical(&eff, &cur);
        // Rebase: the base now holds `cur`; the old d1 is stale (its
        // base_seq chains onto the OLD base) and must be cut, not
        // misapplied — even before the rebase gets to delete it.
        write_checkpoint(&path, &cur).unwrap();
        let (eff, applied) = read_checkpoint_chain(&path).unwrap().unwrap();
        assert_eq!(applied, 0, "stale delta must be ignored after rebase");
        assert_checkpoints_bit_identical(&eff, &cur);
        remove_deltas(&path).unwrap();
        assert!(!delta_path(&path, 1).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
