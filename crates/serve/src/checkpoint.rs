//! Epoch checkpoints: the compaction half of crash recovery.
//!
//! A checkpoint is a serialized [`ResumableState`] per warm pipeline
//! plus the WAL sequence number and epoch it captures — everything
//! needed to rebuild the mutator's exact decision state via
//! [`StreamingPipelineBuilder::resume`](gograph_engine::StreamingPipelineBuilder::resume)
//! and then replay only the WAL records with `seq >` the checkpoint's.
//! Because the streaming pipeline is deterministic and the resumable
//! state carries the insertion order's full float-key state, recovery
//! lands on **bit-identical** epochs to an uninterrupted run.
//!
//! Layout (all integers little-endian, floats as raw bit patterns so
//! round-trips are exact):
//!
//! ```text
//! GGCKPT1\0 · payload · crc u32
//! payload = seq u64 · epoch u64 · updates_applied u64 · mutator_rounds u64
//!         · n_pipelines u32 · n × pipeline
//! pipeline = alg u8 · source u32 · state
//! state   = graph (len u64 · binary CSR) · order_vals (n u64 bits)
//!         · min/max bits u64 · part_of (n u32) · part_members
//!         · baseline_intra ((positive, total) u64 pairs)
//!         · baseline_fraction/density bits u64 · states (n u64 bits)
//!         · 5 evolution counters u64
//! ```
//!
//! The trailing CRC-32 covers the whole payload; a mismatch (torn
//! write, bit rot) is an error — the file is written atomically
//! (temp + fsync + rename) precisely so this never happens in normal
//! crash windows.

use crate::core::WarmSpec;
use crate::spec::AlgSpec;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use gograph_core::PartitionContribution;
use gograph_engine::ResumableState;
use gograph_graph::io::{crc32, from_binary, to_binary};
use gograph_graph::VertexId;
use std::fs::File;
use std::io::{self, Write};
use std::path::Path;

/// File magic: identifies a GoGraph checkpoint, version 1.
pub const CHECKPOINT_MAGIC: &[u8; 8] = b"GGCKPT1\0";

/// A recovery point: per-pipeline resumable state plus the WAL
/// position it captures.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Highest WAL sequence number whose batch is folded in. Replay
    /// starts at `seq + 1`.
    pub seq: u64,
    /// Epoch counter at the capture point.
    pub epoch: u64,
    /// `ServeStats::updates_applied` at the capture point.
    pub updates_applied: u64,
    /// `ServeStats::mutator_rounds` at the capture point.
    pub mutator_rounds: u64,
    /// One entry per warm pipeline, in `ServeConfig::warm` order.
    pub pipelines: Vec<PipelineCheckpoint>,
}

/// One warm pipeline's identity and exported state.
#[derive(Debug, Clone)]
pub struct PipelineCheckpoint {
    /// Which warm pipeline this is.
    pub warm: WarmSpec,
    /// Its full resumable state.
    pub state: ResumableState,
}

fn put_f64s(buf: &mut BytesMut, xs: &[f64]) {
    buf.put_u64_le(xs.len() as u64);
    for &x in xs {
        buf.put_u64_le(x.to_bits());
    }
}

fn get_f64s(buf: &mut Bytes) -> io::Result<Vec<f64>> {
    let n = get_len(buf, 8)?;
    Ok((0..n).map(|_| f64::from_bits(buf.get_u64_le())).collect())
}

fn corrupt(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Reads a u64 length prefix and bounds-checks `n * elem_bytes`
/// against the remaining payload before any allocation.
fn get_len(buf: &mut Bytes, elem_bytes: usize) -> io::Result<usize> {
    if buf.remaining() < 8 {
        return Err(corrupt("truncated length prefix"));
    }
    let n = buf.get_u64_le();
    let need = (n as usize)
        .checked_mul(elem_bytes)
        .ok_or_else(|| corrupt("length overflow"))?;
    if buf.remaining() < need {
        return Err(corrupt("length prefix exceeds payload"));
    }
    Ok(n as usize)
}

fn put_state(buf: &mut BytesMut, s: &ResumableState) {
    let graph = to_binary(&s.graph);
    buf.put_u64_le(graph.len() as u64);
    buf.put_slice(&graph);
    put_f64s(buf, &s.order_vals);
    buf.put_u64_le(s.order_min_val.to_bits());
    buf.put_u64_le(s.order_max_val.to_bits());
    buf.put_u64_le(s.part_of.len() as u64);
    for &p in &s.part_of {
        buf.put_u32_le(p);
    }
    buf.put_u64_le(s.part_members.len() as u64);
    for members in &s.part_members {
        buf.put_u64_le(members.len() as u64);
        for &v in members {
            buf.put_u32_le(v);
        }
    }
    buf.put_u64_le(s.baseline_intra.len() as u64);
    for c in &s.baseline_intra {
        buf.put_u64_le(c.positive as u64);
        buf.put_u64_le(c.total as u64);
    }
    buf.put_u64_le(s.baseline_fraction.to_bits());
    buf.put_u64_le(s.baseline_density.to_bits());
    put_f64s(buf, &s.states);
    for c in [
        s.total_rounds,
        s.batches_applied,
        s.full_reorders,
        s.partition_reorders,
        s.partition_repair_attempts,
    ] {
        buf.put_u64_le(c as u64);
    }
}

fn get_state(buf: &mut Bytes) -> io::Result<ResumableState> {
    let graph_len = get_len(buf, 1)?;
    let graph = from_binary(buf.split_to(graph_len))?;
    let order_vals = get_f64s(buf)?;
    if buf.remaining() < 16 {
        return Err(corrupt("truncated order bounds"));
    }
    let order_min_val = f64::from_bits(buf.get_u64_le());
    let order_max_val = f64::from_bits(buf.get_u64_le());
    let n_part_of = get_len(buf, 4)?;
    let part_of: Vec<u32> = (0..n_part_of).map(|_| buf.get_u32_le()).collect();
    let n_parts = get_len(buf, 8)?;
    let mut part_members: Vec<Vec<VertexId>> = Vec::with_capacity(n_parts.min(4096));
    for _ in 0..n_parts {
        let m = get_len(buf, 4)?;
        part_members.push((0..m).map(|_| buf.get_u32_le()).collect());
    }
    let n_intra = get_len(buf, 16)?;
    let baseline_intra: Vec<PartitionContribution> = (0..n_intra)
        .map(|_| {
            let positive = buf.get_u64_le() as usize;
            let total = buf.get_u64_le() as usize;
            PartitionContribution { positive, total }
        })
        .collect();
    if buf.remaining() < 16 {
        return Err(corrupt("truncated baselines"));
    }
    let baseline_fraction = f64::from_bits(buf.get_u64_le());
    let baseline_density = f64::from_bits(buf.get_u64_le());
    let states = get_f64s(buf)?;
    if buf.remaining() < 5 * 8 {
        return Err(corrupt("truncated evolution counters"));
    }
    let mut counters = [0u64; 5];
    for c in counters.iter_mut() {
        *c = buf.get_u64_le();
    }
    Ok(ResumableState {
        graph,
        order_vals,
        order_min_val,
        order_max_val,
        part_of,
        part_members,
        baseline_intra,
        baseline_fraction,
        baseline_density,
        states,
        total_rounds: counters[0] as usize,
        batches_applied: counters[1] as usize,
        full_reorders: counters[2] as usize,
        partition_reorders: counters[3] as usize,
        partition_repair_attempts: counters[4] as usize,
    })
}

/// Serializes a checkpoint (magic + payload + CRC trailer).
pub fn encode_checkpoint(ck: &Checkpoint) -> Bytes {
    let mut payload = BytesMut::with_capacity(1 << 16);
    payload.put_u64_le(ck.seq);
    payload.put_u64_le(ck.epoch);
    payload.put_u64_le(ck.updates_applied);
    payload.put_u64_le(ck.mutator_rounds);
    payload.put_u32_le(ck.pipelines.len() as u32);
    for p in &ck.pipelines {
        payload.put_u8(p.warm.alg.code());
        payload.put_u32_le(p.warm.source);
        put_state(&mut payload, &p.state);
    }
    let crc = crc32(&payload);
    let mut out = BytesMut::with_capacity(8 + payload.len() + 4);
    out.put_slice(CHECKPOINT_MAGIC);
    out.put_slice(&payload);
    out.put_u32_le(crc);
    out.freeze()
}

/// Deserializes and CRC-verifies a checkpoint.
pub fn decode_checkpoint(data: Bytes) -> io::Result<Checkpoint> {
    if data.len() < 8 + 4 || &data[..8] != CHECKPOINT_MAGIC {
        return Err(corrupt("not a GoGraph checkpoint (bad magic)"));
    }
    let payload = data.slice(8..data.len() - 4);
    let stored_crc = u32::from_le_bytes(data[data.len() - 4..].try_into().unwrap());
    if crc32(&payload) != stored_crc {
        return Err(corrupt("checkpoint CRC mismatch"));
    }
    let mut buf = payload;
    if buf.remaining() < 4 * 8 + 4 {
        return Err(corrupt("truncated checkpoint header"));
    }
    let seq = buf.get_u64_le();
    let epoch = buf.get_u64_le();
    let updates_applied = buf.get_u64_le();
    let mutator_rounds = buf.get_u64_le();
    let n = buf.get_u32_le() as usize;
    let mut pipelines = Vec::with_capacity(n.min(256));
    for _ in 0..n {
        if buf.remaining() < 5 {
            return Err(corrupt("truncated pipeline header"));
        }
        let code = buf.get_u8();
        let alg = AlgSpec::from_code(code)
            .ok_or_else(|| corrupt(format!("unknown algorithm code {code}")))?;
        let source = buf.get_u32_le();
        let state = get_state(&mut buf)?;
        pipelines.push(PipelineCheckpoint {
            warm: WarmSpec::new(alg, source),
            state,
        });
    }
    if buf.has_remaining() {
        return Err(corrupt("trailing bytes after checkpoint"));
    }
    Ok(Checkpoint {
        seq,
        epoch,
        updates_applied,
        mutator_rounds,
        pipelines,
    })
}

/// Atomically writes a checkpoint to `path`: temp file + fsync +
/// rename, so a crash at any instant leaves either the previous
/// complete checkpoint or the new complete one — never a torn mix.
pub fn write_checkpoint(path: &Path, ck: &Checkpoint) -> io::Result<()> {
    let bytes = encode_checkpoint(ck);
    let tmp = path.with_extension("ckpt.tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_data()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        if let Ok(dir) = File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

/// Reads the checkpoint at `path`; `Ok(None)` when none exists yet.
pub fn read_checkpoint(path: &Path) -> io::Result<Option<Checkpoint>> {
    match std::fs::read(path) {
        Ok(raw) => decode_checkpoint(Bytes::from(raw)).map(Some),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gograph_engine::{Sssp, StreamingPipeline};
    use gograph_graph::generators::{planted_partition, shuffle_labels, PlantedPartitionConfig};
    use gograph_graph::EdgeUpdate;

    fn pipeline_state() -> ResumableState {
        let g = shuffle_labels(
            &planted_partition(PlantedPartitionConfig {
                num_vertices: 60,
                num_edges: 320,
                communities: 3,
                p_intra: 0.8,
                gamma: 2.4,
                seed: 41,
            }),
            3,
        );
        let mut sp = StreamingPipeline::over(&g)
            .algorithm(Sssp::new(0))
            .build()
            .unwrap();
        sp.apply_batch(&[EdgeUpdate::insert(0, 59), EdgeUpdate::remove(1, 2)])
            .unwrap();
        sp.export_state()
    }

    #[test]
    fn checkpoint_roundtrip_is_exact() {
        let state = pipeline_state();
        let ck = Checkpoint {
            seq: 17,
            epoch: 9,
            updates_applied: 120,
            mutator_rounds: 33,
            pipelines: vec![PipelineCheckpoint {
                warm: WarmSpec::new(AlgSpec::Sssp, 0),
                state: state.clone(),
            }],
        };
        let decoded = decode_checkpoint(encode_checkpoint(&ck)).unwrap();
        assert_eq!(decoded.seq, 17);
        assert_eq!(decoded.epoch, 9);
        assert_eq!(decoded.updates_applied, 120);
        assert_eq!(decoded.mutator_rounds, 33);
        let d = &decoded.pipelines[0];
        assert_eq!(d.warm, WarmSpec::new(AlgSpec::Sssp, 0));
        assert_eq!(d.state.graph, state.graph);
        let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&d.state.order_vals), bits(&state.order_vals));
        assert_eq!(
            d.state.order_min_val.to_bits(),
            state.order_min_val.to_bits()
        );
        assert_eq!(
            d.state.order_max_val.to_bits(),
            state.order_max_val.to_bits()
        );
        assert_eq!(d.state.part_of, state.part_of);
        assert_eq!(d.state.part_members, state.part_members);
        assert_eq!(d.state.baseline_intra, state.baseline_intra);
        assert_eq!(bits(&d.state.states), bits(&state.states));
        assert_eq!(d.state.total_rounds, state.total_rounds);
        assert_eq!(d.state.batches_applied, state.batches_applied);
    }

    #[test]
    fn corruption_is_detected_at_every_flipped_byte_region() {
        let ck = Checkpoint {
            seq: 1,
            epoch: 1,
            updates_applied: 2,
            mutator_rounds: 1,
            pipelines: vec![PipelineCheckpoint {
                warm: WarmSpec::new(AlgSpec::Cc, 0),
                state: pipeline_state(),
            }],
        };
        let good = encode_checkpoint(&ck);
        // Flip one byte in several regions: header, middle, trailer.
        for idx in [9, good.len() / 2, good.len() - 2] {
            let mut bad = good.to_vec();
            bad[idx] ^= 0x5A;
            assert!(
                decode_checkpoint(Bytes::from(bad)).is_err(),
                "flip at {idx} must be caught"
            );
        }
        // Truncations are caught too.
        for cut in [7, 12, good.len() - 5] {
            assert!(decode_checkpoint(good.slice(..cut)).is_err());
        }
    }

    #[test]
    fn file_roundtrip_and_missing_file() {
        let dir = std::env::temp_dir().join(format!("gograph-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("epoch.ckpt");
        assert!(read_checkpoint(&path).unwrap().is_none());
        let ck = Checkpoint {
            seq: 3,
            epoch: 2,
            updates_applied: 10,
            mutator_rounds: 3,
            pipelines: vec![PipelineCheckpoint {
                warm: WarmSpec::new(AlgSpec::Sssp, 5),
                state: pipeline_state(),
            }],
        };
        write_checkpoint(&path, &ck).unwrap();
        let back = read_checkpoint(&path).unwrap().unwrap();
        assert_eq!(back.seq, 3);
        assert_eq!(back.pipelines[0].warm.source, 5);
        // Overwrite is atomic and replaces the old contents.
        let ck2 = Checkpoint { seq: 8, ..ck };
        write_checkpoint(&path, &ck2).unwrap();
        assert_eq!(read_checkpoint(&path).unwrap().unwrap().seq, 8);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
