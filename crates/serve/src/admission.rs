//! Admission batching: leader/follower request combining.
//!
//! Concurrent queries for the same (algorithm, mode) are coalesced into
//! one execution. The first arrival becomes the **leader**: it opens a
//! slot, sleeps one admission window while followers append their
//! sources, then closes the slot and executes a single multi-source run
//! over the union source set. Followers block on the slot's condvar and
//! wake holding the shared outcome. The service's answer is therefore
//! defined as *the fixpoint of the union query* — every reply carries
//! the effective source set so clients (and the stress test) can
//! reproduce the exact run.
//!
//! Global algorithms (empty source sets) combine too: the union is
//! empty and coalescing is pure dedup of identical work.

use gograph_graph::VertexId;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// What [`AdmissionQueue::submit`] resolved a request into.
pub enum Admission<T> {
    /// This request leads the batch: execute the union query for
    /// `sources` and hand the outcome to [`AdmissionQueue::complete`].
    Lead {
        /// The slot to complete (opaque to callers).
        slot: Arc<Slot<T>>,
        /// Union of every admitted request's sources, in admission
        /// order (leader first), deduplicated.
        sources: Vec<VertexId>,
        /// How many requests were admitted into this batch (>= 1).
        admitted: usize,
    },
    /// This request was admitted into another leader's batch; the
    /// leader's outcome is already here.
    Follow(T),
}

/// One open (or executing) batch.
#[derive(Debug)]
pub struct Slot<T> {
    state: Mutex<SlotState<T>>,
    done: Condvar,
}

#[derive(Debug)]
struct SlotState<T> {
    sources: Vec<VertexId>,
    admitted: usize,
    outcome: Option<T>,
    /// Set if the leader aborted (execution error): followers retry
    /// solo rather than hang.
    poisoned: bool,
}

/// Combines concurrent same-key requests into one execution per
/// admission window. `T` is the shared outcome type (an `Arc` in
/// practice).
#[derive(Debug)]
pub struct AdmissionQueue<Key: Eq + Hash + Clone, T: Clone> {
    window: Duration,
    open: Mutex<HashMap<Key, Arc<Slot<T>>>>,
}

impl<Key: Eq + Hash + Clone, T: Clone> AdmissionQueue<Key, T> {
    /// A queue whose leaders hold admission open for `window`. A zero
    /// window still combines requests that arrive while the leader is
    /// executing-adjacent bookkeeping, but in practice admits ~1.
    pub fn new(window: Duration) -> Self {
        AdmissionQueue {
            window,
            open: Mutex::new(HashMap::new()),
        }
    }

    /// Submits a request with `sources` under `key`. Returns either the
    /// leader role (caller must execute and [`complete`](Self::complete)
    /// the slot) or, after blocking, the outcome computed by the batch
    /// leader.
    pub fn submit(&self, key: Key, sources: &[VertexId]) -> Admission<T> {
        let slot = {
            let mut open = crate::lock_unpoisoned(&self.open);
            if let Some(slot) = open.get(&key) {
                // Join the open batch.
                let slot = Arc::clone(slot);
                let mut st = crate::lock_unpoisoned(&slot.state);
                st.sources.extend_from_slice(sources);
                st.admitted += 1;
                drop(st);
                drop(open);
                return self.wait(&slot, sources);
            }
            let slot = Arc::new(Slot {
                state: Mutex::new(SlotState {
                    sources: sources.to_vec(),
                    admitted: 1,
                    outcome: None,
                    poisoned: false,
                }),
                done: Condvar::new(),
            });
            open.insert(key.clone(), Arc::clone(&slot));
            slot
        };

        // Leader: hold admission open for one window, then close it so
        // the union set is frozen before execution.
        if !self.window.is_zero() {
            std::thread::sleep(self.window);
        }
        crate::lock_unpoisoned(&self.open).remove(&key);

        let st = crate::lock_unpoisoned(&slot.state);
        let mut union = st.sources.clone();
        let admitted = st.admitted;
        drop(st);
        let mut seen = std::collections::HashSet::new();
        union.retain(|s| seen.insert(*s));
        Admission::Lead {
            slot,
            sources: union,
            admitted,
        }
    }

    fn wait(&self, slot: &Arc<Slot<T>>, sources: &[VertexId]) -> Admission<T> {
        let mut st = crate::lock_unpoisoned(&slot.state);
        loop {
            if let Some(outcome) = st.outcome.clone() {
                return Admission::Follow(outcome);
            }
            if st.poisoned {
                // Leader died; run solo (degenerate batch of one).
                return Admission::Lead {
                    slot: Arc::new(Slot {
                        state: Mutex::new(SlotState {
                            sources: sources.to_vec(),
                            admitted: 1,
                            outcome: None,
                            poisoned: false,
                        }),
                        done: Condvar::new(),
                    }),
                    sources: sources.to_vec(),
                    admitted: 1,
                };
            }
            st = slot.done.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Leader hand-off: publishes `outcome` to every follower of `slot`.
    pub fn complete(&self, slot: &Arc<Slot<T>>, outcome: T) {
        let mut st = crate::lock_unpoisoned(&slot.state);
        st.outcome = Some(outcome);
        slot.done.notify_all();
    }

    /// Leader abort: wakes followers so they retry solo instead of
    /// waiting forever.
    pub fn poison(&self, slot: &Arc<Slot<T>>) {
        let mut st = crate::lock_unpoisoned(&slot.state);
        st.poisoned = true;
        slot.done.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn solo_request_leads_with_its_own_sources() {
        let q: AdmissionQueue<u8, Arc<u32>> = AdmissionQueue::new(Duration::ZERO);
        match q.submit(1, &[42, 42, 7]) {
            Admission::Lead {
                sources, admitted, ..
            } => {
                assert_eq!(sources, vec![42, 7], "deduplicated, order kept");
                assert_eq!(admitted, 1);
            }
            Admission::Follow(_) => panic!("no open batch to follow"),
        }
    }

    #[test]
    fn concurrent_same_key_requests_coalesce() {
        let q: Arc<AdmissionQueue<u8, Arc<Vec<u32>>>> =
            Arc::new(AdmissionQueue::new(Duration::from_millis(60)));
        let executions = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for i in 0..6u32 {
            let q = Arc::clone(&q);
            let executions = Arc::clone(&executions);
            handles.push(std::thread::spawn(move || match q.submit(9, &[i]) {
                Admission::Lead { slot, sources, .. } => {
                    executions.fetch_add(1, Ordering::SeqCst);
                    let out = Arc::new(sources.clone());
                    q.complete(&slot, Arc::clone(&out));
                    out
                }
                Admission::Follow(out) => out,
            }));
        }
        let results: Vec<Arc<Vec<u32>>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Every thread that joined the first leader's window shares one
        // outcome; stragglers may have led their own batch, but with 6
        // near-simultaneous submits and a 60ms window we expect far
        // fewer executions than submissions.
        let execs = executions.load(Ordering::SeqCst);
        assert!(
            execs < 6,
            "coalescing must merge some requests (got {execs})"
        );
        // Each result contains the sources of everyone in its batch.
        for (i, r) in results.iter().enumerate() {
            assert!(
                r.contains(&(i as u32)) || execs > 1,
                "a single batch must contain every admitted source"
            );
        }
    }

    #[test]
    fn different_keys_do_not_combine() {
        let q: Arc<AdmissionQueue<u8, Arc<u32>>> =
            Arc::new(AdmissionQueue::new(Duration::from_millis(40)));
        let qa = Arc::clone(&q);
        let a = std::thread::spawn(move || match qa.submit(1, &[10]) {
            Admission::Lead { slot, sources, .. } => {
                qa.complete(&slot, Arc::new(sources[0]));
                true
            }
            Admission::Follow(_) => false,
        });
        let qb = Arc::clone(&q);
        let b = std::thread::spawn(move || match qb.submit(2, &[20]) {
            Admission::Lead { slot, sources, .. } => {
                qb.complete(&slot, Arc::new(sources[0]));
                true
            }
            Admission::Follow(_) => false,
        });
        assert!(a.join().unwrap(), "key 1 must lead its own batch");
        assert!(b.join().unwrap(), "key 2 must lead its own batch");
    }
}
