//! Write-ahead update log: the durability half of crash recovery.
//!
//! Admitted update batches are appended here **before** the client's
//! ack is sent, so a crash after the ack can always be replayed. The
//! file layout is an 8-byte magic followed by self-delimiting records:
//!
//! ```text
//! GGWAL1\0\0 · record* · (possibly torn tail)
//! record = len u32 · crc u32 · payload
//! payload = seq u64 · n u32 · n × update   (update as in the wire protocol)
//! ```
//!
//! `len` is the payload length and `crc` its CRC-32, so a reader can
//! walk records front-to-back and stop at the first record whose length
//! runs past EOF or whose checksum fails — everything before that point
//! is intact, everything after is an unacknowledged torn tail and is
//! discarded by truncating to [`WalContents::valid_bytes`]. Updates use
//! the exact wire-protocol codec, so a replayed record is
//! byte-for-byte the batch a client once framed.
//!
//! Sequence numbers are assigned by the caller (monotonically, starting
//! at 1) and let recovery skip records already captured by a
//! checkpoint; [`compact_wal`] drops those records atomically
//! (write-temp + rename) once a checkpoint lands.

use crate::wire::{get_updates, put_updates};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use gograph_graph::io::crc32;
use gograph_graph::EdgeUpdate;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// File magic: identifies a GoGraph WAL, version 1.
pub const WAL_MAGIC: &[u8; 8] = b"GGWAL1\0\0";

/// Records larger than this are treated as corruption — mirrors the
/// wire protocol's frame cap so a torn length field cannot drive a
/// gigabyte allocation during replay.
pub const MAX_RECORD_BYTES: u32 = 64 << 20;

/// How eagerly appended records are forced to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// `fdatasync` after every append: an acked batch survives power
    /// loss, at one sync per batch.
    EveryBatch,
    /// Group commit: sync once every `n` appends (and on drop). An
    /// acked batch always survives *process* crashes; up to `n − 1`
    /// batches may be lost to a whole-machine failure.
    EveryN(u32),
    /// Never sync explicitly; the OS flushes at its leisure. Acked
    /// batches still survive process crashes (the write hit the page
    /// cache before the ack).
    Os,
}

/// An appendable write-ahead log.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    sync: SyncPolicy,
    since_sync: u32,
    len: u64,
}

impl WalWriter {
    /// Opens (or creates) the log at `path`, positioned to append. A
    /// fresh or empty file gets the magic; an existing file must carry
    /// it. Recovery must have truncated any torn tail first (see
    /// [`truncate_wal`]) — this writer appends blindly at EOF.
    pub fn open(path: &Path, sync: SyncPolicy) -> io::Result<WalWriter> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let end = file.seek(SeekFrom::End(0))?;
        if end == 0 {
            file.write_all(WAL_MAGIC)?;
            file.sync_data()?;
        } else {
            let mut magic = [0u8; 8];
            file.seek(SeekFrom::Start(0))?;
            file.read_exact(&mut magic)?;
            if &magic != WAL_MAGIC {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "not a GoGraph WAL (bad magic)",
                ));
            }
            file.seek(SeekFrom::End(0))?;
        }
        let len = file.stream_position()?;
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            sync,
            since_sync: 0,
            len,
        })
    }

    /// Appends one batch under sequence number `seq` and applies the
    /// sync policy. Returns the record's size in bytes. The record is
    /// durable (per the policy) when this returns — callers ack only
    /// after that.
    pub fn append(&mut self, seq: u64, updates: &[EdgeUpdate]) -> io::Result<u64> {
        let mut payload = BytesMut::with_capacity(16 + 17 * updates.len());
        payload.put_u64_le(seq);
        put_updates(&mut payload, updates);
        let crc = crc32(&payload);
        let mut record = BytesMut::with_capacity(8 + payload.len());
        record.put_u32_le(payload.len() as u32);
        record.put_u32_le(crc);
        record.put_slice(&payload);
        self.file.write_all(&record)?;
        self.len += record.len() as u64;
        self.since_sync += 1;
        let sync_now = match self.sync {
            SyncPolicy::EveryBatch => true,
            SyncPolicy::EveryN(n) => self.since_sync >= n.max(1),
            SyncPolicy::Os => false,
        };
        if sync_now {
            self.file.sync_data()?;
            self.since_sync = 0;
        }
        Ok(record.len() as u64)
    }

    /// Current log length in bytes (magic included).
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// Path this writer appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Forces everything appended so far to stable storage.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()?;
        self.since_sync = 0;
        Ok(())
    }
}

/// One replayable record.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// Caller-assigned sequence number.
    pub seq: u64,
    /// The batch exactly as appended.
    pub updates: Vec<EdgeUpdate>,
}

/// Whether the log ended cleanly or in a torn write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailStatus {
    /// The last record ends exactly at EOF.
    Clean,
    /// Bytes after the last intact record fail framing or CRC — an
    /// unacknowledged torn append. Truncate to `valid_bytes`.
    CorruptTail,
}

/// Everything [`read_wal`] recovered.
#[derive(Debug, Clone, PartialEq)]
pub struct WalContents {
    /// Intact records, in append order.
    pub records: Vec<WalRecord>,
    /// Whether a torn tail follows them.
    pub tail: TailStatus,
    /// Byte offset of the first non-intact byte: the length of the
    /// longest valid prefix (magic + intact records).
    pub valid_bytes: u64,
}

/// Walks the log front-to-back, collecting every intact record and
/// reporting where intactness ends. A missing file reads as an empty
/// clean log; a present file must carry the magic.
pub fn read_wal(path: &Path) -> io::Result<WalContents> {
    let raw = match std::fs::read(path) {
        Ok(raw) => raw,
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            return Ok(WalContents {
                records: Vec::new(),
                tail: TailStatus::Clean,
                valid_bytes: 0,
            })
        }
        Err(e) => return Err(e),
    };
    if raw.len() < WAL_MAGIC.len() || &raw[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a GoGraph WAL (bad magic)",
        ));
    }
    let mut records = Vec::new();
    let mut pos = WAL_MAGIC.len();
    loop {
        if pos == raw.len() {
            return Ok(WalContents {
                records,
                tail: TailStatus::Clean,
                valid_bytes: pos as u64,
            });
        }
        let Some(record) = parse_record(&raw[pos..]) else {
            return Ok(WalContents {
                records,
                tail: TailStatus::CorruptTail,
                valid_bytes: pos as u64,
            });
        };
        let (rec, consumed) = record;
        records.push(rec);
        pos += consumed;
    }
}

/// Parses one record off the front of `bytes`; `None` on any framing,
/// CRC or payload defect (all equivalent to a torn tail).
fn parse_record(bytes: &[u8]) -> Option<(WalRecord, usize)> {
    if bytes.len() < 8 {
        return None;
    }
    let len = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
    let crc = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if len > MAX_RECORD_BYTES || (len as usize) > bytes.len() - 8 {
        return None;
    }
    let payload = &bytes[8..8 + len as usize];
    if crc32(payload) != crc {
        return None;
    }
    let mut buf = Bytes::copy_from_slice(payload);
    if buf.remaining() < 8 {
        return None;
    }
    let seq = buf.get_u64_le();
    let updates = get_updates(&mut buf).ok()?;
    if buf.has_remaining() {
        return None;
    }
    Some((WalRecord { seq, updates }, 8 + len as usize))
}

/// Discards a torn tail by truncating the log to its longest valid
/// prefix (from [`WalContents::valid_bytes`]). A `valid_bytes` of 0
/// (missing/empty log) is a no-op.
pub fn truncate_wal(path: &Path, valid_bytes: u64) -> io::Result<()> {
    if valid_bytes == 0 && !path.exists() {
        return Ok(());
    }
    let file = OpenOptions::new().write(true).open(path)?;
    file.set_len(valid_bytes.max(WAL_MAGIC.len() as u64))?;
    file.sync_data()?;
    Ok(())
}

/// Atomically rewrites the log keeping only records with
/// `seq > keep_after_seq` — called after a checkpoint at
/// `keep_after_seq` makes earlier records redundant. Crash-safe in
/// every window: the new log is written to a temp file, fsynced, then
/// renamed over the old one (a crash leaves either the old complete
/// log or the new complete log). Returns the number of records kept.
pub fn compact_wal(path: &Path, keep_after_seq: u64) -> io::Result<usize> {
    let contents = read_wal(path)?;
    let keep: Vec<&WalRecord> = contents
        .records
        .iter()
        .filter(|r| r.seq > keep_after_seq)
        .collect();
    let tmp = path.with_extension("wal.tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(WAL_MAGIC)?;
        for r in &keep {
            let mut payload = BytesMut::with_capacity(16 + 17 * r.updates.len());
            payload.put_u64_le(r.seq);
            put_updates(&mut payload, &r.updates);
            let mut record = BytesMut::with_capacity(8 + payload.len());
            record.put_u32_le(payload.len() as u32);
            record.put_u32_le(crc32(&payload));
            record.put_slice(&payload);
            f.write_all(&record)?;
        }
        f.sync_data()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        if let Ok(dir) = File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(keep.len())
}

/// Reads the log and returns up to `max_records` intact records in the
/// half-open seq window `(after_seq, up_to_seq]`, in append order — the
/// primary's per-subscribe segment scan. `max_records` is clamped to at
/// least 1 so a subscriber can always make progress.
pub fn read_wal_segment(
    path: &Path,
    after_seq: u64,
    up_to_seq: u64,
    max_records: u32,
) -> io::Result<Vec<WalRecord>> {
    let contents = read_wal(path)?;
    Ok(contents
        .records
        .into_iter()
        .filter(|r| r.seq > after_seq && r.seq <= up_to_seq)
        .take(max_records.max(1) as usize)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gograph-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn batch(k: u32) -> Vec<EdgeUpdate> {
        vec![
            EdgeUpdate::insert_weighted(k, k + 1, 1.5),
            EdgeUpdate::remove(k + 1, k),
        ]
    }

    #[test]
    fn append_read_roundtrip_and_reopen() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("updates.wal");
        let mut w = WalWriter::open(&path, SyncPolicy::EveryBatch).unwrap();
        for seq in 1..=3u64 {
            w.append(seq, &batch(seq as u32)).unwrap();
        }
        drop(w);
        // Reopen appends after existing records.
        let mut w = WalWriter::open(&path, SyncPolicy::EveryN(8)).unwrap();
        w.append(4, &batch(4)).unwrap();
        w.sync().unwrap();
        let contents = read_wal(&path).unwrap();
        assert_eq!(contents.tail, TailStatus::Clean);
        assert_eq!(contents.records.len(), 4);
        for (i, r) in contents.records.iter().enumerate() {
            assert_eq!(r.seq, i as u64 + 1);
            assert_eq!(r.updates, batch(r.seq as u32));
        }
        assert_eq!(contents.valid_bytes, w.len_bytes());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segment_reads_honor_window_and_cap() {
        let dir = tmp_dir("segment");
        let path = dir.join("updates.wal");
        let mut w = WalWriter::open(&path, SyncPolicy::EveryBatch).unwrap();
        for seq in 1..=6u64 {
            w.append(seq, &batch(seq as u32)).unwrap();
        }
        drop(w);
        let seg = read_wal_segment(&path, 2, 5, 2).unwrap();
        assert_eq!(
            seg.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![3, 4],
            "window is (after, up_to], capped"
        );
        let seg = read_wal_segment(&path, 2, 5, 100).unwrap();
        assert_eq!(seg.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![3, 4, 5]);
        assert_eq!(seg[0].updates, batch(3));
        // A zero cap still returns one record — progress is guaranteed.
        let seg = read_wal_segment(&path, 0, 6, 0).unwrap();
        assert_eq!(seg.len(), 1);
        assert!(read_wal_segment(&path, 6, 6, 8).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncation_at_every_offset_keeps_only_intact_prefix() {
        let dir = tmp_dir("truncate");
        let path = dir.join("updates.wal");
        let mut w = WalWriter::open(&path, SyncPolicy::Os).unwrap();
        for seq in 1..=5u64 {
            w.append(seq, &batch(seq as u32)).unwrap();
        }
        w.sync().unwrap();
        drop(w);
        let full = std::fs::read(&path).unwrap();
        let intact = read_wal(&path).unwrap();
        assert_eq!(intact.records.len(), 5);
        // Record boundaries: prefix lengths at which the log is clean.
        let mut boundaries = vec![WAL_MAGIC.len() as u64];
        {
            let mut pos = WAL_MAGIC.len();
            while pos < full.len() {
                let len = u32::from_le_bytes(full[pos..pos + 4].try_into().unwrap()) as usize;
                pos += 8 + len;
                boundaries.push(pos as u64);
            }
        }
        for cut in WAL_MAGIC.len()..=full.len() {
            let cut_path = dir.join(format!("cut-{cut}.wal"));
            std::fs::write(&cut_path, &full[..cut]).unwrap();
            let c = read_wal(&cut_path).unwrap();
            // Every intact record must be a true prefix of the original.
            assert!(c.records.len() <= 5);
            for (i, r) in c.records.iter().enumerate() {
                assert_eq!(r, &intact.records[i], "cut at {cut}");
            }
            if boundaries.contains(&(cut as u64)) {
                assert_eq!(c.tail, TailStatus::Clean, "cut at {cut}");
            } else {
                assert_eq!(c.tail, TailStatus::CorruptTail, "cut at {cut}");
                assert!(boundaries.contains(&c.valid_bytes));
            }
            // Repair: truncate to the valid prefix, reopen, append.
            truncate_wal(&cut_path, c.valid_bytes).unwrap();
            let kept = c.records.len();
            let mut w = WalWriter::open(&cut_path, SyncPolicy::EveryBatch).unwrap();
            w.append(99, &batch(99)).unwrap();
            let after = read_wal(&cut_path).unwrap();
            assert_eq!(after.tail, TailStatus::Clean);
            assert_eq!(after.records.len(), kept + 1);
            assert_eq!(after.records.last().unwrap().seq, 99);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_byte_is_detected() {
        let dir = tmp_dir("corrupt");
        let path = dir.join("updates.wal");
        let mut w = WalWriter::open(&path, SyncPolicy::EveryBatch).unwrap();
        w.append(1, &batch(1)).unwrap();
        w.append(2, &batch(2)).unwrap();
        drop(w);
        let mut raw = std::fs::read(&path).unwrap();
        // Flip a byte inside the first record's payload.
        let idx = WAL_MAGIC.len() + 12;
        raw[idx] ^= 0xFF;
        std::fs::write(&path, &raw).unwrap();
        let c = read_wal(&path).unwrap();
        assert_eq!(c.tail, TailStatus::CorruptTail);
        assert_eq!(
            c.records.len(),
            0,
            "corruption in record 1 invalidates it and everything after"
        );
        assert_eq!(c.valid_bytes, WAL_MAGIC.len() as u64);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_keeps_only_post_checkpoint_records() {
        let dir = tmp_dir("compact");
        let path = dir.join("updates.wal");
        let mut w = WalWriter::open(&path, SyncPolicy::EveryBatch).unwrap();
        for seq in 1..=6u64 {
            w.append(seq, &batch(seq as u32)).unwrap();
        }
        drop(w);
        assert_eq!(compact_wal(&path, 4).unwrap(), 2);
        let c = read_wal(&path).unwrap();
        assert_eq!(c.tail, TailStatus::Clean);
        assert_eq!(
            c.records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![5, 6]
        );
        // Compacted log accepts further appends.
        let mut w = WalWriter::open(&path, SyncPolicy::EveryBatch).unwrap();
        w.append(7, &batch(7)).unwrap();
        assert_eq!(read_wal(&path).unwrap().records.len(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_reads_empty_and_bad_magic_errors() {
        let dir = tmp_dir("magic");
        let missing = dir.join("nope.wal");
        let c = read_wal(&missing).unwrap();
        assert!(c.records.is_empty());
        assert_eq!(c.tail, TailStatus::Clean);
        let bad = dir.join("bad.wal");
        std::fs::write(&bad, b"NOTAWAL!").unwrap();
        assert!(read_wal(&bad).is_err());
        assert!(WalWriter::open(&bad, SyncPolicy::Os).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
