//! Wire-addressable algorithm and mode specifications.
//!
//! The service cannot ship trait objects over TCP, so queries name one
//! of the built-in iterative algorithms by a one-byte code plus a
//! source list, and [`AlgSpec::instantiate`] rebuilds the concrete
//! [`IterativeAlgorithm`] on the server. Multi-source queries (the
//! product of admission batching — see [`crate::admission`]) wrap the
//! single-source algorithm in [`MultiSource`], which widens only the
//! initial state: every admitted source starts at the source value and
//! the fixpoint becomes the per-vertex best over all sources.

use gograph_engine::{Bfs, ConnectedComponents, IterativeAlgorithm, Mode, PageRank, Sssp, Sswp};
use gograph_graph::{CsrGraph, VertexId, Weight};

/// A servable algorithm, nameable by a one-byte wire code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlgSpec {
    /// Single-source shortest paths (multi-source capable).
    Sssp,
    /// Breadth-first hop counts (multi-source capable).
    Bfs,
    /// Connected components via label propagation (global).
    Cc,
    /// PageRank (global).
    PageRank,
    /// Single-source widest paths (multi-source capable).
    Sswp,
}

impl AlgSpec {
    /// All servable algorithms, in wire-code order.
    pub const ALL: [AlgSpec; 5] = [
        AlgSpec::Sssp,
        AlgSpec::Bfs,
        AlgSpec::Cc,
        AlgSpec::PageRank,
        AlgSpec::Sswp,
    ];

    /// The one-byte wire code.
    pub fn code(self) -> u8 {
        match self {
            AlgSpec::Sssp => 0,
            AlgSpec::Bfs => 1,
            AlgSpec::Cc => 2,
            AlgSpec::PageRank => 3,
            AlgSpec::Sswp => 4,
        }
    }

    /// Decodes a wire code.
    pub fn from_code(code: u8) -> Option<AlgSpec> {
        AlgSpec::ALL.get(code as usize).copied()
    }

    /// Parses the CLI / display name.
    pub fn from_name(name: &str) -> Option<AlgSpec> {
        match name {
            "sssp" => Some(AlgSpec::Sssp),
            "bfs" => Some(AlgSpec::Bfs),
            "cc" => Some(AlgSpec::Cc),
            "pagerank" => Some(AlgSpec::PageRank),
            "sswp" => Some(AlgSpec::Sswp),
            _ => None,
        }
    }

    /// The display name (matches [`IterativeAlgorithm::name`]).
    pub fn name(self) -> &'static str {
        match self {
            AlgSpec::Sssp => "sssp",
            AlgSpec::Bfs => "bfs",
            AlgSpec::Cc => "cc",
            AlgSpec::PageRank => "pagerank",
            AlgSpec::Sswp => "sswp",
        }
    }

    /// Whether queries must carry at least one source vertex. Global
    /// algorithms (CC, PageRank) ignore sources entirely.
    pub fn needs_sources(self) -> bool {
        matches!(self, AlgSpec::Sssp | AlgSpec::Bfs | AlgSpec::Sswp)
    }

    /// Whether a warm start from a converged fixpoint reproduces the
    /// cold result *bit-identically*: true for the max-norm algorithms
    /// (epsilon 0, exact stability), false for the sum-norm family
    /// whose warm re-run takes at least one extra sub-epsilon step.
    pub fn warm_is_exact(self) -> bool {
        !matches!(self, AlgSpec::PageRank)
    }

    /// Builds the concrete algorithm for `sources`.
    ///
    /// Single-source (and global) specs return the plain built-in, so
    /// the engine's monomorphized kernels stay eligible; only genuine
    /// multi-source queries pay the [`MultiSource`] wrapper's dynamic
    /// dispatch.
    pub fn instantiate(self, sources: &[VertexId]) -> Box<dyn IterativeAlgorithm> {
        let seed = sources.first().copied().unwrap_or(0);
        let inner: Box<dyn IterativeAlgorithm> = match self {
            AlgSpec::Sssp => Box::new(Sssp::new(seed)),
            AlgSpec::Bfs => Box::new(Bfs::new(seed)),
            AlgSpec::Cc => Box::new(ConnectedComponents),
            AlgSpec::PageRank => Box::new(PageRank::default()),
            AlgSpec::Sswp => Box::new(Sswp::new(seed)),
        };
        if self.needs_sources() && sources.len() > 1 {
            Box::new(MultiSource::new(inner, sources.to_vec()))
        } else {
            inner
        }
    }
}

/// A serving role, nameable on the `gograph_serve` command line.
///
/// Distinct from [`crate::core::Role`] (the core's *live* role, which
/// flips on promotion): this is the role a process is *launched* with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RoleSpec {
    /// Accepts writes, fsyncs them to its WAL, ships the log to
    /// subscribed followers.
    Primary,
    /// Bootstraps from a primary's checkpoint and replays its WAL;
    /// serves bounded-staleness reads.
    Follower,
}

impl RoleSpec {
    /// Parses the CLI name.
    pub fn from_name(name: &str) -> Option<RoleSpec> {
        match name {
            "primary" => Some(RoleSpec::Primary),
            "follower" => Some(RoleSpec::Follower),
            _ => None,
        }
    }

    /// The CLI / display name.
    pub fn name(self) -> &'static str {
        match self {
            RoleSpec::Primary => "primary",
            RoleSpec::Follower => "follower",
        }
    }
}

/// A wire-addressable execution mode (the subset of [`Mode`] a query
/// may request; the delta engines need a separate algorithm object and
/// are not served).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModeSpec {
    /// Asynchronous in-place iteration (the paper's Eq. 2) — default.
    Async,
    /// Synchronous double-buffered iteration.
    Sync,
    /// Active-frontier worklist scheduling.
    Worklist,
    /// Block-parallel asynchronous with the given block count.
    Parallel(u8),
}

impl ModeSpec {
    /// The one-byte wire code (parallel block count rides in the high
    /// bits' companion byte, kept simple: code 3 is fixed 8 blocks).
    pub fn code(self) -> u8 {
        match self {
            ModeSpec::Async => 0,
            ModeSpec::Sync => 1,
            ModeSpec::Worklist => 2,
            ModeSpec::Parallel(_) => 3,
        }
    }

    /// Decodes a wire code.
    pub fn from_code(code: u8) -> Option<ModeSpec> {
        match code {
            0 => Some(ModeSpec::Async),
            1 => Some(ModeSpec::Sync),
            2 => Some(ModeSpec::Worklist),
            3 => Some(ModeSpec::Parallel(8)),
            _ => None,
        }
    }

    /// Parses the CLI / display name.
    pub fn from_name(name: &str) -> Option<ModeSpec> {
        match name {
            "async" => Some(ModeSpec::Async),
            "sync" => Some(ModeSpec::Sync),
            "worklist" => Some(ModeSpec::Worklist),
            "parallel" => Some(ModeSpec::Parallel(8)),
            _ => None,
        }
    }

    /// The engine [`Mode`] this spec selects.
    pub fn mode(self) -> Mode {
        match self {
            ModeSpec::Async => Mode::Async,
            ModeSpec::Sync => Mode::Sync,
            ModeSpec::Worklist => Mode::Worklist,
            ModeSpec::Parallel(n) => Mode::Parallel(n.max(1) as usize),
        }
    }
}

/// Widens a single-source algorithm to a set of sources by overriding
/// only [`IterativeAlgorithm::init`]: every vertex in the admitted
/// source set starts at the inner algorithm's source value, everything
/// else keeps the non-source default. All folding behavior delegates,
/// so the fixpoint is the per-vertex best over all sources — exactly
/// the fixpoint of the union query that admission batching promises.
///
/// Deliberately does **not** forward `monomorphized()`: a `Some` answer
/// would make the engine run the inner by-value copy instead of this
/// wrapper, silently dropping the widened init (see the trait docs).
pub struct MultiSource {
    inner: Box<dyn IterativeAlgorithm>,
    /// Sorted for binary-search membership in `init`.
    sources: Vec<VertexId>,
    /// `sources[0]` before sorting — the seed the inner algorithm was
    /// constructed with, whose `init` answer is the source value.
    seed: VertexId,
}

impl MultiSource {
    /// Wraps `inner` (constructed for `sources[0]`) to start from every
    /// vertex in `sources`.
    ///
    /// # Panics
    /// Panics when `sources` is empty.
    pub fn new(inner: Box<dyn IterativeAlgorithm>, mut sources: Vec<VertexId>) -> MultiSource {
        let seed = *sources
            .first()
            .expect("MultiSource needs at least one source");
        sources.sort_unstable();
        sources.dedup();
        MultiSource {
            inner,
            sources,
            seed,
        }
    }

    /// The (sorted, deduplicated) source set.
    pub fn sources(&self) -> &[VertexId] {
        &self.sources
    }
}

impl IterativeAlgorithm for MultiSource {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn init(&self, g: &CsrGraph, v: VertexId) -> f64 {
        if self.sources.binary_search(&v).is_ok() {
            // The inner algorithm's answer for its own source vertex is
            // the source value (0 hops, distance 0, +inf width, ...).
            self.inner.init(g, self.seed)
        } else {
            // v != seed here (seed is in `sources`), so this is the
            // plain non-source default.
            self.inner.init(g, v)
        }
    }

    fn gather_identity(&self) -> f64 {
        self.inner.gather_identity()
    }

    fn gather(
        &self,
        acc: f64,
        neighbor_state: f64,
        edge_weight: Weight,
        neighbor_out_degree: usize,
    ) -> f64 {
        self.inner
            .gather(acc, neighbor_state, edge_weight, neighbor_out_degree)
    }

    fn apply(&self, g: &CsrGraph, v: VertexId, current: f64, acc: f64) -> f64 {
        if self.sources.binary_search(&v).is_ok() {
            // Sources are pinned to their initial value, mirroring how
            // the single-source built-ins pin their one source.
            self.inner.init(g, self.seed)
        } else {
            self.inner.apply(g, v, current, acc)
        }
    }

    fn monotonicity(&self) -> gograph_engine::Monotonicity {
        self.inner.monotonicity()
    }

    fn norm(&self) -> gograph_engine::ConvergenceNorm {
        self.inner.norm()
    }

    fn epsilon(&self) -> f64 {
        self.inner.epsilon()
    }

    fn uses_edge_weights(&self) -> bool {
        self.inner.uses_edge_weights()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gograph_engine::Pipeline;
    use gograph_graph::generators::regular::chain;

    #[test]
    fn codes_roundtrip() {
        for alg in AlgSpec::ALL {
            assert_eq!(AlgSpec::from_code(alg.code()), Some(alg));
            assert_eq!(AlgSpec::from_name(alg.name()), Some(alg));
        }
        assert_eq!(AlgSpec::from_code(200), None);
        for code in 0..4u8 {
            let m = ModeSpec::from_code(code).unwrap();
            assert_eq!(m.code(), code);
        }
        assert_eq!(ModeSpec::from_code(9), None);
        for role in [RoleSpec::Primary, RoleSpec::Follower] {
            assert_eq!(RoleSpec::from_name(role.name()), Some(role));
        }
        assert_eq!(RoleSpec::from_name("observer"), None);
    }

    #[test]
    fn multi_source_sssp_is_min_over_singles() {
        let g = chain(12);
        let run = |sources: &[VertexId]| {
            let alg = AlgSpec::Sssp.instantiate(sources);
            Pipeline::on(&g)
                .algorithm_ref(alg.as_ref())
                .execute()
                .unwrap()
                .stats
                .final_states
        };
        let multi = run(&[2, 8]);
        let from2 = run(&[2]);
        let from8 = run(&[8]);
        for v in 0..12 {
            assert_eq!(
                multi[v],
                from2[v].min(from8[v]),
                "vertex {v}: multi-source SSSP must equal the min over sources"
            );
        }
    }

    #[test]
    fn single_source_bypasses_the_wrapper() {
        let g = chain(5);
        let alg = AlgSpec::Bfs.instantiate(&[3]);
        // A plain built-in (not MultiSource) keeps its monomorphized kernel.
        assert!(alg.monomorphized().is_some());
        let multi = AlgSpec::Bfs.instantiate(&[3, 4]);
        assert!(multi.monomorphized().is_none());
        let _ = g;
    }
}
