//! RCU-style epoch publication.
//!
//! The mutator thread builds an immutable [`EpochState`] after every
//! applied update batch and swaps it into the [`EpochCell`]; readers
//! [`pin`](EpochCell::pin) the current epoch (an `Arc` clone taken
//! under a short lock) and execute entirely against that snapshot, so a
//! published swap never moves data out from under a running query.
//! Retirement is the `Arc` refcount: when the last pinned reader drops
//! its handle, the old epoch's storage goes with it — and because
//! `CsrGraph`/`Permutation` payloads are themselves `Arc`-shared (see
//! `CsrGraph::snapshot`), consecutive epochs share every array the
//! update batch didn't rebuild.

use crate::spec::AlgSpec;
use gograph_graph::{CsrGraph, Permutation, VertexId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Converged warm state for one algorithm, carried by an epoch.
#[derive(Debug, Clone)]
pub struct WarmEntry {
    /// Which algorithm these states are a fixpoint of.
    pub alg: AlgSpec,
    /// The source the fixpoint was computed from (ignored by global
    /// algorithms). Only queries for exactly this source may warm-start
    /// from it.
    pub source: VertexId,
    /// The converged per-vertex states on this epoch's graph.
    pub states: Arc<Vec<f64>>,
}

/// One immutable snapshot of the served graph: everything a reader
/// needs to execute a query without touching shared mutable state.
#[derive(Debug, Clone)]
pub struct EpochState {
    /// Monotone epoch number (0 = the bootstrap epoch).
    pub epoch: u64,
    /// The reordered CSR at this epoch (`Arc`-backed storage — cloning
    /// out of the mutator's pipeline was O(1)).
    pub graph: CsrGraph,
    /// The maintained GoGraph processing order for this graph.
    pub order: Arc<Permutation>,
    /// Vertex → partition assignment from the last full reorder (empty
    /// when the mutator runs without partition-scoped maintenance).
    pub part_of: Arc<Vec<u32>>,
    /// Partitions tracked at this epoch.
    pub num_partitions: usize,
    /// Converged warm states, one entry per configured warm algorithm.
    pub warm: Vec<WarmEntry>,
}

impl EpochState {
    /// The warm entry matching `alg` at `source`, if this epoch carries
    /// one (global algorithms match regardless of `source`).
    pub fn warm_for(&self, alg: AlgSpec, source: VertexId) -> Option<&WarmEntry> {
        self.warm
            .iter()
            .find(|w| w.alg == alg && (!alg.needs_sources() || w.source == source))
    }
}

/// The swap cell readers pin epochs from.
///
/// A plain `Mutex<Arc<_>>` rather than a lock-free pointer: the
/// critical section is a single refcount bump, so the lock is held for
/// nanoseconds and never across a query. (An `AtomicPtr` RCU would need
/// a deferred-reclamation scheme the `Arc` already provides.)
#[derive(Debug)]
pub struct EpochCell {
    current: Mutex<Arc<EpochState>>,
    published: AtomicU64,
}

impl EpochCell {
    /// Starts the cell at `initial` (the bootstrap epoch; it does not
    /// count as a *published* epoch).
    pub fn new(initial: EpochState) -> EpochCell {
        EpochCell {
            current: Mutex::new(Arc::new(initial)),
            published: AtomicU64::new(0),
        }
    }

    /// Starts the cell at a *recovered* epoch: `published` is restored
    /// to `published_so_far` so the counter continues where the crashed
    /// process left off instead of restarting at zero.
    pub fn with_published(initial: EpochState, published_so_far: u64) -> EpochCell {
        EpochCell {
            current: Mutex::new(Arc::new(initial)),
            published: AtomicU64::new(published_so_far),
        }
    }

    /// Pins the current epoch: the returned handle keeps every array of
    /// that snapshot alive until dropped, regardless of how many epochs
    /// are published meanwhile.
    pub fn pin(&self) -> Arc<EpochState> {
        Arc::clone(&crate::lock_unpoisoned(&self.current))
    }

    /// Publishes `next` as the current epoch and returns its epoch
    /// number. The displaced epoch retires when its last reader unpins.
    pub fn publish(&self, next: EpochState) -> u64 {
        let epoch = next.epoch;
        *crate::lock_unpoisoned(&self.current) = Arc::new(next);
        self.published.fetch_add(1, Ordering::Relaxed);
        epoch
    }

    /// Epochs published since the bootstrap epoch.
    pub fn epochs_published(&self) -> u64 {
        self.published.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gograph_graph::generators::regular::chain;

    fn epoch(n: u64, g: &CsrGraph) -> EpochState {
        EpochState {
            epoch: n,
            graph: g.snapshot(),
            order: Arc::new(Permutation::identity(g.num_vertices())),
            part_of: Arc::new(Vec::new()),
            num_partitions: 0,
            warm: Vec::new(),
        }
    }

    #[test]
    fn pinned_epoch_survives_publication() {
        let g = chain(6);
        let cell = EpochCell::new(epoch(0, &g));
        let pinned = cell.pin();
        assert_eq!(pinned.epoch, 0);
        assert_eq!(cell.epochs_published(), 0);

        let g2 = chain(8);
        cell.publish(epoch(1, &g2));
        assert_eq!(cell.epochs_published(), 1);
        // The old pin still sees the old snapshot...
        assert_eq!(pinned.epoch, 0);
        assert_eq!(pinned.graph.num_vertices(), 6);
        // ...while new pins see the new epoch.
        assert_eq!(cell.pin().epoch, 1);
        assert_eq!(cell.pin().graph.num_vertices(), 8);
    }

    #[test]
    fn retirement_is_the_refcount() {
        let g = chain(4);
        let cell = EpochCell::new(epoch(0, &g));
        let pinned = cell.pin();
        cell.publish(epoch(1, &g));
        // The only remaining owners of epoch 0 are `pinned` itself.
        assert_eq!(Arc::strong_count(&pinned), 1);
        let again = Arc::clone(&pinned);
        assert_eq!(Arc::strong_count(&again), 2);
    }

    #[test]
    fn warm_lookup_respects_sources() {
        let g = chain(5);
        let mut e = epoch(0, &g);
        e.warm.push(WarmEntry {
            alg: AlgSpec::Sssp,
            source: 2,
            states: Arc::new(vec![0.0; 5]),
        });
        e.warm.push(WarmEntry {
            alg: AlgSpec::Cc,
            source: 0,
            states: Arc::new(vec![0.0; 5]),
        });
        assert!(e.warm_for(AlgSpec::Sssp, 2).is_some());
        assert!(e.warm_for(AlgSpec::Sssp, 3).is_none(), "wrong source");
        assert!(
            e.warm_for(AlgSpec::Cc, 99).is_some(),
            "global ignores source"
        );
        assert!(e.warm_for(AlgSpec::Bfs, 2).is_none());
    }
}
