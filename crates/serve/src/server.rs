//! Thread-per-connection TCP front end over [`ServeCore`], hardened
//! for long-running serving: per-socket read/write deadlines (a stalled
//! or slow-dripping peer cannot pin a connection thread forever), a
//! connection cap with accept-time shedding (a typed
//! [`ErrorCode::Capacity`] reply, then close), and hook points for the
//! fault plan's reply drops/delays.

use crate::checkpoint::encode_checkpoint;
use crate::core::{QueryRequest, ServeCore, ServeError};
use crate::wire::{
    decode_request, encode_reply, read_frame, write_frame, ErrorCode, ProbeVerdict, QueryReply,
    Reply, Request,
};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Transport limits for [`serve_with`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Per-socket read deadline. A peer that opens a connection and
    /// drips bytes (or nothing) slower than this is disconnected —
    /// the classic slowloris hold-open no longer pins a thread.
    pub read_timeout: Option<Duration>,
    /// Per-socket write deadline: a peer that stops draining its
    /// receive window cannot block a reply forever.
    pub write_timeout: Option<Duration>,
    /// Maximum concurrently served connections. Arrivals beyond the
    /// cap are shed at accept time with an [`ErrorCode::Capacity`]
    /// reply instead of queueing unboundedly.
    pub max_connections: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            read_timeout: Some(Duration::from_secs(60)),
            write_timeout: Some(Duration::from_secs(10)),
            max_connections: 256,
        }
    }
}

/// A running TCP server. Dropping the handle (or calling
/// [`shutdown`](ServerHandle::shutdown)) stops the accept loop and the
/// core's mutator.
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    core: Arc<ServeCore>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

/// [`serve_with`] under [`ServerConfig::default`].
pub fn serve(addr: impl ToSocketAddrs, core: Arc<ServeCore>) -> std::io::Result<ServerHandle> {
    serve_with(addr, core, ServerConfig::default())
}

/// Binds `addr` and serves `core` until shutdown. Each connection gets
/// its own reader thread; queries on different connections execute
/// concurrently against their pinned epochs.
pub fn serve_with(
    addr: impl ToSocketAddrs,
    core: Arc<ServeCore>,
    config: ServerConfig,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    // Non-blocking accept + poll keeps shutdown simple and portable (no
    // self-connect tricks, no platform-specific listener close races).
    listener.set_nonblocking(true)?;
    let stop = Arc::new(AtomicBool::new(false));

    let accept_stop = Arc::clone(&stop);
    let accept_core = Arc::clone(&core);
    let active = Arc::new(AtomicUsize::new(0));
    let reply_seq = Arc::new(AtomicU64::new(0));
    let accept_thread = std::thread::Builder::new()
        .name("gograph-accept".into())
        .spawn(move || {
            while !accept_stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((mut stream, _)) => {
                        // Replies are small frames; without nodelay the
                        // kernel's Nagle + delayed-ACK pairing adds tens
                        // of ms to every request.
                        let _ = stream.set_nodelay(true);
                        let _ = stream.set_read_timeout(config.read_timeout);
                        let _ = stream.set_write_timeout(config.write_timeout);
                        let prev = active.fetch_add(1, Ordering::SeqCst);
                        if prev >= config.max_connections {
                            active.fetch_sub(1, Ordering::SeqCst);
                            accept_core
                                .stats()
                                .connections_shed
                                .fetch_add(1, Ordering::Relaxed);
                            let reply = Reply::Error {
                                code: ErrorCode::Capacity,
                                message: format!(
                                    "connection limit ({}) reached; retry later",
                                    config.max_connections
                                ),
                            };
                            let _ = write_frame(&mut stream, &encode_reply(&reply));
                            continue; // drops (closes) the stream
                        }
                        let core = Arc::clone(&accept_core);
                        let stop = Arc::clone(&accept_stop);
                        let guard = ConnGuard {
                            active: Arc::clone(&active),
                        };
                        let reply_seq = Arc::clone(&reply_seq);
                        let spawned = std::thread::Builder::new()
                            .name("gograph-conn".into())
                            .spawn(move || {
                                let _guard = guard;
                                handle_connection(stream, &core, &stop, &reply_seq);
                            });
                        if spawned.is_err() {
                            // Thread exhaustion: shed instead of dying.
                            accept_core
                                .stats()
                                .connections_shed
                                .fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
        })?;

    Ok(ServerHandle {
        addr,
        core,
        stop,
        accept_thread: Some(accept_thread),
    })
}

/// Decrements the live-connection count when its handler exits, however
/// it exits (return, error, panic).
struct ConnGuard {
    active: Arc<AtomicUsize>,
}

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.active.fetch_sub(1, Ordering::SeqCst);
    }
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The served core.
    pub fn core(&self) -> &Arc<ServeCore> {
        &self.core
    }

    /// True once a client's Shutdown request (or [`shutdown`]) stopped
    /// the accept loop.
    ///
    /// [`shutdown`]: ServerHandle::shutdown
    pub fn is_stopped(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }

    /// Stops accepting, joins the accept loop, and shuts the core's
    /// mutator down (draining queued update batches first).
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        self.core.shutdown();
    }

    /// Blocks until a client asks the server to shut down, then
    /// completes the shutdown. Used by the `gograph_serve` binary.
    pub fn wait(mut self) {
        while !self.stop.load(Ordering::Relaxed) {
            std::thread::sleep(Duration::from_millis(20));
        }
        self.shutdown();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn handle_connection(
    stream: TcpStream,
    core: &Arc<ServeCore>,
    stop: &Arc<AtomicBool>,
    reply_seq: &AtomicU64,
) {
    let mut reader = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut writer = stream;
    let faults = core.fault_plan().clone();
    loop {
        let frame = match read_frame(&mut reader) {
            Ok(Some(f)) => f,
            // EOF, a malformed/oversized frame, or a deadline expiring
            // all end the connection; the client reconnects.
            Ok(None) | Err(_) => return,
        };
        let (reply, is_shutdown) = match decode_request(frame) {
            Ok(request) => {
                let is_shutdown = matches!(request, Request::Shutdown);
                (respond(core, request), is_shutdown)
            }
            Err(e) => (
                Reply::Error {
                    code: ErrorCode::InvalidRequest,
                    message: e.to_string(),
                },
                false,
            ),
        };
        if !faults.is_none() {
            let k = reply_seq.fetch_add(1, Ordering::Relaxed);
            if faults.drop_reply(k) {
                // Sever without replying, as a crashed server would.
                return;
            }
            if let Some(d) = faults.delay_reply(k) {
                std::thread::sleep(d);
            }
        }
        if write_frame(&mut writer, &encode_reply(&reply)).is_err() {
            return;
        }
        if is_shutdown {
            stop.store(true, Ordering::Relaxed);
            return;
        }
        if stop.load(Ordering::Relaxed) {
            return;
        }
    }
}

/// Maps a core error to its wire code.
fn error_reply(e: ServeError) -> Reply {
    let code = match &e {
        ServeError::InvalidRequest(_) => ErrorCode::InvalidRequest,
        ServeError::Stale { .. } => ErrorCode::Stale,
        ServeError::Closed => ErrorCode::Closed,
        ServeError::NotPrimary => ErrorCode::NotPrimary,
        ServeError::Divergent { .. } => ErrorCode::Divergent,
        ServeError::Engine(_) | ServeError::Io(_) => ErrorCode::Generic,
    };
    Reply::Error {
        code,
        message: e.to_string(),
    }
}

fn respond(core: &Arc<ServeCore>, request: Request) -> Reply {
    match request {
        Request::Query {
            alg,
            mode,
            combine,
            max_epoch_lag,
            sources,
            targets,
        } => {
            let outcome = core.execute_query(QueryRequest {
                alg,
                mode,
                sources,
                combine,
                max_epoch_lag,
            });
            match outcome {
                Ok(o) => {
                    let values = targets
                        .iter()
                        .filter_map(|&v| o.states.get(v as usize).map(|&x| (v, x)))
                        .collect();
                    Reply::Query(QueryReply {
                        epoch: o.epoch.epoch,
                        alg: o.alg,
                        warm: o.warm,
                        converged: o.converged,
                        admitted: o.admitted as u32,
                        rounds: o.rounds as u64,
                        push_rounds: o.push_rounds as u64,
                        state_bytes: o.state_memory_bytes as u64,
                        runtime_micros: o.runtime.as_micros() as u64,
                        effective_sources: o.effective_sources.clone(),
                        values,
                    })
                }
                Err(e) => error_reply(e),
            }
        }
        Request::Updates(updates) => match core.enqueue_updates(updates) {
            Ok(accepted) => Reply::UpdateAck {
                accepted: accepted as u32,
                epochs_published: core.stats_snapshot().epochs_published,
            },
            Err(e) => error_reply(e),
        },
        Request::Subscribe {
            follower,
            after_seq,
            max_records,
        } => match core.replica_subscribe(follower, after_seq, max_records) {
            Ok((primary_seq, resync, records)) => Reply::WalSegment {
                primary_seq,
                resync,
                records,
            },
            Err(e) => error_reply(e),
        },
        Request::ReplicaAck {
            follower,
            seq,
            fingerprints,
        } => match core.replica_ack(follower, seq, &fingerprints) {
            Ok(report) => Reply::Probe {
                seq: report.seq,
                epoch: report.epoch,
                verdict: if report.known {
                    ProbeVerdict::Match
                } else {
                    ProbeVerdict::Unknown
                },
                fingerprints: report.fingerprints,
            },
            Err(e) => error_reply(e),
        },
        Request::Probe { at_seq } => {
            let report = core.probe(at_seq);
            Reply::Probe {
                seq: report.seq,
                epoch: report.epoch,
                verdict: if report.known {
                    ProbeVerdict::Report
                } else {
                    ProbeVerdict::Unknown
                },
                fingerprints: report.fingerprints,
            }
        }
        Request::FetchCheckpoint => match core.fetch_checkpoint() {
            Ok(ck) => Reply::Checkpoint(encode_checkpoint(&ck).to_vec()),
            Err(e) => error_reply(e),
        },
        Request::Promote => {
            core.promote();
            Reply::Stats(core.stats_snapshot())
        }
        Request::Stats | Request::Shutdown => Reply::Stats(core.stats_snapshot()),
    }
}
