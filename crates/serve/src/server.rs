//! Thread-per-connection TCP front end over [`ServeCore`].

use crate::core::{QueryRequest, ServeCore, ServeError};
use crate::wire::{
    decode_request, encode_reply, read_frame, write_frame, QueryReply, Reply, Request,
};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A running TCP server. Dropping the handle (or calling
/// [`shutdown`](ServerHandle::shutdown)) stops the accept loop and the
/// core's mutator.
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    core: Arc<ServeCore>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

/// Binds `addr` and serves `core` until shutdown. Each connection gets
/// its own reader thread; queries on different connections execute
/// concurrently against their pinned epochs.
pub fn serve(addr: impl ToSocketAddrs, core: Arc<ServeCore>) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    // Non-blocking accept + poll keeps shutdown simple and portable (no
    // self-connect tricks, no platform-specific listener close races).
    listener.set_nonblocking(true)?;
    let stop = Arc::new(AtomicBool::new(false));

    let accept_stop = Arc::clone(&stop);
    let accept_core = Arc::clone(&core);
    let accept_thread = std::thread::Builder::new()
        .name("gograph-accept".into())
        .spawn(move || {
            while !accept_stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        // Replies are small frames; without nodelay the
                        // kernel's Nagle + delayed-ACK pairing adds tens
                        // of ms to every request.
                        let _ = stream.set_nodelay(true);
                        let core = Arc::clone(&accept_core);
                        let stop = Arc::clone(&accept_stop);
                        let _ = std::thread::Builder::new()
                            .name("gograph-conn".into())
                            .spawn(move || handle_connection(stream, &core, &stop));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
        })?;

    Ok(ServerHandle {
        addr,
        core,
        stop,
        accept_thread: Some(accept_thread),
    })
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The served core.
    pub fn core(&self) -> &Arc<ServeCore> {
        &self.core
    }

    /// True once a client's Shutdown request (or [`shutdown`]) stopped
    /// the accept loop.
    ///
    /// [`shutdown`]: ServerHandle::shutdown
    pub fn is_stopped(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }

    /// Stops accepting, joins the accept loop, and shuts the core's
    /// mutator down (draining queued update batches first).
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        self.core.shutdown();
    }

    /// Blocks until a client asks the server to shut down, then
    /// completes the shutdown. Used by the `gograph_serve` binary.
    pub fn wait(mut self) {
        while !self.stop.load(Ordering::Relaxed) {
            std::thread::sleep(Duration::from_millis(20));
        }
        self.shutdown();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn handle_connection(stream: TcpStream, core: &Arc<ServeCore>, stop: &Arc<AtomicBool>) {
    let mut reader = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut writer = stream;
    loop {
        let frame = match read_frame(&mut reader) {
            Ok(Some(f)) => f,
            Ok(None) | Err(_) => return,
        };
        let reply = match decode_request(frame) {
            Ok(request) => {
                let is_shutdown = matches!(request, Request::Shutdown);
                let reply = respond(core, request);
                if is_shutdown {
                    let _ = write_frame(&mut writer, &encode_reply(&reply));
                    stop.store(true, Ordering::Relaxed);
                    return;
                }
                reply
            }
            Err(e) => Reply::Error(e.to_string()),
        };
        if write_frame(&mut writer, &encode_reply(&reply)).is_err() {
            return;
        }
        if stop.load(Ordering::Relaxed) {
            return;
        }
    }
}

fn respond(core: &Arc<ServeCore>, request: Request) -> Reply {
    match request {
        Request::Query {
            alg,
            mode,
            combine,
            sources,
            targets,
        } => {
            let outcome = core.execute_query(QueryRequest {
                alg,
                mode,
                sources,
                combine,
            });
            match outcome {
                Ok(o) => {
                    let values = targets
                        .iter()
                        .filter_map(|&v| o.states.get(v as usize).map(|&x| (v, x)))
                        .collect();
                    Reply::Query(QueryReply {
                        epoch: o.epoch.epoch,
                        alg: o.alg,
                        warm: o.warm,
                        converged: o.converged,
                        admitted: o.admitted as u32,
                        rounds: o.rounds as u64,
                        push_rounds: o.push_rounds as u64,
                        state_bytes: o.state_memory_bytes as u64,
                        runtime_micros: o.runtime.as_micros() as u64,
                        effective_sources: o.effective_sources.clone(),
                        values,
                    })
                }
                Err(e) => Reply::Error(e.to_string()),
            }
        }
        Request::Updates(updates) => match core.enqueue_updates(updates) {
            Ok(accepted) => Reply::UpdateAck {
                accepted: accepted as u32,
                epochs_published: core.stats_snapshot().epochs_published,
            },
            Err(ServeError::Closed) => Reply::Error(ServeError::Closed.to_string()),
            Err(e) => Reply::Error(e.to_string()),
        },
        Request::Stats | Request::Shutdown => Reply::Stats(core.stats_snapshot()),
    }
}
