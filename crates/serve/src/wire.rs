//! Length-prefixed binary wire protocol.
//!
//! Every frame is `u32-LE body length` followed by the body; the body's
//! first byte is the message type. All integers are little-endian,
//! encoded with the workspace's `bytes` buffers. The protocol is
//! strictly request/response: one reply per request, in order.
//!
//! Client → server:
//!
//! | type | message      | payload |
//! |------|--------------|---------|
//! | 1    | Query        | alg u8 · mode u8 · flags u8 (bit0 = combine, bit1 = max_epoch_lag present) · \[max_epoch_lag u64\] · n_sources u32 · sources u32× · n_targets u32 · targets u32× |
//! | 2    | UpdateBatch  | n u32 · n × (kind u8 (0 insert / 1 remove) · src u32 · dst u32 · weight f64 if insert) |
//! | 3    | Stats        | — |
//! | 4    | Shutdown     | — |
//! | 5    | Subscribe    | follower u64 · after_seq u64 · max_records u32 — follower asks for the WAL tail after `after_seq` (which doubles as its cumulative ack) |
//! | 6    | ReplicaAck   | follower u64 · seq u64 · n u32 · fingerprints u64× — follower reports its per-pipeline state fingerprints at applied watermark `seq` |
//! | 7    | Probe        | flags u8 (bit0 = at_seq present) · \[at_seq u64\] — ask for the node's state fingerprints (at a past watermark, or the latest) |
//! | 8    | FetchCheckpoint | — follower bootstrap: ship the effective checkpoint |
//! | 9    | Promote      | — flip a follower to primary (failover) |
//!
//! Server → client:
//!
//! | type | message      | payload |
//! |------|--------------|---------|
//! | 1    | QueryReply   | epoch u64 · alg u8 · flags u8 (bit0 warm, bit1 converged) · admitted u32 · rounds u64 · push_rounds u64 · state_bytes u64 · runtime_micros u64 · n_eff u32 · eff_sources u32× · n_values u32 · (vertex u32 · value f64)× |
//! | 2    | UpdateAck    | accepted u32 · epochs_published u64 |
//! | 3    | StatsReply   | the 35 [`StatsSnapshot`] fields as u64, in declaration order |
//! | 4    | WalSegment   | primary_seq u64 · flags u8 (bit0 = resync: the tail is gone, re-bootstrap from checkpoint) · n u32 · n × (seq u64 · update batch) |
//! | 5    | ProbeReply   | seq u64 · epoch u64 · verdict u8 ([`ProbeVerdict`]) · n u32 · fingerprints u64× |
//! | 6    | CheckpointReply | n u32 · n bytes (an encoded checkpoint, opaque at the wire layer) |
//! | 0xFF | Error        | code u8 ([`ErrorCode`]) · len u32 · utf-8 message |
//!
//! Decoding is strict: a body with trailing bytes after a well-formed
//! message is rejected, so no two distinct byte strings decode to the
//! same message and fuzzers can assert prefix-freeness.

use crate::core::StatsSnapshot;
use crate::spec::{AlgSpec, ModeSpec};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use gograph_graph::{EdgeUpdate, VertexId};
use std::io::{Read, Write};

/// Frames larger than this are refused — nothing in the protocol needs
/// them, and the cap keeps a corrupt length prefix from allocating GBs.
pub const MAX_FRAME_BYTES: u32 = 64 << 20;

/// A malformed frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire protocol error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

fn err<T>(msg: impl Into<String>) -> Result<T, WireError> {
    Err(WireError(msg.into()))
}

/// Machine-readable classification of a [`Reply::Error`], so clients
/// can distinguish retryable conditions (capacity shedding) from
/// permanent ones (a malformed request) without parsing the message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// Unclassified server-side failure.
    Generic = 0,
    /// The request itself was invalid (bad sources, empty batch, …).
    InvalidRequest = 1,
    /// The snapshot is staler than the query's `max_epoch_lag` bound.
    Stale = 2,
    /// The server is shutting down.
    Closed = 3,
    /// The connection cap was hit; retry later.
    Capacity = 4,
    /// The follower's state fingerprints diverge from the primary's;
    /// it must re-sync from checkpoint.
    Divergent = 5,
    /// A primary-only request hit a follower (or a replication request
    /// hit a node that cannot serve it).
    NotPrimary = 6,
}

impl ErrorCode {
    /// Decodes a wire byte.
    pub fn from_code(code: u8) -> Option<ErrorCode> {
        match code {
            0 => Some(ErrorCode::Generic),
            1 => Some(ErrorCode::InvalidRequest),
            2 => Some(ErrorCode::Stale),
            3 => Some(ErrorCode::Closed),
            4 => Some(ErrorCode::Capacity),
            5 => Some(ErrorCode::Divergent),
            6 => Some(ErrorCode::NotPrimary),
            _ => None,
        }
    }
}

/// How a [`Reply::Probe`] relates the reported fingerprints to the
/// request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ProbeVerdict {
    /// A plain report of the node's fingerprints at `seq` (no
    /// comparison was requested or possible).
    Report = 0,
    /// The caller's fingerprints matched this node's at `seq`.
    Match = 1,
    /// The requested watermark is no longer in the probe history; no
    /// comparison could be made.
    Unknown = 2,
}

impl ProbeVerdict {
    /// Decodes a wire byte.
    pub fn from_code(code: u8) -> Option<ProbeVerdict> {
        match code {
            0 => Some(ProbeVerdict::Report),
            1 => Some(ProbeVerdict::Match),
            2 => Some(ProbeVerdict::Unknown),
            _ => None,
        }
    }
}

/// A client → server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run an algorithm; reply with [`Reply::Query`].
    Query {
        /// Algorithm to run.
        alg: AlgSpec,
        /// Execution mode.
        mode: ModeSpec,
        /// May this query be admission-batched?
        combine: bool,
        /// Reject (with [`ErrorCode::Stale`]) instead of answering if
        /// the serving snapshot lags the newest enqueued batch by more
        /// than this many batches. `None` accepts any staleness.
        max_epoch_lag: Option<u64>,
        /// Source vertices.
        sources: Vec<VertexId>,
        /// Vertices whose final state the reply should include.
        targets: Vec<VertexId>,
    },
    /// Enqueue an update batch; reply with [`Reply::UpdateAck`].
    Updates(Vec<EdgeUpdate>),
    /// Request a [`Reply::Stats`] snapshot.
    Stats,
    /// Ask the server to shut down (acked with [`Reply::Stats`]).
    Shutdown,
    /// A follower asks the primary for the WAL tail after `after_seq`;
    /// reply with [`Reply::WalSegment`].
    Subscribe {
        /// Follower identity (stable across reconnects).
        follower: u64,
        /// The highest batch seq the follower has applied; records
        /// shipped start at `after_seq + 1`. Doubles as the cumulative
        /// ack that clamps WAL compaction.
        after_seq: u64,
        /// Cap on records per segment.
        max_records: u32,
    },
    /// A follower reports its per-pipeline state fingerprints at
    /// applied watermark `seq`; the primary compares them against its
    /// own probe history and replies [`Reply::Probe`] (verdict
    /// [`ProbeVerdict::Match`]/[`ProbeVerdict::Unknown`]) or
    /// [`ErrorCode::Divergent`].
    ReplicaAck {
        /// Follower identity.
        follower: u64,
        /// Applied watermark the fingerprints were taken at.
        seq: u64,
        /// Per-pipeline state fingerprints, in warm-spec order.
        fingerprints: Vec<u64>,
    },
    /// Ask for the node's state fingerprints (at a past watermark if
    /// `at_seq` is given, else the latest settled one); reply with
    /// [`Reply::Probe`].
    Probe {
        /// Watermark to report at; `None` means the latest.
        at_seq: Option<u64>,
    },
    /// Follower bootstrap: ship the primary's effective checkpoint;
    /// reply with [`Reply::Checkpoint`].
    FetchCheckpoint,
    /// Flip a follower to primary (failover); acked with
    /// [`Reply::Stats`].
    Promote,
}

/// A server → client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// Query result.
    Query(QueryReply),
    /// Update batch accepted.
    UpdateAck {
        /// Updates accepted into the queue.
        accepted: u32,
        /// Epochs published when the ack was sent.
        epochs_published: u64,
    },
    /// Counter snapshot.
    Stats(StatsSnapshot),
    /// A chunk of the primary's WAL tail (reply to
    /// [`Request::Subscribe`]).
    WalSegment {
        /// The primary's settled seq when the segment was cut — the
        /// follower measures its staleness lag against this.
        primary_seq: u64,
        /// The requested tail has been compacted away (or the follower
        /// was marked divergent/laggard); it must re-bootstrap from
        /// the checkpoint. `records` is empty when set.
        resync: bool,
        /// `(seq, updates)` records, contiguous from `after_seq + 1`.
        records: Vec<(u64, Vec<EdgeUpdate>)>,
    },
    /// State fingerprints at a seq watermark (reply to
    /// [`Request::Probe`] and [`Request::ReplicaAck`]).
    Probe {
        /// Watermark the fingerprints were taken at.
        seq: u64,
        /// Epoch published at that watermark.
        epoch: u64,
        /// How the fingerprints relate to the request.
        verdict: ProbeVerdict,
        /// Per-pipeline state fingerprints, in warm-spec order.
        fingerprints: Vec<u64>,
    },
    /// An encoded checkpoint (reply to [`Request::FetchCheckpoint`]);
    /// opaque bytes at the wire layer, decoded by the checkpoint codec.
    Checkpoint(Vec<u8>),
    /// The request failed.
    Error {
        /// Machine-readable failure class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

/// The payload of [`Reply::Query`].
#[derive(Debug, Clone, PartialEq)]
pub struct QueryReply {
    /// Epoch the query executed against.
    pub epoch: u64,
    /// Algorithm that ran.
    pub alg: AlgSpec,
    /// Whether the run warm-started from epoch warm state.
    pub warm: bool,
    /// Whether the run converged.
    pub converged: bool,
    /// Requests served by this execution (>1 ⇒ coalesced).
    pub admitted: u32,
    /// Rounds executed.
    pub rounds: u64,
    /// Push-direction rounds.
    pub push_rounds: u64,
    /// Engine state memory for the run.
    pub state_bytes: u64,
    /// Engine-side runtime in microseconds.
    pub runtime_micros: u64,
    /// The effective (possibly admission-widened) source set.
    pub effective_sources: Vec<VertexId>,
    /// `(vertex, final state)` for each requested target.
    pub values: Vec<(VertexId, f64)>,
}

const REQ_QUERY: u8 = 1;
const REQ_UPDATES: u8 = 2;
const REQ_STATS: u8 = 3;
const REQ_SHUTDOWN: u8 = 4;
const REQ_SUBSCRIBE: u8 = 5;
const REQ_REPLICA_ACK: u8 = 6;
const REQ_PROBE: u8 = 7;
const REQ_FETCH_CHECKPOINT: u8 = 8;
const REQ_PROMOTE: u8 = 9;

const REP_QUERY: u8 = 1;
const REP_UPDATE_ACK: u8 = 2;
const REP_STATS: u8 = 3;
const REP_WAL_SEGMENT: u8 = 4;
const REP_PROBE: u8 = 5;
const REP_CHECKPOINT: u8 = 6;
const REP_ERROR: u8 = 0xFF;

fn put_vertices(buf: &mut BytesMut, vs: &[VertexId]) {
    buf.put_u32_le(vs.len() as u32);
    for &v in vs {
        buf.put_u32_le(v);
    }
}

fn get_vertices(buf: &mut Bytes) -> Result<Vec<VertexId>, WireError> {
    if buf.remaining() < 4 {
        return err("truncated vertex list");
    }
    let n = buf.get_u32_le() as usize;
    if buf.remaining() < n * 4 {
        return err("vertex list length exceeds frame");
    }
    Ok((0..n).map(|_| buf.get_u32_le()).collect())
}

/// Encodes an update batch: `n u32 · n × (kind u8 · src u32 · dst u32 ·
/// weight f64 if insert)`. Shared by the wire protocol and the
/// write-ahead log so a WAL record replays through the same codec a
/// client frame decodes through.
pub(crate) fn put_updates(buf: &mut BytesMut, updates: &[EdgeUpdate]) {
    buf.put_u32_le(updates.len() as u32);
    for u in updates {
        match *u {
            EdgeUpdate::Insert { src, dst, weight } => {
                buf.put_slice(&[0]);
                buf.put_u32_le(src);
                buf.put_u32_le(dst);
                buf.put_f64_le(weight);
            }
            EdgeUpdate::Remove { src, dst } => {
                buf.put_slice(&[1]);
                buf.put_u32_le(src);
                buf.put_u32_le(dst);
            }
        }
    }
}

/// Decodes an update batch (see [`put_updates`]). Allocation is bounded
/// by the actual bytes present, not the declared count.
pub(crate) fn get_updates(buf: &mut Bytes) -> Result<Vec<EdgeUpdate>, WireError> {
    if buf.remaining() < 4 {
        return err("truncated update batch");
    }
    let n = buf.get_u32_le() as usize;
    let mut updates = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        if buf.remaining() < 9 {
            return err("truncated update entry");
        }
        let mut kind = [0u8; 1];
        buf.copy_to_slice(&mut kind);
        let src = buf.get_u32_le();
        let dst = buf.get_u32_le();
        match kind[0] {
            0 => {
                if buf.remaining() < 8 {
                    return err("truncated insert weight");
                }
                updates.push(EdgeUpdate::insert_weighted(src, dst, buf.get_f64_le()));
            }
            1 => updates.push(EdgeUpdate::remove(src, dst)),
            k => return err(format!("unknown update kind {k}")),
        }
    }
    Ok(updates)
}

fn put_fingerprints(buf: &mut BytesMut, fps: &[u64]) {
    buf.put_u32_le(fps.len() as u32);
    for &fp in fps {
        buf.put_u64_le(fp);
    }
}

fn get_fingerprints(buf: &mut Bytes) -> Result<Vec<u64>, WireError> {
    if buf.remaining() < 4 {
        return err("truncated fingerprint list");
    }
    let n = buf.get_u32_le() as usize;
    if buf.remaining() < n * 8 {
        return err("fingerprint list length exceeds frame");
    }
    Ok((0..n).map(|_| buf.get_u64_le()).collect())
}

fn expect_consumed<T>(value: T, buf: &Bytes) -> Result<T, WireError> {
    if buf.has_remaining() {
        err(format!("{} trailing bytes after message", buf.remaining()))
    } else {
        Ok(value)
    }
}

/// Encodes a request body (without the length prefix).
pub fn encode_request(req: &Request) -> Bytes {
    let mut buf = BytesMut::with_capacity(64);
    match req {
        Request::Query {
            alg,
            mode,
            combine,
            max_epoch_lag,
            sources,
            targets,
        } => {
            let flags = u8::from(*combine) | (u8::from(max_epoch_lag.is_some()) << 1);
            buf.put_slice(&[REQ_QUERY, alg.code(), mode.code(), flags]);
            if let Some(lag) = max_epoch_lag {
                buf.put_u64_le(*lag);
            }
            put_vertices(&mut buf, sources);
            put_vertices(&mut buf, targets);
        }
        Request::Updates(updates) => {
            buf.put_slice(&[REQ_UPDATES]);
            put_updates(&mut buf, updates);
        }
        Request::Stats => buf.put_slice(&[REQ_STATS]),
        Request::Shutdown => buf.put_slice(&[REQ_SHUTDOWN]),
        Request::Subscribe {
            follower,
            after_seq,
            max_records,
        } => {
            buf.put_slice(&[REQ_SUBSCRIBE]);
            buf.put_u64_le(*follower);
            buf.put_u64_le(*after_seq);
            buf.put_u32_le(*max_records);
        }
        Request::ReplicaAck {
            follower,
            seq,
            fingerprints,
        } => {
            buf.put_slice(&[REQ_REPLICA_ACK]);
            buf.put_u64_le(*follower);
            buf.put_u64_le(*seq);
            put_fingerprints(&mut buf, fingerprints);
        }
        Request::Probe { at_seq } => {
            buf.put_slice(&[REQ_PROBE, u8::from(at_seq.is_some())]);
            if let Some(seq) = at_seq {
                buf.put_u64_le(*seq);
            }
        }
        Request::FetchCheckpoint => buf.put_slice(&[REQ_FETCH_CHECKPOINT]),
        Request::Promote => buf.put_slice(&[REQ_PROMOTE]),
    }
    buf.freeze()
}

/// Decodes a request body.
pub fn decode_request(mut buf: Bytes) -> Result<Request, WireError> {
    if buf.remaining() < 1 {
        return err("empty request frame");
    }
    let mut tag = [0u8; 1];
    buf.copy_to_slice(&mut tag);
    match tag[0] {
        REQ_QUERY => {
            if buf.remaining() < 3 {
                return err("truncated query header");
            }
            let mut hdr = [0u8; 3];
            buf.copy_to_slice(&mut hdr);
            let alg = AlgSpec::from_code(hdr[0])
                .ok_or_else(|| WireError(format!("unknown algorithm code {}", hdr[0])))?;
            let mode = ModeSpec::from_code(hdr[1])
                .ok_or_else(|| WireError(format!("unknown mode code {}", hdr[1])))?;
            if hdr[2] & !0b11 != 0 {
                return err(format!("unknown query flags {:#04x}", hdr[2]));
            }
            let combine = hdr[2] & 1 != 0;
            let max_epoch_lag = if hdr[2] & 2 != 0 {
                if buf.remaining() < 8 {
                    return err("truncated max_epoch_lag");
                }
                Some(buf.get_u64_le())
            } else {
                None
            };
            if buf.remaining() < 4 {
                return err("truncated source list");
            }
            let sources = get_vertices(&mut buf)?;
            if buf.remaining() < 4 {
                return err("truncated target list");
            }
            let targets = get_vertices(&mut buf)?;
            expect_consumed(
                Request::Query {
                    alg,
                    mode,
                    combine,
                    max_epoch_lag,
                    sources,
                    targets,
                },
                &buf,
            )
        }
        REQ_UPDATES => {
            let updates = get_updates(&mut buf)?;
            expect_consumed(Request::Updates(updates), &buf)
        }
        REQ_STATS => expect_consumed(Request::Stats, &buf),
        REQ_SHUTDOWN => expect_consumed(Request::Shutdown, &buf),
        REQ_SUBSCRIBE => {
            if buf.remaining() < 20 {
                return err("truncated subscribe");
            }
            let req = Request::Subscribe {
                follower: buf.get_u64_le(),
                after_seq: buf.get_u64_le(),
                max_records: buf.get_u32_le(),
            };
            expect_consumed(req, &buf)
        }
        REQ_REPLICA_ACK => {
            if buf.remaining() < 16 {
                return err("truncated replica ack");
            }
            let follower = buf.get_u64_le();
            let seq = buf.get_u64_le();
            let fingerprints = get_fingerprints(&mut buf)?;
            expect_consumed(
                Request::ReplicaAck {
                    follower,
                    seq,
                    fingerprints,
                },
                &buf,
            )
        }
        REQ_PROBE => {
            if buf.remaining() < 1 {
                return err("truncated probe");
            }
            let mut flags = [0u8; 1];
            buf.copy_to_slice(&mut flags);
            if flags[0] & !0b1 != 0 {
                return err(format!("unknown probe flags {:#04x}", flags[0]));
            }
            let at_seq = if flags[0] & 1 != 0 {
                if buf.remaining() < 8 {
                    return err("truncated probe at_seq");
                }
                Some(buf.get_u64_le())
            } else {
                None
            };
            expect_consumed(Request::Probe { at_seq }, &buf)
        }
        REQ_FETCH_CHECKPOINT => expect_consumed(Request::FetchCheckpoint, &buf),
        REQ_PROMOTE => expect_consumed(Request::Promote, &buf),
        t => err(format!("unknown request type {t}")),
    }
}

/// Encodes a reply body (without the length prefix).
pub fn encode_reply(reply: &Reply) -> Bytes {
    let mut buf = BytesMut::with_capacity(64);
    match reply {
        Reply::Query(q) => {
            buf.put_slice(&[REP_QUERY]);
            buf.put_u64_le(q.epoch);
            let flags = u8::from(q.warm) | (u8::from(q.converged) << 1);
            buf.put_slice(&[q.alg.code(), flags]);
            buf.put_u32_le(q.admitted);
            buf.put_u64_le(q.rounds);
            buf.put_u64_le(q.push_rounds);
            buf.put_u64_le(q.state_bytes);
            buf.put_u64_le(q.runtime_micros);
            put_vertices(&mut buf, &q.effective_sources);
            buf.put_u32_le(q.values.len() as u32);
            for &(v, x) in &q.values {
                buf.put_u32_le(v);
                buf.put_f64_le(x);
            }
        }
        Reply::UpdateAck {
            accepted,
            epochs_published,
        } => {
            buf.put_slice(&[REP_UPDATE_ACK]);
            buf.put_u32_le(*accepted);
            buf.put_u64_le(*epochs_published);
        }
        Reply::Stats(s) => {
            buf.put_slice(&[REP_STATS]);
            for v in [
                s.epoch,
                s.epochs_published,
                s.num_vertices,
                s.num_edges,
                s.num_partitions,
                s.queries,
                s.coalesced,
                s.warm_hits,
                s.cold_runs,
                s.query_rounds,
                s.query_push_rounds,
                s.last_state_bytes,
                s.batches_enqueued,
                s.batches_applied,
                s.updates_applied,
                s.mutator_rounds,
                s.mutator_errors,
                s.mutator_restarts,
                s.poisoned_slots,
                s.degraded,
                s.wal_appends,
                s.wal_bytes,
                s.wal_replayed,
                s.checkpoints_written,
                s.connections_shed,
                s.repl_segments_shipped,
                s.repl_records_shipped,
                s.repl_acks,
                s.repl_follower_lag,
                s.repl_divergences,
                s.repl_resyncs,
                s.repl_last_seq,
                s.repl_primary_seq,
                s.delta_checkpoints_written,
                s.checkpoint_bytes_written,
            ] {
                buf.put_u64_le(v);
            }
        }
        Reply::WalSegment {
            primary_seq,
            resync,
            records,
        } => {
            buf.put_slice(&[REP_WAL_SEGMENT]);
            buf.put_u64_le(*primary_seq);
            buf.put_slice(&[u8::from(*resync)]);
            buf.put_u32_le(records.len() as u32);
            for (seq, updates) in records {
                buf.put_u64_le(*seq);
                put_updates(&mut buf, updates);
            }
        }
        Reply::Probe {
            seq,
            epoch,
            verdict,
            fingerprints,
        } => {
            buf.put_slice(&[REP_PROBE]);
            buf.put_u64_le(*seq);
            buf.put_u64_le(*epoch);
            buf.put_slice(&[*verdict as u8]);
            put_fingerprints(&mut buf, fingerprints);
        }
        Reply::Checkpoint(bytes) => {
            buf.put_slice(&[REP_CHECKPOINT]);
            buf.put_u32_le(bytes.len() as u32);
            buf.put_slice(bytes);
        }
        Reply::Error { code, message } => {
            buf.put_slice(&[REP_ERROR, *code as u8]);
            buf.put_u32_le(message.len() as u32);
            buf.put_slice(message.as_bytes());
        }
    }
    buf.freeze()
}

/// Decodes a reply body.
pub fn decode_reply(mut buf: Bytes) -> Result<Reply, WireError> {
    if buf.remaining() < 1 {
        return err("empty reply frame");
    }
    let mut tag = [0u8; 1];
    buf.copy_to_slice(&mut tag);
    match tag[0] {
        REP_QUERY => {
            if buf.remaining() < 8 + 2 + 4 + 4 * 8 {
                return err("truncated query reply");
            }
            let epoch = buf.get_u64_le();
            let mut hdr = [0u8; 2];
            buf.copy_to_slice(&mut hdr);
            let alg = AlgSpec::from_code(hdr[0])
                .ok_or_else(|| WireError(format!("unknown algorithm code {}", hdr[0])))?;
            let warm = hdr[1] & 1 != 0;
            let converged = hdr[1] & 2 != 0;
            let admitted = buf.get_u32_le();
            let rounds = buf.get_u64_le();
            let push_rounds = buf.get_u64_le();
            let state_bytes = buf.get_u64_le();
            let runtime_micros = buf.get_u64_le();
            let effective_sources = get_vertices(&mut buf)?;
            if buf.remaining() < 4 {
                return err("truncated value list");
            }
            let n = buf.get_u32_le() as usize;
            if buf.remaining() < n * 12 {
                return err("value list length exceeds frame");
            }
            let values = (0..n)
                .map(|_| (buf.get_u32_le(), buf.get_f64_le()))
                .collect();
            expect_consumed(
                Reply::Query(QueryReply {
                    epoch,
                    alg,
                    warm,
                    converged,
                    admitted,
                    rounds,
                    push_rounds,
                    state_bytes,
                    runtime_micros,
                    effective_sources,
                    values,
                }),
                &buf,
            )
        }
        REP_UPDATE_ACK => {
            if buf.remaining() < 12 {
                return err("truncated update ack");
            }
            let reply = Reply::UpdateAck {
                accepted: buf.get_u32_le(),
                epochs_published: buf.get_u64_le(),
            };
            expect_consumed(reply, &buf)
        }
        REP_STATS => {
            if buf.remaining() < 35 * 8 {
                return err("truncated stats reply");
            }
            let mut f = [0u64; 35];
            for v in f.iter_mut() {
                *v = buf.get_u64_le();
            }
            expect_consumed(
                Reply::Stats(StatsSnapshot {
                    epoch: f[0],
                    epochs_published: f[1],
                    num_vertices: f[2],
                    num_edges: f[3],
                    num_partitions: f[4],
                    queries: f[5],
                    coalesced: f[6],
                    warm_hits: f[7],
                    cold_runs: f[8],
                    query_rounds: f[9],
                    query_push_rounds: f[10],
                    last_state_bytes: f[11],
                    batches_enqueued: f[12],
                    batches_applied: f[13],
                    updates_applied: f[14],
                    mutator_rounds: f[15],
                    mutator_errors: f[16],
                    mutator_restarts: f[17],
                    poisoned_slots: f[18],
                    degraded: f[19],
                    wal_appends: f[20],
                    wal_bytes: f[21],
                    wal_replayed: f[22],
                    checkpoints_written: f[23],
                    connections_shed: f[24],
                    repl_segments_shipped: f[25],
                    repl_records_shipped: f[26],
                    repl_acks: f[27],
                    repl_follower_lag: f[28],
                    repl_divergences: f[29],
                    repl_resyncs: f[30],
                    repl_last_seq: f[31],
                    repl_primary_seq: f[32],
                    delta_checkpoints_written: f[33],
                    checkpoint_bytes_written: f[34],
                }),
                &buf,
            )
        }
        REP_WAL_SEGMENT => {
            if buf.remaining() < 13 {
                return err("truncated wal segment");
            }
            let primary_seq = buf.get_u64_le();
            let mut flags = [0u8; 1];
            buf.copy_to_slice(&mut flags);
            if flags[0] & !0b1 != 0 {
                return err(format!("unknown wal segment flags {:#04x}", flags[0]));
            }
            let resync = flags[0] & 1 != 0;
            if buf.remaining() < 4 {
                return err("truncated wal segment record count");
            }
            let n = buf.get_u32_le() as usize;
            let mut records = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                if buf.remaining() < 8 {
                    return err("truncated wal segment record seq");
                }
                let seq = buf.get_u64_le();
                let updates = get_updates(&mut buf)?;
                records.push((seq, updates));
            }
            expect_consumed(
                Reply::WalSegment {
                    primary_seq,
                    resync,
                    records,
                },
                &buf,
            )
        }
        REP_PROBE => {
            if buf.remaining() < 17 {
                return err("truncated probe reply");
            }
            let seq = buf.get_u64_le();
            let epoch = buf.get_u64_le();
            let mut code = [0u8; 1];
            buf.copy_to_slice(&mut code);
            let verdict = ProbeVerdict::from_code(code[0])
                .ok_or_else(|| WireError(format!("unknown probe verdict {}", code[0])))?;
            let fingerprints = get_fingerprints(&mut buf)?;
            expect_consumed(
                Reply::Probe {
                    seq,
                    epoch,
                    verdict,
                    fingerprints,
                },
                &buf,
            )
        }
        REP_CHECKPOINT => {
            if buf.remaining() < 4 {
                return err("truncated checkpoint reply");
            }
            let n = buf.get_u32_le() as usize;
            if buf.remaining() < n {
                return err("checkpoint length exceeds frame");
            }
            let mut bytes = vec![0u8; n];
            buf.copy_to_slice(&mut bytes);
            expect_consumed(Reply::Checkpoint(bytes), &buf)
        }
        REP_ERROR => {
            if buf.remaining() < 5 {
                return err("truncated error reply");
            }
            let mut code_byte = [0u8; 1];
            buf.copy_to_slice(&mut code_byte);
            let code = ErrorCode::from_code(code_byte[0])
                .ok_or_else(|| WireError(format!("unknown error code {}", code_byte[0])))?;
            let n = buf.get_u32_le() as usize;
            if buf.remaining() < n {
                return err("error message length exceeds frame");
            }
            let mut raw = vec![0u8; n];
            buf.copy_to_slice(&mut raw);
            match String::from_utf8(raw) {
                Ok(message) => expect_consumed(Reply::Error { code, message }, &buf),
                Err(_) => err("error message is not utf-8"),
            }
        }
        t => err(format!("unknown reply type {t}")),
    }
}

/// Writes one frame: length prefix + body.
pub fn write_frame(w: &mut impl Write, body: &Bytes) -> std::io::Result<()> {
    let len = body.len() as u32;
    debug_assert!(len <= MAX_FRAME_BYTES);
    w.write_all(&len.to_le_bytes())?;
    w.write_all(body.as_ref())?;
    w.flush()
}

/// Reads one frame body. `Ok(None)` means the peer closed the
/// connection cleanly (EOF at a frame boundary).
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<Bytes>> {
    let mut len_bytes = [0u8; 4];
    match r.read_exact(&mut len_bytes) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"),
        ));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    Ok(Some(Bytes::from(body)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_roundtrip() {
        let reqs = [
            Request::Query {
                alg: AlgSpec::Sssp,
                mode: ModeSpec::Worklist,
                combine: true,
                max_epoch_lag: None,
                sources: vec![3, 9],
                targets: vec![0, 1, 2],
            },
            Request::Query {
                alg: AlgSpec::Cc,
                mode: ModeSpec::Async,
                combine: false,
                max_epoch_lag: Some(2),
                sources: vec![],
                targets: vec![7],
            },
            Request::Updates(vec![
                EdgeUpdate::insert_weighted(1, 2, 0.5),
                EdgeUpdate::remove(3, 4),
            ]),
            Request::Stats,
            Request::Shutdown,
            Request::Subscribe {
                follower: 0xfeed,
                after_seq: 42,
                max_records: 128,
            },
            Request::ReplicaAck {
                follower: 0xfeed,
                seq: 42,
                fingerprints: vec![1, u64::MAX, 0],
            },
            Request::Probe { at_seq: None },
            Request::Probe { at_seq: Some(7) },
            Request::FetchCheckpoint,
            Request::Promote,
        ];
        for req in reqs {
            let decoded = decode_request(encode_request(&req)).unwrap();
            assert_eq!(decoded, req);
        }
    }

    #[test]
    fn replies_roundtrip() {
        let replies = [
            Reply::Query(QueryReply {
                epoch: 7,
                alg: AlgSpec::PageRank,
                warm: true,
                converged: true,
                admitted: 3,
                rounds: 12,
                push_rounds: 4,
                state_bytes: 4096,
                runtime_micros: 1234,
                effective_sources: vec![5, 6],
                values: vec![(0, 1.5), (9, -2.0)],
            }),
            Reply::UpdateAck {
                accepted: 8,
                epochs_published: 3,
            },
            Reply::Stats(StatsSnapshot {
                epoch: 2,
                epochs_published: 2,
                num_vertices: 100,
                num_edges: 500,
                num_partitions: 4,
                queries: 42,
                coalesced: 7,
                warm_hits: 30,
                cold_runs: 5,
                query_rounds: 90,
                query_push_rounds: 11,
                last_state_bytes: 800,
                batches_enqueued: 3,
                batches_applied: 2,
                updates_applied: 64,
                mutator_rounds: 9,
                mutator_errors: 0,
                mutator_restarts: 1,
                poisoned_slots: 2,
                degraded: 0,
                wal_appends: 12,
                wal_bytes: 4096,
                wal_replayed: 3,
                checkpoints_written: 2,
                connections_shed: 1,
                repl_segments_shipped: 5,
                repl_records_shipped: 17,
                repl_acks: 5,
                repl_follower_lag: 1,
                repl_divergences: 0,
                repl_resyncs: 1,
                repl_last_seq: 40,
                repl_primary_seq: 41,
                delta_checkpoints_written: 3,
                checkpoint_bytes_written: 9999,
            }),
            Reply::WalSegment {
                primary_seq: 9,
                resync: false,
                records: vec![
                    (8, vec![EdgeUpdate::insert_weighted(1, 2, 0.5)]),
                    (9, vec![EdgeUpdate::remove(3, 4)]),
                ],
            },
            Reply::WalSegment {
                primary_seq: 3,
                resync: true,
                records: vec![],
            },
            Reply::Probe {
                seq: 12,
                epoch: 11,
                verdict: ProbeVerdict::Match,
                fingerprints: vec![0xdead_beef, 7],
            },
            Reply::Checkpoint(vec![1, 2, 3, 255, 0]),
            Reply::Error {
                code: ErrorCode::Divergent,
                message: "nope".to_string(),
            },
        ];
        for reply in replies {
            let decoded = decode_reply(encode_reply(&reply)).unwrap();
            assert_eq!(decoded, reply);
        }
    }

    #[test]
    fn malformed_frames_are_errors_not_panics() {
        assert!(decode_request(Bytes::from(vec![])).is_err());
        assert!(decode_request(Bytes::from(vec![99])).is_err());
        // Query with an absurd source count but no payload.
        let mut b = BytesMut::with_capacity(16);
        b.put_slice(&[1, 0, 0, 0]);
        b.put_u32_le(u32::MAX);
        assert!(decode_request(b.freeze()).is_err());
        assert!(decode_reply(Bytes::from(vec![0x42])).is_err());
        // Unknown query flag bits and unknown error codes are refused.
        let mut b = BytesMut::new();
        b.put_slice(&[1, 0, 0, 0b100]);
        b.put_u32_le(0);
        b.put_u32_le(0);
        assert!(decode_request(b.freeze()).is_err());
        let mut b = BytesMut::new();
        b.put_slice(&[0xFF, 9]);
        b.put_u32_le(0);
        assert!(decode_reply(b.freeze()).is_err());
        // Unknown probe flags / wal-segment flags / probe verdicts.
        assert!(decode_request(Bytes::from(vec![7, 0b10])).is_err());
        let mut b = BytesMut::new();
        b.put_slice(&[4]);
        b.put_u64_le(1);
        b.put_slice(&[0b10]);
        b.put_u32_le(0);
        assert!(decode_reply(b.freeze()).is_err());
        let mut b = BytesMut::new();
        b.put_slice(&[5]);
        b.put_u64_le(1);
        b.put_u64_le(1);
        b.put_slice(&[3]);
        b.put_u32_le(0);
        assert!(decode_reply(b.freeze()).is_err());
        // Absurd declared counts with no payload must not over-allocate.
        let mut b = BytesMut::new();
        b.put_slice(&[6]);
        b.put_u64_le(0);
        b.put_u64_le(0);
        b.put_u32_le(u32::MAX);
        assert!(decode_request(b.freeze()).is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        for req in [
            Request::Stats,
            Request::Updates(vec![EdgeUpdate::insert(0, 1)]),
        ] {
            let mut body = BytesMut::from(encode_request(&req).as_ref());
            body.put_u8(0);
            assert!(decode_request(body.freeze()).is_err());
        }
        let mut body = BytesMut::from(
            encode_reply(&Reply::UpdateAck {
                accepted: 1,
                epochs_published: 2,
            })
            .as_ref(),
        );
        body.put_u8(0);
        assert!(decode_reply(body.freeze()).is_err());
    }

    #[test]
    fn frames_roundtrip_over_a_byte_stream() {
        let body = encode_request(&Request::Stats);
        let mut stream = Vec::new();
        write_frame(&mut stream, &body).unwrap();
        write_frame(&mut stream, &body).unwrap();
        let mut cursor = std::io::Cursor::new(stream);
        let one = read_frame(&mut cursor).unwrap().unwrap();
        let two = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(decode_request(one).unwrap(), Request::Stats);
        assert_eq!(decode_request(two).unwrap(), Request::Stats);
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");
    }
}
