//! Property tests of the engine family: fixpoint agreement across all
//! execution strategies on arbitrary graphs, monotone trajectories, and
//! round-count relationships — all through the unified [`Pipeline`] API.

use gograph_engine::{
    Bfs, DeltaSchedule, DeltaSssp, IterativeAlgorithm, Mode, PageRank, Pipeline, RunStats, Sssp,
};
use gograph_graph::{CsrGraph, GraphBuilder, Permutation};
use proptest::prelude::*;

fn arb_weighted_graph() -> impl Strategy<Value = CsrGraph> {
    (2usize..50).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32, 0.5f64..5.0), 0..n * 3).prop_map(
            move |es| {
                let mut b = GraphBuilder::with_capacity(n, es.len());
                b.reserve_vertices(n);
                for (u, v, w) in es {
                    if u != v {
                        b.add_edge(u, v, w);
                    }
                }
                b.build()
            },
        )
    })
}

fn exec(g: &CsrGraph, alg: &dyn IterativeAlgorithm, mode: Mode, order: &Permutation) -> RunStats {
    Pipeline::on(g)
        .algorithm_ref(alg)
        .mode(mode)
        .order_ref(order)
        .execute()
        .expect("valid pipeline")
        .stats
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sssp_fixpoint_agrees_across_all_engines(g in arb_weighted_graph()) {
        let n = g.num_vertices();
        let id = Permutation::identity(n);
        let alg = Sssp::new(0);
        let sync = exec(&g, &alg, Mode::Sync, &id);
        prop_assume!(sync.converged);
        let asy = exec(&g, &alg, Mode::Async, &id);
        let par = exec(&g, &alg, Mode::Parallel(4), &id);
        let wl = exec(&g, &alg, Mode::Worklist, &id);
        let del = Pipeline::on(&g)
            .delta_algorithm(DeltaSssp { source: 0 })
            .mode(Mode::Delta(DeltaSchedule::RoundRobin))
            .execute()
            .unwrap()
            .stats;
        prop_assert_eq!(&sync.final_states, &asy.final_states);
        prop_assert_eq!(&sync.final_states, &par.final_states);
        prop_assert_eq!(&sync.final_states, &wl.final_states);
        prop_assert_eq!(&sync.final_states, &del.final_states);
    }

    #[test]
    fn async_rounds_le_sync_rounds_for_bfs(g in arb_weighted_graph()) {
        let id = Permutation::identity(g.num_vertices());
        let alg = Bfs::new(0);
        let s = exec(&g, &alg, Mode::Sync, &id);
        let a = exec(&g, &alg, Mode::Async, &id);
        prop_assert!(a.rounds <= s.rounds);
    }

    #[test]
    fn pagerank_trajectory_is_monotone_per_round(g in arb_weighted_graph()) {
        let stats = Pipeline::on(&g)
            .algorithm(PageRank::default())
            .trace(true)
            .execute()
            .unwrap()
            .stats;
        // Increasing algorithm: the finite state sum never decreases.
        for w in stats.trace.windows(2) {
            prop_assert!(w[1].finite_sum >= w[0].finite_sum - 1e-12);
        }
    }

    #[test]
    fn sssp_infinite_count_never_increases(g in arb_weighted_graph()) {
        let stats = Pipeline::on(&g)
            .algorithm(Sssp::new(0))
            .trace(true)
            .execute()
            .unwrap()
            .stats;
        for w in stats.trace.windows(2) {
            prop_assert!(w[1].infinite_count <= w[0].infinite_count);
        }
    }

    #[test]
    fn reversal_of_order_preserves_fixpoint_changes_rounds(g in arb_weighted_graph()) {
        let n = g.num_vertices();
        let fwd = Permutation::identity(n);
        let rev = fwd.reversed();
        let alg = Sssp::new(0);
        let a = exec(&g, &alg, Mode::Async, &fwd);
        let b = exec(&g, &alg, Mode::Async, &rev);
        prop_assert_eq!(a.final_states, b.final_states);
        // (rounds may differ — that is the whole point of the paper)
    }

    #[test]
    fn worklist_never_does_more_evaluations_than_full_scan(g in arb_weighted_graph()) {
        let id = Permutation::identity(g.num_vertices());
        let alg = Bfs::new(0);
        let full = exec(&g, &alg, Mode::Async, &id);
        let wl = exec(&g, &alg, Mode::Worklist, &id);
        prop_assert_eq!(&full.final_states, &wl.final_states);
        let evals = wl.evaluations.expect("worklist reports evaluations");
        prop_assert!(evals <= (full.rounds + 1) * g.num_vertices());
    }
}
