//! Property tests of the engine family: fixpoint agreement across all
//! execution strategies on arbitrary graphs, monotone trajectories, and
//! round-count relationships.

use gograph_engine::{
    run, run_delta_round_robin, Bfs, DeltaSssp, Mode, PageRank, RunConfig, Sssp,
};
use gograph_graph::{CsrGraph, GraphBuilder, Permutation};
use proptest::prelude::*;

fn arb_weighted_graph() -> impl Strategy<Value = CsrGraph> {
    (2usize..50).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32, 0.5f64..5.0), 0..n * 3).prop_map(
            move |es| {
                let mut b = GraphBuilder::with_capacity(n, es.len());
                b.reserve_vertices(n);
                for (u, v, w) in es {
                    if u != v {
                        b.add_edge(u, v, w);
                    }
                }
                b.build()
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sssp_fixpoint_agrees_across_all_engines(g in arb_weighted_graph()) {
        let cfg = RunConfig::default();
        let n = g.num_vertices();
        let id = Permutation::identity(n);
        let alg = Sssp::new(0);
        let sync = run(&g, &alg, Mode::Sync, &id, &cfg);
        prop_assume!(sync.converged);
        let asy = run(&g, &alg, Mode::Async, &id, &cfg);
        let par = run(&g, &alg, Mode::Parallel(4), &id, &cfg);
        let del = run_delta_round_robin(&g, &DeltaSssp { source: 0 }, &id, &cfg);
        prop_assert_eq!(&sync.final_states, &asy.final_states);
        prop_assert_eq!(&sync.final_states, &par.final_states);
        prop_assert_eq!(&sync.final_states, &del.final_states);
    }

    #[test]
    fn async_rounds_le_sync_rounds_for_bfs(g in arb_weighted_graph()) {
        let cfg = RunConfig::default();
        let id = Permutation::identity(g.num_vertices());
        let alg = Bfs::new(0);
        let s = run(&g, &alg, Mode::Sync, &id, &cfg);
        let a = run(&g, &alg, Mode::Async, &id, &cfg);
        prop_assert!(a.rounds <= s.rounds);
    }

    #[test]
    fn pagerank_trajectory_is_monotone_per_round(g in arb_weighted_graph()) {
        let cfg = RunConfig { record_trace: true, ..Default::default() };
        let id = Permutation::identity(g.num_vertices());
        let stats = run(&g, &PageRank::default(), Mode::Async, &id, &cfg);
        // Increasing algorithm: the finite state sum never decreases.
        for w in stats.trace.windows(2) {
            prop_assert!(w[1].finite_sum >= w[0].finite_sum - 1e-12);
        }
    }

    #[test]
    fn sssp_infinite_count_never_increases(g in arb_weighted_graph()) {
        let cfg = RunConfig { record_trace: true, ..Default::default() };
        let id = Permutation::identity(g.num_vertices());
        let stats = run(&g, &Sssp::new(0), Mode::Async, &id, &cfg);
        for w in stats.trace.windows(2) {
            prop_assert!(w[1].infinite_count <= w[0].infinite_count);
        }
    }

    #[test]
    fn reversal_of_order_preserves_fixpoint_changes_rounds(g in arb_weighted_graph()) {
        let cfg = RunConfig::default();
        let n = g.num_vertices();
        let fwd = Permutation::identity(n);
        let rev = fwd.reversed();
        let alg = Sssp::new(0);
        let a = run(&g, &alg, Mode::Async, &fwd, &cfg);
        let b = run(&g, &alg, Mode::Async, &rev, &cfg);
        prop_assert_eq!(a.final_states, b.final_states);
        // (rounds may differ — that is the whole point of the paper)
    }
}
