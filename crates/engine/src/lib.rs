//! # gograph-engine
//!
//! Iterative graph computation engine for the GoGraph reproduction:
//! synchronous (Jacobi, paper Eq. 1), asynchronous (Gauss–Seidel, Eq. 2)
//! and block-parallel asynchronous execution of monotonic vertex
//! programs, with convergence traces and memory accounting.
//!
//! The asynchronous engine consumes in-neighbor states that were already
//! updated in the *current* round whenever the neighbor precedes the
//! vertex in the processing order — the behaviour whose benefit GoGraph's
//! reordering maximizes.
//!
//! Algorithms (paper §V-A workloads + §III monotone examples):
//! PageRank, SSSP, BFS, PHP, CC, SSWP, Katz, Adsorption.

#![warn(missing_docs)]

pub mod algorithm;
pub mod algorithms;
pub mod asynch;
pub mod convergence;
pub mod delta;
pub mod direction;
pub mod dispatch;
pub mod error;
pub mod parallel;
pub mod pipeline;
pub mod runner;
pub mod strategy;
pub mod streaming;
pub mod sync;
pub mod worklist;

pub use algorithm::{ConvergenceNorm, IterativeAlgorithm, Monotonicity};
pub use algorithms::{Adsorption, Bfs, ConnectedComponents, Katz, PageRank, Php, Sssp, Sswp};
pub use asynch::{async_kernel, async_kernel_warm, run_async};
pub use convergence::{RunStats, TracePoint};
pub use delta::{
    delta_priority_kernel, delta_priority_kernel_warm, delta_round_robin_kernel,
    delta_round_robin_kernel_warm, DeltaAlgorithm, DeltaPageRank, DeltaSchedule, DeltaSssp,
};
#[allow(deprecated)]
pub use delta::{run_delta_priority, run_delta_round_robin};
pub use direction::{DirectionPolicy, DEFAULT_LLC_BYTES};
pub use dispatch::{
    AlgorithmKind, DeltaAlgorithmKind, DynOnly, DynOnlyDelta, GatherContext, ScatterContext,
};
pub use error::EngineError;
pub use parallel::{parallel_kernel, parallel_kernel_warm, run_parallel};
pub use pipeline::{Pipeline, PipelineResult, StageTimings};
#[allow(deprecated)]
pub use runner::{run, run_relabeled};
pub use runner::{total_memory_bytes, Mode, RunConfig};
pub use strategy::{
    strategy_for, AlgorithmRef, AsyncStrategy, DeltaStrategy, ExecutionStrategy, ParallelStrategy,
    SyncStrategy, WarmStart, WorklistStrategy,
};
pub use streaming::{
    split_batches, ResumableState, SplitBatchesError, StreamingPipeline, StreamingPipelineBuilder,
};
pub use sync::{run_sync, sync_kernel, sync_kernel_warm};
#[allow(deprecated)]
pub use worklist::run_worklist;
pub use worklist::{worklist_kernel, worklist_kernel_warm, WorklistStats};
