//! Adsorption label propagation (Baluja et al., WWW'08 — paper refs.
//! [18]/[27]): seed vertices inject a unit label; every vertex blends
//! injected and propagated mass:
//! `x_v = p_inj · inj_v + p_cont · Σ_{u ∈ IN(v)} x_u / |OUT(u)|`,
//! monotonically increasing from 0 for `p_inj + p_cont ≤ 1`.

use crate::algorithm::{ConvergenceNorm, IterativeAlgorithm, Monotonicity};
use gograph_graph::{CsrGraph, VertexId, Weight};

/// Adsorption with a set of seed (injection) vertices.
#[derive(Debug, Clone)]
pub struct Adsorption {
    seeds: Vec<bool>,
    seed_list: Vec<VertexId>,
    /// Injection probability (default 0.25).
    pub p_inject: f64,
    /// Continuation probability (default 0.75).
    pub p_continue: f64,
    /// Convergence threshold.
    pub epsilon: f64,
}

impl Adsorption {
    /// Adsorption with unit injection at `seeds`.
    pub fn new(seeds: Vec<VertexId>) -> Self {
        let max = seeds.iter().copied().max().unwrap_or(0) as usize;
        let mut flags = vec![false; max + 1];
        for &s in &seeds {
            flags[s as usize] = true;
        }
        Adsorption {
            seeds: flags,
            seed_list: seeds,
            p_inject: 0.25,
            p_continue: 0.75,
            epsilon: 1e-6,
        }
    }

    /// The seed vertices.
    pub fn seeds(&self) -> &[VertexId] {
        &self.seed_list
    }

    #[inline]
    fn injected(&self, v: VertexId) -> f64 {
        if (v as usize) < self.seeds.len() && self.seeds[v as usize] {
            1.0
        } else {
            0.0
        }
    }
}

impl IterativeAlgorithm for Adsorption {
    fn name(&self) -> &'static str {
        "adsorption"
    }

    fn init(&self, _g: &CsrGraph, _v: VertexId) -> f64 {
        0.0
    }

    fn gather_identity(&self) -> f64 {
        0.0
    }

    #[inline]
    fn gather(&self, acc: f64, neighbor_state: f64, _w: Weight, neighbor_out_degree: usize) -> f64 {
        if neighbor_out_degree == 0 {
            acc
        } else {
            acc + neighbor_state / neighbor_out_degree as f64
        }
    }

    #[inline]
    fn apply(&self, _g: &CsrGraph, v: VertexId, current: f64, acc: f64) -> f64 {
        (self.p_inject * self.injected(v) + self.p_continue * acc).max(current)
    }

    fn monotonicity(&self) -> Monotonicity {
        Monotonicity::Increasing
    }

    fn norm(&self) -> ConvergenceNorm {
        ConvergenceNorm::Sum
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn monomorphized(&self) -> Option<crate::dispatch::AlgorithmKind> {
        Some(crate::dispatch::AlgorithmKind::Adsorption(self.clone()))
    }

    fn uses_edge_weights(&self) -> bool {
        false // gather ignores the weight argument
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::evaluate_vertex;
    use gograph_graph::generators::regular::chain;

    #[test]
    fn seed_has_highest_score_on_chain() {
        let g = chain(5);
        let alg = Adsorption::new(vec![0]);
        let mut states = vec![0.0; 5];
        for _ in 0..100 {
            states = (0..5u32)
                .map(|v| evaluate_vertex(&alg, &g, v, &states))
                .collect();
        }
        assert!((states[0] - 0.25).abs() < 1e-9);
        for v in 1..5 {
            assert!(states[v] < states[v - 1], "mass must decay along the chain");
            assert!(states[v] > 0.0);
        }
    }

    #[test]
    fn no_seeds_stays_zero() {
        let g = chain(4);
        let alg = Adsorption::new(vec![]);
        let mut states = vec![0.0; 4];
        for _ in 0..10 {
            states = (0..4u32)
                .map(|v| evaluate_vertex(&alg, &g, v, &states))
                .collect();
        }
        assert!(states.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn multiple_seeds_superpose() {
        let g = chain(3);
        let both = Adsorption::new(vec![0, 2]);
        let mut states = vec![0.0; 3];
        for _ in 0..50 {
            states = (0..3u32)
                .map(|v| evaluate_vertex(&both, &g, v, &states))
                .collect();
        }
        assert!((states[2] - (0.25 + 0.75 * states[1])).abs() < 1e-9);
    }
}
