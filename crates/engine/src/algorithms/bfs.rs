//! Breadth-first search as iterative min-plus with unit weights:
//! `x_v = min(x_v, min_{u ∈ IN(v)} x_u + 1)` — hop distance from the
//! source, monotonically decreasing from `+inf`.

use crate::algorithm::{ConvergenceNorm, IterativeAlgorithm, Monotonicity};
use gograph_graph::{CsrGraph, VertexId, Weight};

/// BFS hop distance from a fixed source.
#[derive(Debug, Clone, Copy)]
pub struct Bfs {
    /// Source vertex.
    pub source: VertexId,
}

impl Bfs {
    /// BFS from `source`.
    pub fn new(source: VertexId) -> Self {
        Bfs { source }
    }
}

impl IterativeAlgorithm for Bfs {
    fn name(&self) -> &'static str {
        "bfs"
    }

    fn init(&self, _g: &CsrGraph, v: VertexId) -> f64 {
        if v == self.source {
            0.0
        } else {
            f64::INFINITY
        }
    }

    fn gather_identity(&self) -> f64 {
        f64::INFINITY
    }

    #[inline]
    fn gather(&self, acc: f64, neighbor_state: f64, _w: Weight, _d: usize) -> f64 {
        acc.min(neighbor_state + 1.0)
    }

    #[inline]
    fn apply(&self, _g: &CsrGraph, _v: VertexId, current: f64, acc: f64) -> f64 {
        current.min(acc)
    }

    fn monotonicity(&self) -> Monotonicity {
        Monotonicity::Decreasing
    }

    fn norm(&self) -> ConvergenceNorm {
        ConvergenceNorm::Max
    }

    fn epsilon(&self) -> f64 {
        0.0
    }

    fn supports_push(&self) -> bool {
        true // apply is the same min/max selection gather folds with
    }

    fn monomorphized(&self) -> Option<crate::dispatch::AlgorithmKind> {
        Some(crate::dispatch::AlgorithmKind::Bfs(*self))
    }

    fn uses_edge_weights(&self) -> bool {
        false // gather ignores the weight argument
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::evaluate_vertex;
    use gograph_graph::generators::regular::grid;
    use gograph_graph::traversal::bfs_distances;

    #[test]
    fn matches_queue_bfs_on_grid() {
        let g = grid(5, 5);
        let alg = Bfs::new(0);
        let mut states: Vec<f64> = (0..25u32).map(|v| alg.init(&g, v)).collect();
        for _ in 0..20 {
            states = (0..25u32)
                .map(|v| evaluate_vertex(&alg, &g, v, &states))
                .collect();
        }
        let truth = bfs_distances(&g, 0);
        for v in 0..25usize {
            let expect = if truth[v] == u32::MAX {
                f64::INFINITY
            } else {
                truth[v] as f64
            };
            assert_eq!(states[v], expect, "vertex {v}");
        }
    }

    #[test]
    fn ignores_edge_weights() {
        let g = CsrGraph::from_edges(2, [(0u32, 1u32, 100.0f64)]);
        let alg = Bfs::new(0);
        let states = vec![0.0, f64::INFINITY];
        assert_eq!(evaluate_vertex(&alg, &g, 1, &states), 1.0);
    }
}
