//! Connected components by monotone min-label propagation (paper §III
//! lists CC among the monotonic algorithms, ref. [24]):
//! `x_v = min(x_v, min_{u ∈ IN(v)} x_u)`, initialized to `x_v = v`.
//!
//! Propagation follows in-edges only, so for *weakly* connected
//! components run it on a symmetrized graph ([`symmetrize`]); on a
//! directed graph it computes the smallest label that can reach each
//! vertex.

use crate::algorithm::{ConvergenceNorm, IterativeAlgorithm, Monotonicity};
use gograph_graph::{CsrGraph, GraphBuilder, VertexId, Weight};

/// Min-label connected components.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConnectedComponents;

/// Adds the reverse of every edge so CC computes weakly connected
/// components.
pub fn symmetrize(g: &CsrGraph) -> CsrGraph {
    let mut b = GraphBuilder::with_capacity(g.num_vertices(), 2 * g.num_edges());
    b.reserve_vertices(g.num_vertices());
    for e in g.edges() {
        b.add_edge(e.src, e.dst, e.weight);
        b.add_edge(e.dst, e.src, e.weight);
    }
    b.build()
}

impl IterativeAlgorithm for ConnectedComponents {
    fn name(&self) -> &'static str {
        "cc"
    }

    fn init(&self, _g: &CsrGraph, v: VertexId) -> f64 {
        v as f64
    }

    fn gather_identity(&self) -> f64 {
        f64::INFINITY
    }

    #[inline]
    fn gather(&self, acc: f64, neighbor_state: f64, _w: Weight, _d: usize) -> f64 {
        acc.min(neighbor_state)
    }

    #[inline]
    fn apply(&self, _g: &CsrGraph, _v: VertexId, current: f64, acc: f64) -> f64 {
        current.min(acc)
    }

    fn monotonicity(&self) -> Monotonicity {
        Monotonicity::Decreasing
    }

    fn norm(&self) -> ConvergenceNorm {
        ConvergenceNorm::Max
    }

    fn epsilon(&self) -> f64 {
        0.0
    }

    fn supports_push(&self) -> bool {
        true // apply is the same min/max selection gather folds with
    }

    fn monomorphized(&self) -> Option<crate::dispatch::AlgorithmKind> {
        Some(crate::dispatch::AlgorithmKind::ConnectedComponents(*self))
    }

    fn uses_edge_weights(&self) -> bool {
        false // gather ignores the weight argument
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::evaluate_vertex;
    use gograph_graph::traversal::weakly_connected_components;

    #[test]
    fn labels_match_wcc_on_symmetrized() {
        let g = CsrGraph::from_edges(7, [(0u32, 1u32), (1, 2), (3, 4), (5, 6), (6, 5)]);
        let s = symmetrize(&g);
        let alg = ConnectedComponents;
        let mut states: Vec<f64> = (0..7u32).map(|v| alg.init(&s, v)).collect();
        for _ in 0..10 {
            states = (0..7u32)
                .map(|v| evaluate_vertex(&alg, &s, v, &states))
                .collect();
        }
        let (wcc, _) = weakly_connected_components(&g);
        // same component <=> same label
        for a in 0..7usize {
            for b in 0..7usize {
                assert_eq!(wcc[a] == wcc[b], states[a] == states[b], "vertices {a},{b}");
            }
        }
        // labels are the component minima
        assert_eq!(states[0], 0.0);
        assert_eq!(states[2], 0.0);
        assert_eq!(states[4], 3.0);
        assert_eq!(states[6], 5.0);
    }

    #[test]
    fn symmetrize_doubles_edges() {
        let g = CsrGraph::from_edges(3, [(0u32, 1u32), (1, 2)]);
        let s = symmetrize(&g);
        assert_eq!(s.num_edges(), 4);
        assert!(s.has_edge(1, 0));
        assert!(s.has_edge(2, 1));
    }
}
