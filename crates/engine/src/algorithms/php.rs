//! Penalized Hitting Probability (Wu et al., SIGMOD'14 — paper ref.
//! [26], workload of §V-A): random-walk proximity from a query vertex.
//!
//! `x_q = 1` pinned; for `v ≠ q`:
//! `x_v = c · Σ_{u ∈ IN(v)} x_u / |OUT(u)|` with penalty factor
//! `c < 1`. From all-zero initialization the trajectory is monotonically
//! increasing, like PageRank but rooted at a single query vertex.

use crate::algorithm::{ConvergenceNorm, IterativeAlgorithm, Monotonicity};
use gograph_graph::{CsrGraph, VertexId, Weight};

/// PHP from a fixed query vertex.
#[derive(Debug, Clone, Copy)]
pub struct Php {
    /// Query vertex (its state is pinned at 1).
    pub query: VertexId,
    /// Penalty factor `c` (default 0.8).
    pub penalty: f64,
    /// Convergence threshold (paper §V-A: 1e-6).
    pub epsilon: f64,
}

impl Php {
    /// PHP rooted at `query` with the default penalty 0.8.
    pub fn new(query: VertexId) -> Self {
        Php {
            query,
            penalty: 0.8,
            epsilon: 1e-6,
        }
    }
}

impl IterativeAlgorithm for Php {
    fn name(&self) -> &'static str {
        "php"
    }

    fn init(&self, _g: &CsrGraph, v: VertexId) -> f64 {
        if v == self.query {
            1.0
        } else {
            0.0
        }
    }

    fn gather_identity(&self) -> f64 {
        0.0
    }

    #[inline]
    fn gather(&self, acc: f64, neighbor_state: f64, _w: Weight, neighbor_out_degree: usize) -> f64 {
        if neighbor_out_degree == 0 {
            acc
        } else {
            acc + neighbor_state / neighbor_out_degree as f64
        }
    }

    #[inline]
    fn apply(&self, _g: &CsrGraph, v: VertexId, current: f64, acc: f64) -> f64 {
        if v == self.query {
            1.0
        } else {
            (self.penalty * acc).max(current)
        }
    }

    fn monotonicity(&self) -> Monotonicity {
        Monotonicity::Increasing
    }

    fn norm(&self) -> ConvergenceNorm {
        ConvergenceNorm::Sum
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn monomorphized(&self) -> Option<crate::dispatch::AlgorithmKind> {
        Some(crate::dispatch::AlgorithmKind::Php(*self))
    }

    fn uses_edge_weights(&self) -> bool {
        false // gather ignores the weight argument
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::evaluate_vertex;
    use gograph_graph::generators::regular::chain;

    #[test]
    fn decays_along_chain() {
        let g = chain(4);
        let alg = Php::new(0);
        let mut states: Vec<f64> = (0..4u32).map(|v| alg.init(&g, v)).collect();
        for _ in 0..50 {
            states = (0..4u32)
                .map(|v| evaluate_vertex(&alg, &g, v, &states))
                .collect();
        }
        assert_eq!(states[0], 1.0);
        assert!((states[1] - 0.8).abs() < 1e-9);
        assert!((states[2] - 0.64).abs() < 1e-9);
        assert!((states[3] - 0.512).abs() < 1e-9);
    }

    #[test]
    fn query_pinned_at_one() {
        let g = CsrGraph::from_edges(2, [(1u32, 0u32)]);
        let alg = Php::new(0);
        let states = vec![1.0, 0.9];
        assert_eq!(evaluate_vertex(&alg, &g, 0, &states), 1.0);
    }

    #[test]
    fn states_bounded_by_one() {
        let g = gograph_graph::generators::regular::complete(5);
        let alg = Php::new(0);
        let mut states: Vec<f64> = (0..5u32).map(|v| alg.init(&g, v)).collect();
        for _ in 0..100 {
            states = (0..5u32)
                .map(|v| evaluate_vertex(&alg, &g, v, &states))
                .collect();
        }
        for &x in &states {
            assert!(x <= 1.0 + 1e-9);
        }
    }
}
