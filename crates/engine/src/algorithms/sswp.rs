//! Single-Source Widest Path (paper §III, ref. [25]): the bottleneck /
//! maximum-capacity path problem.
//! `x_v = max(x_v, max_{u ∈ IN(v)} min(x_u, w(u, v)))` — monotonically
//! increasing from 0 (source at `+inf`: its own capacity is unbounded).

use crate::algorithm::{ConvergenceNorm, IterativeAlgorithm, Monotonicity};
use gograph_graph::{CsrGraph, VertexId, Weight};

/// SSWP from a fixed source.
#[derive(Debug, Clone, Copy)]
pub struct Sswp {
    /// Source vertex.
    pub source: VertexId,
}

impl Sswp {
    /// SSWP from `source`.
    pub fn new(source: VertexId) -> Self {
        Sswp { source }
    }
}

impl IterativeAlgorithm for Sswp {
    fn name(&self) -> &'static str {
        "sswp"
    }

    fn init(&self, _g: &CsrGraph, v: VertexId) -> f64 {
        if v == self.source {
            f64::INFINITY
        } else {
            0.0
        }
    }

    fn gather_identity(&self) -> f64 {
        0.0
    }

    #[inline]
    fn gather(&self, acc: f64, neighbor_state: f64, w: Weight, _d: usize) -> f64 {
        acc.max(neighbor_state.min(w))
    }

    #[inline]
    fn apply(&self, _g: &CsrGraph, v: VertexId, current: f64, acc: f64) -> f64 {
        if v == self.source {
            f64::INFINITY
        } else {
            current.max(acc)
        }
    }

    fn monotonicity(&self) -> Monotonicity {
        Monotonicity::Increasing
    }

    fn norm(&self) -> ConvergenceNorm {
        ConvergenceNorm::Max
    }

    fn epsilon(&self) -> f64 {
        0.0
    }

    fn supports_push(&self) -> bool {
        true // apply is the same min/max selection gather folds with
    }

    fn monomorphized(&self) -> Option<crate::dispatch::AlgorithmKind> {
        Some(crate::dispatch::AlgorithmKind::Sswp(*self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::evaluate_vertex;

    #[test]
    fn picks_widest_route() {
        // 0 -> 1 (cap 3) -> 3 (cap 5); 0 -> 2 (cap 2) -> 3 (cap 9).
        // Widest path to 3: via 1, bottleneck min(3, 5) = 3.
        let g = CsrGraph::from_edges(
            4,
            [(0u32, 1u32, 3.0f64), (1, 3, 5.0), (0, 2, 2.0), (2, 3, 9.0)],
        );
        let alg = Sswp::new(0);
        let mut states: Vec<f64> = (0..4u32).map(|v| alg.init(&g, v)).collect();
        for _ in 0..5 {
            states = (0..4u32)
                .map(|v| evaluate_vertex(&alg, &g, v, &states))
                .collect();
        }
        assert_eq!(states[1], 3.0);
        assert_eq!(states[2], 2.0);
        assert_eq!(states[3], 3.0);
    }

    #[test]
    fn unreachable_stays_zero() {
        let g = CsrGraph::from_edges(3, [(0u32, 1u32, 1.0f64)]);
        let alg = Sswp::new(0);
        let mut states: Vec<f64> = (0..3u32).map(|v| alg.init(&g, v)).collect();
        for _ in 0..3 {
            states = (0..3u32)
                .map(|v| evaluate_vertex(&alg, &g, v, &states))
                .collect();
        }
        assert_eq!(states[2], 0.0);
    }
}
