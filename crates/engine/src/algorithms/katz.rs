//! Katz centrality (paper §II mentions the Katz metric, ref. [19]):
//! `x_v = β + α · Σ_{u ∈ IN(v)} x_u`, monotonically increasing from 0
//! when `α, β > 0`. Convergence requires `α < 1/λ_max`; the
//! [`Katz::for_graph`] constructor picks a safe `α = 1/(d_max + 1)`.

use crate::algorithm::{ConvergenceNorm, IterativeAlgorithm, Monotonicity};
use gograph_graph::{CsrGraph, VertexId, Weight};

/// Katz centrality with attenuation `alpha` and base score `beta`.
#[derive(Debug, Clone, Copy)]
pub struct Katz {
    /// Attenuation factor (must be below `1/λ_max` to converge).
    pub alpha: f64,
    /// Base score added to every vertex.
    pub beta: f64,
    /// Convergence threshold.
    pub epsilon: f64,
}

impl Katz {
    /// Katz with a provably-safe attenuation for `g`: `λ_max` of any
    /// graph is at most its maximum (in-)degree, so
    /// `α = 1/(d_max_in + 1) < 1/λ_max`.
    pub fn for_graph(g: &CsrGraph) -> Self {
        let max_in = (0..g.num_vertices() as u32)
            .map(|v| g.in_degree(v))
            .max()
            .unwrap_or(0);
        Katz {
            alpha: 1.0 / (max_in as f64 + 1.0),
            beta: 1.0,
            epsilon: 1e-6,
        }
    }
}

impl IterativeAlgorithm for Katz {
    fn name(&self) -> &'static str {
        "katz"
    }

    fn init(&self, _g: &CsrGraph, _v: VertexId) -> f64 {
        0.0
    }

    fn gather_identity(&self) -> f64 {
        0.0
    }

    #[inline]
    fn gather(&self, acc: f64, neighbor_state: f64, _w: Weight, _d: usize) -> f64 {
        acc + neighbor_state
    }

    #[inline]
    fn apply(&self, _g: &CsrGraph, _v: VertexId, current: f64, acc: f64) -> f64 {
        (self.beta + self.alpha * acc).max(current)
    }

    fn monotonicity(&self) -> Monotonicity {
        Monotonicity::Increasing
    }

    fn norm(&self) -> ConvergenceNorm {
        ConvergenceNorm::Sum
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn monomorphized(&self) -> Option<crate::dispatch::AlgorithmKind> {
        Some(crate::dispatch::AlgorithmKind::Katz(*self))
    }

    fn uses_edge_weights(&self) -> bool {
        false // gather ignores the weight argument
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::evaluate_vertex;
    use gograph_graph::generators::regular::{cycle, star};

    #[test]
    fn cycle_fixpoint_is_uniform() {
        // On a directed cycle every vertex has one in-neighbor:
        // x = beta / (1 - alpha).
        let g = cycle(6);
        let alg = Katz {
            alpha: 0.3,
            beta: 1.0,
            epsilon: 1e-12,
        };
        let mut states = vec![0.0; 6];
        for _ in 0..200 {
            states = (0..6u32)
                .map(|v| evaluate_vertex(&alg, &g, v, &states))
                .collect();
        }
        let expect = 1.0 / 0.7;
        for &x in &states {
            assert!((x - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn hub_target_scores_highest() {
        // star: 0 -> all leaves. Reverse it so leaves point at 0.
        let g = star(10).reversed();
        let alg = Katz::for_graph(&g);
        let mut states = vec![0.0; 10];
        for _ in 0..100 {
            states = (0..10u32)
                .map(|v| evaluate_vertex(&alg, &g, v, &states))
                .collect();
        }
        for v in 1..10 {
            assert!(states[0] > states[v], "hub should outrank leaf {v}");
        }
    }

    #[test]
    fn safe_alpha_converges_on_dense_graph() {
        let g = gograph_graph::generators::regular::complete(8);
        let alg = Katz::for_graph(&g);
        let mut states = vec![0.0; 8];
        let mut last_delta = f64::INFINITY;
        for _ in 0..500 {
            let next: Vec<f64> = (0..8u32)
                .map(|v| evaluate_vertex(&alg, &g, v, &states))
                .collect();
            last_delta = states
                .iter()
                .zip(&next)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            states = next;
        }
        assert!(last_delta < 1e-9, "did not converge: delta {last_delta}");
    }
}
