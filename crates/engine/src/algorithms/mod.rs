//! Concrete monotonic iterative algorithms.
//!
//! The paper's workloads (§V-A): PageRank, SSSP, BFS, PHP — plus the
//! other monotonic algorithms it lists in §III (CC, SSWP, Adsorption,
//! Katz). Each is a pure gather/apply [`IterativeAlgorithm`]; the module
//! also provides [`monotonicity_probe`], an empirical check of the
//! paper's Eq. 3 used by the test suite.

mod adsorption;
mod bfs;
mod cc;
mod katz;
mod pagerank;
mod php;
mod sssp;
mod sswp;

pub use adsorption::Adsorption;
pub use bfs::Bfs;
pub use cc::{symmetrize, ConnectedComponents};
pub use katz::Katz;
pub use pagerank::PageRank;
pub use php::Php;
pub use sssp::Sssp;
pub use sswp::Sswp;

use crate::algorithm::{evaluate_vertex, IterativeAlgorithm, Monotonicity};
use gograph_graph::CsrGraph;

/// Empirically probes the monotonicity property (paper Eq. 3): improving
/// one in-neighbor's state (moving it toward convergence) must not move
/// the vertex's own update away from convergence. Returns `Err` with a
/// description at the first violation found.
///
/// The probe runs a few synchronous rounds and at each step perturbs one
/// neighbor state in the *converging* direction, asserting the update
/// responds in the same direction.
pub fn monotonicity_probe<A: IterativeAlgorithm>(alg: &A, g: &CsrGraph) -> Result<(), String> {
    let n = g.num_vertices();
    let mut states: Vec<f64> = (0..n as u32).map(|v| alg.init(g, v)).collect();
    let dir = alg.monotonicity();
    for _round in 0..4 {
        for v in 0..n as u32 {
            let base = evaluate_vertex(alg, g, v, &states);
            // Perturb each in-neighbor one at a time.
            let mut ins = Vec::new();
            g.for_each_in_neighbor(v, |u| ins.push(u));
            for u in ins {
                if u == v {
                    continue;
                }
                let saved = states[u as usize];
                if !saved.is_finite() {
                    continue;
                }
                let perturbed = match dir {
                    Monotonicity::Decreasing => saved - saved.abs() * 0.01 - 0.01,
                    Monotonicity::Increasing => saved + saved.abs() * 0.01 + 0.01,
                };
                states[u as usize] = perturbed;
                let moved = evaluate_vertex(alg, g, v, &states);
                states[u as usize] = saved;
                let ok = match dir {
                    Monotonicity::Decreasing => moved <= base + 1e-12,
                    Monotonicity::Increasing => moved >= base - 1e-12,
                };
                if !ok {
                    return Err(format!(
                        "{}: non-monotone at v={v}, u={u}: base {base}, moved {moved}",
                        alg.name()
                    ));
                }
            }
        }
        // Advance one synchronous round.
        let next: Vec<f64> = (0..n as u32)
            .map(|v| evaluate_vertex(alg, g, v, &states))
            .collect();
        states = next;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gograph_graph::generators::with_random_weights;
    use gograph_graph::generators::{planted_partition, PlantedPartitionConfig};

    fn probe_graph() -> CsrGraph {
        let g = planted_partition(PlantedPartitionConfig {
            num_vertices: 60,
            num_edges: 300,
            communities: 4,
            p_intra: 0.8,
            gamma: 2.5,
            seed: 21,
        });
        with_random_weights(&g, 1.0, 5.0, 3)
    }

    #[test]
    fn all_algorithms_are_monotone() {
        let g = probe_graph();
        monotonicity_probe(&PageRank::default(), &g).unwrap();
        monotonicity_probe(&Sssp::new(0), &g).unwrap();
        monotonicity_probe(&Bfs::new(0), &g).unwrap();
        monotonicity_probe(&Php::new(0), &g).unwrap();
        monotonicity_probe(&ConnectedComponents, &g).unwrap();
        monotonicity_probe(&Sswp::new(0), &g).unwrap();
        monotonicity_probe(&Katz::for_graph(&g), &g).unwrap();
        monotonicity_probe(&Adsorption::new(vec![0, 5]), &g).unwrap();
    }
}
