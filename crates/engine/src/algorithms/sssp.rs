//! Single-source shortest path (paper §II):
//! `x_v = min(x_v, min_{u ∈ IN(v)} x_u + d(u, v))` — monotonically
//! decreasing from `+inf` (except the source at 0).

use crate::algorithm::{ConvergenceNorm, IterativeAlgorithm, Monotonicity};
use gograph_graph::{CsrGraph, VertexId, Weight};

/// SSSP from a fixed source vertex.
#[derive(Debug, Clone, Copy)]
pub struct Sssp {
    /// Source vertex.
    pub source: VertexId,
}

impl Sssp {
    /// SSSP from `source`.
    pub fn new(source: VertexId) -> Self {
        Sssp { source }
    }
}

impl IterativeAlgorithm for Sssp {
    fn name(&self) -> &'static str {
        "sssp"
    }

    fn init(&self, _g: &CsrGraph, v: VertexId) -> f64 {
        if v == self.source {
            0.0
        } else {
            f64::INFINITY
        }
    }

    fn gather_identity(&self) -> f64 {
        f64::INFINITY
    }

    #[inline]
    fn gather(&self, acc: f64, neighbor_state: f64, w: Weight, _d: usize) -> f64 {
        acc.min(neighbor_state + w)
    }

    #[inline]
    fn apply(&self, _g: &CsrGraph, _v: VertexId, current: f64, acc: f64) -> f64 {
        current.min(acc)
    }

    fn monotonicity(&self) -> Monotonicity {
        Monotonicity::Decreasing
    }

    fn norm(&self) -> ConvergenceNorm {
        ConvergenceNorm::Max
    }

    fn epsilon(&self) -> f64 {
        0.0
    }

    fn supports_push(&self) -> bool {
        true // apply is the same min/max selection gather folds with
    }

    fn monomorphized(&self) -> Option<crate::dispatch::AlgorithmKind> {
        Some(crate::dispatch::AlgorithmKind::Sssp(*self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::evaluate_vertex;

    /// The paper's Fig. 2a graph: a→b(1), a→e(4), b→e(1), e→c(2), e→d(2),
    /// b→c(6)? — edges as drawn: a->b 1, a->e 4, b->e 1, b->c 6(unused in
    /// fig?), e->c 2, e->d 2, c->d 1.
    /// We encode the distances the paper reports: b=1, e=2, c=4, d=4.
    pub(crate) fn fig2_graph() -> CsrGraph {
        // a=0, b=1, c=2, d=3, e=4
        CsrGraph::from_edges(
            5,
            [
                (0u32, 1u32, 1.0f64), // a -> b, 1
                (0, 4, 4.0),          // a -> e, 4
                (1, 4, 1.0),          // b -> e, 1
                (4, 2, 2.0),          // e -> c, 2
                (4, 3, 2.0),          // e -> d, 2
                (2, 3, 1.0),          // c -> d, 1
            ],
        )
    }

    #[test]
    fn converges_to_fig2_distances() {
        let g = fig2_graph();
        let alg = Sssp::new(0);
        let mut states: Vec<f64> = (0..5u32).map(|v| alg.init(&g, v)).collect();
        for _ in 0..10 {
            states = (0..5u32)
                .map(|v| evaluate_vertex(&alg, &g, v, &states))
                .collect();
        }
        assert_eq!(states, vec![0.0, 1.0, 4.0, 4.0, 2.0]);
    }

    #[test]
    fn unreachable_stays_infinite() {
        let g = CsrGraph::from_edges(3, [(0u32, 1u32, 1.0f64)]);
        let alg = Sssp::new(0);
        let mut states: Vec<f64> = (0..3u32).map(|v| alg.init(&g, v)).collect();
        for _ in 0..5 {
            states = (0..3u32)
                .map(|v| evaluate_vertex(&alg, &g, v, &states))
                .collect();
        }
        assert_eq!(states[2], f64::INFINITY);
    }
}
