//! PageRank in its monotone, from-zero formulation (paper §II):
//! `x_v = (1 − d) + d · Σ_{u ∈ IN(v)} x_u / |OUT(u)|`, states initialized
//! to 0 so the trajectory increases monotonically toward the fixpoint —
//! the property Theorem 1 needs for asynchronous acceleration.
//!
//! Dangling vertices (out-degree 0) leak their mass, the common
//! simplification; the fixpoint still exists and all ordering comparisons
//! are unaffected.

use crate::algorithm::{ConvergenceNorm, IterativeAlgorithm, Monotonicity};
use gograph_graph::{CsrGraph, VertexId, Weight};

/// PageRank with damping factor `d` and threshold `epsilon`
/// (paper §V-A: convergence when per-round delta < 1e-6).
#[derive(Debug, Clone, Copy)]
pub struct PageRank {
    /// Damping factor (paper-standard 0.85).
    pub damping: f64,
    /// Convergence threshold.
    pub epsilon: f64,
}

impl Default for PageRank {
    fn default() -> Self {
        PageRank {
            damping: 0.85,
            epsilon: 1e-6,
        }
    }
}

impl IterativeAlgorithm for PageRank {
    fn name(&self) -> &'static str {
        "pagerank"
    }

    fn init(&self, _g: &CsrGraph, _v: VertexId) -> f64 {
        0.0
    }

    fn gather_identity(&self) -> f64 {
        0.0
    }

    #[inline]
    fn gather(&self, acc: f64, neighbor_state: f64, _w: Weight, neighbor_out_degree: usize) -> f64 {
        if neighbor_out_degree == 0 {
            acc
        } else {
            acc + neighbor_state / neighbor_out_degree as f64
        }
    }

    #[inline]
    fn apply(&self, _g: &CsrGraph, _v: VertexId, current: f64, acc: f64) -> f64 {
        // Monotone: the gathered sum only grows round over round, so the
        // new state never falls below the current one.
        let fresh = (1.0 - self.damping) + self.damping * acc;
        fresh.max(current)
    }

    fn monotonicity(&self) -> Monotonicity {
        Monotonicity::Increasing
    }

    fn norm(&self) -> ConvergenceNorm {
        ConvergenceNorm::Sum
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn monomorphized(&self) -> Option<crate::dispatch::AlgorithmKind> {
        Some(crate::dispatch::AlgorithmKind::PageRank(*self))
    }

    fn uses_edge_weights(&self) -> bool {
        false // gather ignores the weight argument
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::evaluate_vertex;
    use gograph_graph::generators::regular::cycle;

    #[test]
    fn uniform_on_cycle() {
        // On a directed cycle the fixpoint is x = 1 everywhere.
        let g = cycle(5);
        let mut states = vec![0.0; 5];
        let pr = PageRank::default();
        for _ in 0..200 {
            states = (0..5u32)
                .map(|v| evaluate_vertex(&pr, &g, v, &states))
                .collect();
        }
        for &x in &states {
            assert!((x - 1.0).abs() < 1e-6, "state {x}");
        }
    }

    #[test]
    fn states_increase_monotonically() {
        let g = cycle(4);
        let pr = PageRank::default();
        let mut states = vec![0.0; 4];
        for _ in 0..20 {
            let next: Vec<f64> = (0..4u32)
                .map(|v| evaluate_vertex(&pr, &g, v, &states))
                .collect();
            for (o, n) in states.iter().zip(&next) {
                assert!(n >= o);
            }
            states = next;
        }
    }

    #[test]
    fn dangling_neighbors_contribute_nothing() {
        // 0 -> 1, and 1 has no out-edges: 1's rank = (1-d) + d * x_0 / 1.
        let g = CsrGraph::from_edges(2, [(0u32, 1u32)]);
        let pr = PageRank::default();
        let states = vec![0.15, 0.0];
        let x1 = evaluate_vertex(&pr, &g, 1, &states);
        assert!((x1 - (0.15 + 0.85 * 0.15)).abs() < 1e-12);
        // 0 has no in-neighbors at all:
        let x0 = evaluate_vertex(&pr, &g, 0, &states);
        assert!((x0 - 0.15).abs() < 1e-12);
    }
}
