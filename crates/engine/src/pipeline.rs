//! The unified **Pipeline** execution API — the paper's whole method as
//! one composable entry point: compute an order `R(G) -> O_V`
//! (*reorder*), optionally physically *relabel* the graph so that order
//! becomes a sequential scan, then *iterate* a monotonic algorithm under
//! any [`ExecutionStrategy`].
//!
//! ```
//! use gograph_engine::{Mode, PageRank, Pipeline};
//! use gograph_graph::generators::regular::chain;
//! use gograph_reorder::DegSort;
//!
//! let g = chain(100);
//! let result = Pipeline::on(&g)
//!     .reorder(DegSort::default())
//!     .relabel(true)
//!     .mode(Mode::Async)
//!     .algorithm(PageRank::default())
//!     .max_rounds(10_000)
//!     .trace(true)
//!     .execute()
//!     .unwrap();
//! assert!(result.stats.converged);
//! assert_eq!(result.order.len(), 100);
//! assert!(result.relabeled.is_some());
//! ```
//!
//! Each stage is optional with sensible defaults: no reorder step means
//! the identity order, `relabel` defaults to off, the mode defaults to
//! [`Mode::Async`] (the paper's deployment), and configuration defaults
//! to [`RunConfig::default`]. Invalid combinations come back as
//! [`EngineError`] values instead of panics.

use crate::algorithm::IterativeAlgorithm;
use crate::convergence::RunStats;
use crate::delta::DeltaAlgorithm;
use crate::error::EngineError;
use crate::runner::{Mode, RunConfig};
use crate::strategy::{strategy_for, AlgorithmRef, WarmStart};
use gograph_graph::{CsrGraph, Permutation, VertexId};
use gograph_reorder::Reorderer;
use std::time::{Duration, Instant};

/// How the processing order is obtained.
enum OrderSpec<'a> {
    /// No reordering: identity order (the paper's "Default").
    Identity,
    /// A caller-supplied order, owned.
    Explicit(Permutation),
    /// A caller-supplied order, borrowed (used by the legacy wrappers).
    Borrowed(&'a Permutation),
    /// Computed by a reordering method at execute time.
    Reorder(Box<dyn Reorderer + 'a>),
}

/// Deferred algorithm construction: receives the resolved order (see
/// [`Pipeline::algorithm_with`]).
type AlgorithmFactory<'a> = Box<dyn FnOnce(&Permutation) -> Box<dyn IterativeAlgorithm> + 'a>;

/// A gather algorithm in any ownership shape.
enum GatherSpec<'a> {
    Owned(Box<dyn IterativeAlgorithm>),
    Borrowed(&'a dyn IterativeAlgorithm),
    /// Built once the order is known — for source-based algorithms whose
    /// source id must be mapped through the order.
    Factory(AlgorithmFactory<'a>),
}

/// Deferred delta-algorithm construction: receives the resolved order
/// (see [`Pipeline::delta_algorithm_with`]).
type DeltaFactory<'a> = Box<dyn FnOnce(&Permutation) -> Box<dyn DeltaAlgorithm> + 'a>;

/// A delta algorithm in any ownership shape.
enum DeltaSpec<'a> {
    Owned(Box<dyn DeltaAlgorithm>),
    Borrowed(&'a dyn DeltaAlgorithm),
    /// Built once the order is known — for source-based delta algorithms
    /// whose source id must be mapped through the order.
    Factory(DeltaFactory<'a>),
}

/// Wall-clock cost of each pipeline stage.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageTimings {
    /// Computing the order (zero when an explicit order was supplied).
    pub reorder: Duration,
    /// Physically relabeling the graph (zero when relabeling is off).
    pub relabel: Duration,
    /// The iterative engine run itself.
    pub execute: Duration,
}

impl StageTimings {
    /// Total pipeline wall-clock time.
    pub fn total(&self) -> Duration {
        self.reorder + self.relabel + self.execute
    }
}

/// Everything a pipeline run produced.
#[derive(Debug, Clone)]
pub struct PipelineResult {
    /// The processing order that was used (identity when none was set).
    pub order: Permutation,
    /// The physically relabeled graph, when `relabel(true)` was set.
    /// Under relabeling, vertex `v`'s state lives at index
    /// `order.position(v)` of `stats.final_states` — or use
    /// [`PipelineResult::state_of`].
    pub relabeled: Option<CsrGraph>,
    /// Statistics of the engine run.
    pub stats: RunStats,
    /// Per-stage wall-clock timings.
    pub timings: StageTimings,
}

impl PipelineResult {
    /// Final state of vertex `v` in *original* ids, transparently mapping
    /// through the order when the run was relabeled.
    pub fn state_of(&self, v: VertexId) -> f64 {
        if self.relabeled.is_some() {
            self.stats.final_states[self.order.position(v) as usize]
        } else {
            self.stats.final_states[v as usize]
        }
    }

    /// All final states in *original* vertex-id order (allocates when the
    /// run was relabeled).
    pub fn states_in_original_ids(&self) -> Vec<f64> {
        if self.relabeled.is_some() {
            (0..self.order.len() as VertexId)
                .map(|v| self.state_of(v))
                .collect()
        } else {
            self.stats.final_states.clone()
        }
    }
}

/// Fluent builder for a reorder → relabel → iterate run. See the
/// [module docs](crate::pipeline) for an example.
pub struct Pipeline<'a> {
    graph: &'a CsrGraph,
    order: OrderSpec<'a>,
    relabel: bool,
    mode: Mode,
    gather: Option<GatherSpec<'a>>,
    delta: Option<DeltaSpec<'a>>,
    cfg: RunConfig,
    require_convergence: bool,
    warm: Option<WarmStart>,
}

impl<'a> Pipeline<'a> {
    /// Starts a pipeline over `graph`.
    pub fn on(graph: &'a CsrGraph) -> Self {
        Pipeline {
            graph,
            order: OrderSpec::Identity,
            relabel: false,
            mode: Mode::Async,
            gather: None,
            delta: None,
            cfg: RunConfig::default(),
            require_convergence: false,
            warm: None,
        }
    }

    /// Computes the processing order with `reorderer` at execute time.
    /// Any [`Reorderer`] slots in — the paper's GoGraph, its incremental
    /// variant, or any of the six baselines. Replaces any previously set
    /// order source.
    pub fn reorder(mut self, reorderer: impl Reorderer + 'a) -> Self {
        self.order = OrderSpec::Reorder(Box::new(reorderer));
        self
    }

    /// Uses an explicit processing order. Replaces any previously set
    /// order source.
    pub fn order(mut self, order: Permutation) -> Self {
        self.order = OrderSpec::Explicit(order);
        self
    }

    /// Uses a borrowed explicit processing order (avoids a clone until
    /// execute time). Replaces any previously set order source.
    pub fn order_ref(mut self, order: &'a Permutation) -> Self {
        self.order = OrderSpec::Borrowed(order);
        self
    }

    /// Physically relabels the graph by the order before running, so the
    /// engine scans vertices `0..n` sequentially — the paper's deployment
    /// configuration (reorder offline, iterate on the improved layout).
    pub fn relabel(mut self, yes: bool) -> Self {
        self.relabel = yes;
        self
    }

    /// Selects the execution strategy (default: [`Mode::Async`]).
    pub fn mode(mut self, mode: Mode) -> Self {
        self.mode = mode;
        self
    }

    /// Supplies the gather algorithm (PageRank, SSSP, ...) by value.
    pub fn algorithm(mut self, alg: impl IterativeAlgorithm + 'static) -> Self {
        self.gather = Some(GatherSpec::Owned(Box::new(alg)));
        self
    }

    /// Supplies the gather algorithm by reference.
    pub fn algorithm_ref(mut self, alg: &'a dyn IterativeAlgorithm) -> Self {
        self.gather = Some(GatherSpec::Borrowed(alg));
        self
    }

    /// Supplies the gather algorithm through a factory that receives the
    /// resolved processing order — the hook for source-based algorithms
    /// whose source vertex must be mapped through the order when
    /// relabeling:
    ///
    /// ```
    /// use gograph_engine::{Mode, Pipeline, Sssp};
    /// use gograph_graph::generators::regular::chain;
    /// use gograph_reorder::DegSort;
    ///
    /// let g = chain(10);
    /// let source = 0u32;
    /// let r = Pipeline::on(&g)
    ///     .reorder(DegSort::default())
    ///     .relabel(true)
    ///     .algorithm_with(move |order| Box::new(Sssp::new(order.position(source))))
    ///     .execute()
    ///     .unwrap();
    /// assert_eq!(r.state_of(source), 0.0);
    /// ```
    pub fn algorithm_with(
        mut self,
        factory: impl FnOnce(&Permutation) -> Box<dyn IterativeAlgorithm> + 'a,
    ) -> Self {
        self.gather = Some(GatherSpec::Factory(Box::new(factory)));
        self
    }

    /// Supplies the delta algorithm (for [`Mode::Delta`]) by value.
    pub fn delta_algorithm(mut self, alg: impl DeltaAlgorithm + 'static) -> Self {
        self.delta = Some(DeltaSpec::Owned(Box::new(alg)));
        self
    }

    /// Supplies the delta algorithm by reference.
    pub fn delta_algorithm_ref(mut self, alg: &'a dyn DeltaAlgorithm) -> Self {
        self.delta = Some(DeltaSpec::Borrowed(alg));
        self
    }

    /// Supplies the delta algorithm through a factory that receives the
    /// resolved processing order — the delta counterpart of
    /// [`Pipeline::algorithm_with`], needed so a source-based delta
    /// algorithm (e.g. delta SSSP) targets the right vertex when
    /// relabeling:
    ///
    /// ```
    /// use gograph_engine::{DeltaSchedule, DeltaSssp, Mode, Pipeline};
    /// use gograph_graph::generators::regular::chain;
    /// use gograph_reorder::DegSort;
    ///
    /// let g = chain(10);
    /// let source = 0u32;
    /// let r = Pipeline::on(&g)
    ///     .reorder(DegSort::default())
    ///     .relabel(true)
    ///     .mode(Mode::Delta(DeltaSchedule::RoundRobin))
    ///     .delta_algorithm_with(move |order| {
    ///         Box::new(DeltaSssp { source: order.position(source) })
    ///     })
    ///     .execute()
    ///     .unwrap();
    /// assert_eq!(r.state_of(source), 0.0);
    /// ```
    pub fn delta_algorithm_with(
        mut self,
        factory: impl FnOnce(&Permutation) -> Box<dyn DeltaAlgorithm> + 'a,
    ) -> Self {
        self.delta = Some(DeltaSpec::Factory(Box::new(factory)));
        self
    }

    /// Safety cap on rounds (default 10 000).
    pub fn max_rounds(mut self, n: usize) -> Self {
        self.cfg.max_rounds = n;
        self
    }

    /// Records a per-round [`crate::convergence::TracePoint`].
    pub fn trace(mut self, yes: bool) -> Self {
        self.cfg.record_trace = yes;
        self
    }

    /// Traversal-direction policy (default
    /// [`crate::DirectionPolicy::Auto`]). Composes with every mode —
    /// including [`Mode::Parallel`], whose block-parallel engine runs
    /// direction-optimized rounds at every block count.
    pub fn direction(mut self, policy: crate::DirectionPolicy) -> Self {
        self.cfg.direction = policy;
        self
    }

    /// Replaces the whole run configuration.
    pub fn config(mut self, cfg: RunConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Makes `execute` return [`EngineError::DidNotConverge`] when the
    /// round cap is hit before convergence (default: off, matching the
    /// legacy engines which report `converged: false` in the stats).
    pub fn require_convergence(mut self, yes: bool) -> Self {
        self.require_convergence = yes;
        self
    }

    /// Starts the engine from a [`WarmStart`] (previous converged states,
    /// optionally with an update frontier and pending deltas) instead of
    /// the algorithm's initial state — the evolving-graph entry used by
    /// [`crate::StreamingPipeline`]. Warm states are indexed by *graph*
    /// vertex id, so this is incompatible with `relabel(true)` (which
    /// renumbers vertices) and `execute` rejects the combination.
    pub fn warm_start(mut self, warm: WarmStart) -> Self {
        self.warm = Some(warm);
        self
    }

    /// Runs the pipeline: reorder → (relabel) → iterate.
    pub fn execute(self) -> Result<PipelineResult, EngineError> {
        let Pipeline {
            graph,
            order,
            relabel,
            mode,
            gather,
            delta,
            cfg,
            require_convergence,
            warm,
        } = self;
        let n = graph.num_vertices();
        if warm.is_some() && relabel {
            return Err(EngineError::InvalidParameter {
                name: "warm_start",
                message: "warm states are indexed by vertex id and cannot be combined \
                          with relabel(true); relabel once up front and warm-start over \
                          the relabeled graph instead"
                    .into(),
            });
        }

        // --- Stage 1: obtain and validate the processing order. ---
        let t = Instant::now();
        let order = match order {
            OrderSpec::Identity => Permutation::identity(n),
            OrderSpec::Explicit(p) => p,
            OrderSpec::Borrowed(p) => p.clone(),
            OrderSpec::Reorder(r) => r.reorder(graph),
        };
        let reorder_time = t.elapsed();
        // Length is the only invariant to check here: Permutation's
        // constructors already guarantee bijectivity, so a Reorderer can
        // only hand back a valid (if possibly wrong-sized) permutation.
        if order.len() != n {
            return Err(EngineError::OrderLengthMismatch {
                order_len: order.len(),
                num_vertices: n,
            });
        }

        // --- Resolve the algorithm for the selected mode. Only the
        // family the mode consumes gets resolved, so a factory of the
        // other family is never run just to be discarded. ---
        let strategy = strategy_for(mode);
        let has_gather = gather.is_some();
        let has_delta = delta.is_some();
        let mut resolved_gather: Option<GatherSpec<'a>> = None;
        let mut resolved_delta: Option<DeltaSpec<'a>> = None;
        match mode {
            Mode::Delta(_) => {
                resolved_delta = match delta {
                    Some(DeltaSpec::Factory(f)) => Some(DeltaSpec::Owned(f(&order))),
                    other => other,
                }
            }
            _ => {
                resolved_gather = match gather {
                    Some(GatherSpec::Factory(f)) => Some(GatherSpec::Owned(f(&order))),
                    other => other,
                }
            }
        }
        let alg: AlgorithmRef<'_> = match mode {
            Mode::Delta(_) => match &resolved_delta {
                Some(DeltaSpec::Owned(a)) => AlgorithmRef::Delta(a.as_ref()),
                Some(DeltaSpec::Borrowed(a)) => AlgorithmRef::Delta(*a),
                Some(DeltaSpec::Factory(_)) => unreachable!("factories resolved above"),
                None if has_gather => {
                    return Err(EngineError::IncompatibleAlgorithm {
                        mode: strategy.name(),
                        provided: "gather",
                    })
                }
                None => {
                    return Err(EngineError::MissingAlgorithm {
                        mode: strategy.name(),
                        expected: "delta",
                    })
                }
            },
            _ => match &resolved_gather {
                Some(GatherSpec::Owned(a)) => AlgorithmRef::Gather(a.as_ref()),
                Some(GatherSpec::Borrowed(a)) => AlgorithmRef::Gather(*a),
                Some(GatherSpec::Factory(_)) => unreachable!("factories resolved above"),
                None if has_delta => {
                    return Err(EngineError::IncompatibleAlgorithm {
                        mode: strategy.name(),
                        provided: "delta",
                    })
                }
                None => {
                    return Err(EngineError::MissingAlgorithm {
                        mode: strategy.name(),
                        expected: "gather",
                    })
                }
            },
        };

        // --- Stage 2: physical relabeling (optional). ---
        let t = Instant::now();
        let relabeled = relabel.then(|| graph.relabeled(&order));
        let relabel_time = t.elapsed();
        let identity;
        let (run_graph, run_order): (&CsrGraph, &Permutation) = match &relabeled {
            Some(rg) => {
                // After relabeling, the order *is* the sequential scan.
                identity = Permutation::identity(n);
                (rg, &identity)
            }
            None => (graph, &order),
        };

        // --- Stage 3: iterate. ---
        let t = Instant::now();
        let stats = match warm {
            Some(w) => strategy.run_warm(run_graph, alg, run_order, &cfg, w)?,
            None => strategy.run(run_graph, alg, run_order, &cfg)?,
        };
        let execute_time = t.elapsed();
        if require_convergence && !stats.converged {
            return Err(EngineError::DidNotConverge {
                rounds: stats.rounds,
            });
        }

        Ok(PipelineResult {
            order,
            relabeled,
            stats,
            timings: StageTimings {
                reorder: reorder_time,
                relabel: relabel_time,
                execute: execute_time,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{PageRank, Sssp};
    use crate::delta::{DeltaSchedule, DeltaSssp};
    use gograph_graph::generators::regular::chain;
    use gograph_reorder::{DefaultOrder, RandomOrder, Reorderer};

    #[test]
    fn default_pipeline_is_async_identity() {
        let g = chain(20);
        let r = Pipeline::on(&g).algorithm(Sssp::new(0)).execute().unwrap();
        assert!(r.stats.converged);
        assert!(r.order.is_identity());
        assert!(r.relabeled.is_none());
        assert_eq!(
            r.stats.rounds, 2,
            "chain under identity is 1 pass + 1 check"
        );
        assert_eq!(r.state_of(19), 19.0);
    }

    #[test]
    fn relabel_matches_in_place_fixpoint() {
        let g = chain(30);
        let order = RandomOrder { seed: 5 }.reorder(&g);
        let in_place = Pipeline::on(&g)
            .order(order.clone())
            .algorithm(Sssp::new(0))
            .execute()
            .unwrap();
        let relabeled = Pipeline::on(&g)
            .order(order)
            .relabel(true)
            .algorithm_with(|o| Box::new(Sssp::new(o.position(0))))
            .execute()
            .unwrap();
        assert_eq!(
            in_place.stats.final_states,
            relabeled.states_in_original_ids()
        );
    }

    #[test]
    fn direction_builder_composes_with_parallel_mode() {
        let g = chain(60);
        let run = |policy: crate::DirectionPolicy| {
            Pipeline::on(&g)
                .mode(Mode::Parallel(3))
                .direction(policy)
                .algorithm(Sssp::new(0))
                .execute()
                .unwrap()
        };
        let auto = run(crate::DirectionPolicy::Auto);
        let pull = run(crate::DirectionPolicy::PullOnly);
        let push = run(crate::DirectionPolicy::PushOnly);
        assert_eq!(auto.stats.final_states, pull.stats.final_states);
        assert_eq!(auto.stats.final_states, push.stats.final_states);
        assert_eq!(pull.stats.push_rounds, 0, "PullOnly never scatters");
        assert!(push.stats.push_rounds > 0, "PushOnly must scatter");
    }

    #[test]
    fn missing_algorithm_is_reported() {
        let g = chain(5);
        let err = Pipeline::on(&g).execute().unwrap_err();
        assert!(matches!(
            err,
            EngineError::MissingAlgorithm {
                expected: "gather",
                ..
            }
        ));
        let err = Pipeline::on(&g)
            .mode(Mode::Delta(DeltaSchedule::RoundRobin))
            .execute()
            .unwrap_err();
        assert!(matches!(
            err,
            EngineError::MissingAlgorithm {
                expected: "delta",
                ..
            }
        ));
    }

    #[test]
    fn mode_algorithm_mismatch_is_reported() {
        let g = chain(5);
        let err = Pipeline::on(&g)
            .mode(Mode::Delta(DeltaSchedule::RoundRobin))
            .algorithm(Sssp::new(0))
            .execute()
            .unwrap_err();
        assert!(matches!(
            err,
            EngineError::IncompatibleAlgorithm {
                provided: "gather",
                ..
            }
        ));
        let err = Pipeline::on(&g)
            .delta_algorithm(DeltaSssp { source: 0 })
            .execute()
            .unwrap_err();
        assert!(matches!(
            err,
            EngineError::IncompatibleAlgorithm {
                provided: "delta",
                ..
            }
        ));
    }

    #[test]
    fn wrong_length_order_is_an_error() {
        let g = chain(10);
        let err = Pipeline::on(&g)
            .order(Permutation::identity(4))
            .algorithm(Sssp::new(0))
            .execute()
            .unwrap_err();
        assert_eq!(
            err,
            EngineError::OrderLengthMismatch {
                order_len: 4,
                num_vertices: 10
            }
        );
    }

    #[test]
    fn require_convergence_surfaces_round_cap() {
        let g = chain(50);
        // Reversed order needs ~n rounds; cap far below that.
        let err = Pipeline::on(&g)
            .order(Permutation::identity(50).reversed())
            .algorithm(Sssp::new(0))
            .max_rounds(3)
            .require_convergence(true)
            .execute()
            .unwrap_err();
        assert_eq!(err, EngineError::DidNotConverge { rounds: 3 });
        // Without the flag the same run reports converged: false.
        let r = Pipeline::on(&g)
            .order(Permutation::identity(50).reversed())
            .algorithm(Sssp::new(0))
            .max_rounds(3)
            .execute()
            .unwrap();
        assert!(!r.stats.converged);
    }

    #[test]
    fn stage_timings_are_recorded() {
        let g = chain(200);
        let r = Pipeline::on(&g)
            .reorder(DefaultOrder)
            .relabel(true)
            .algorithm(PageRank::default())
            .execute()
            .unwrap();
        assert!(r.timings.execute > Duration::ZERO);
        assert!(r.timings.total() >= r.timings.execute);
    }

    #[test]
    fn delta_factory_maps_source_through_relabeling() {
        let g = chain(20);
        // Reverse order + relabel: original vertex 0 becomes id 19. A
        // naive DeltaSssp { source: 0 } would start from the wrong end;
        // the factory maps it correctly.
        let r = Pipeline::on(&g)
            .order(Permutation::identity(20).reversed())
            .relabel(true)
            .mode(Mode::Delta(DeltaSchedule::RoundRobin))
            .delta_algorithm_with(|o| {
                Box::new(DeltaSssp {
                    source: o.position(0),
                })
            })
            .execute()
            .unwrap();
        assert!(r.stats.converged);
        assert_eq!(r.state_of(0), 0.0);
        assert_eq!(r.state_of(19), 19.0);
    }

    #[test]
    fn warm_start_flows_through_pipeline_and_rejects_relabel() {
        let g = chain(25);
        let cold = Pipeline::on(&g).algorithm(Sssp::new(0)).execute().unwrap();
        let warm = Pipeline::on(&g)
            .algorithm(Sssp::new(0))
            .warm_start(WarmStart::from_states(cold.stats.final_states.clone()))
            .execute()
            .unwrap();
        assert!(warm.stats.converged);
        assert_eq!(warm.stats.rounds, 1, "fixpoint confirms in one round");
        assert_eq!(warm.stats.final_states, cold.stats.final_states);
        let err = Pipeline::on(&g)
            .algorithm(Sssp::new(0))
            .relabel(true)
            .warm_start(WarmStart::from_states(cold.stats.final_states.clone()))
            .execute()
            .unwrap_err();
        assert!(matches!(
            err,
            EngineError::InvalidParameter {
                name: "warm_start",
                ..
            }
        ));
    }

    #[test]
    fn worklist_mode_exposes_evaluations() {
        let g = chain(40);
        let r = Pipeline::on(&g)
            .mode(Mode::Worklist)
            .algorithm(Sssp::new(0))
            .execute()
            .unwrap();
        assert!(r.stats.converged);
        assert!(r.stats.evaluations.is_some());
        let full = Pipeline::on(&g).algorithm(Sssp::new(0)).execute().unwrap();
        assert_eq!(r.stats.final_states, full.stats.final_states);
    }
}
