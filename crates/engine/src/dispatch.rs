//! The static-dispatch layer between the [`crate::Pipeline`] API and the
//! engine kernels, plus the prebuilt gather context those kernels consume.
//!
//! Every engine entry point (`run_sync`, `run_async`, ...) still accepts a
//! `&dyn` algorithm, so the public API is unchanged — but before entering
//! the round loop it asks the algorithm to identify itself as one of the
//! built-ins via [`IterativeAlgorithm::monomorphized`]. A `Some` answer
//! routes into a kernel instantiated for that concrete type, so `gather`
//! / `apply` / `norm` inline into the per-edge loop (no vtable call per
//! edge); `None` — the default for user-supplied algorithms — falls back
//! to the same kernel instantiated for `dyn IterativeAlgorithm`, which
//! behaves exactly like the historical engines.
//!
//! Dispatch layers, outermost first:
//!
//! 1. [`AlgorithmKind`] / [`DeltaAlgorithmKind`] — enum over the built-in
//!    algorithms, matched **once per run**;
//! 2. the monomorphized kernel (`sync_kernel`, `async_kernel`, ...) — the
//!    round loop with everything statically dispatched;
//! 3. the `dyn` fallback — the same kernel with `A = dyn
//!    IterativeAlgorithm`, for user-supplied boxed algorithms.

use crate::algorithm::IterativeAlgorithm;
use crate::algorithms::{Adsorption, Bfs, ConnectedComponents, Katz, PageRank, Php, Sssp, Sswp};
use crate::delta::{DeltaAlgorithm, DeltaPageRank, DeltaSssp};
use gograph_graph::{CsrGraph, VertexId, Weight};

/// A by-value copy of one of the eight built-in gather algorithms.
///
/// Returned by [`IterativeAlgorithm::monomorphized`]; each variant selects
/// a statically dispatched kernel instantiation.
#[derive(Debug, Clone)]
pub enum AlgorithmKind {
    /// [`PageRank`].
    PageRank(PageRank),
    /// [`Sssp`].
    Sssp(Sssp),
    /// [`Bfs`].
    Bfs(Bfs),
    /// [`Php`].
    Php(Php),
    /// [`ConnectedComponents`].
    ConnectedComponents(ConnectedComponents),
    /// [`Sswp`].
    Sswp(Sswp),
    /// [`Katz`].
    Katz(Katz),
    /// [`Adsorption`].
    Adsorption(Adsorption),
}

/// A by-value copy of one of the built-in delta algorithms — the delta
/// engines' counterpart of [`AlgorithmKind`].
#[derive(Debug, Clone, Copy)]
pub enum DeltaAlgorithmKind {
    /// [`DeltaPageRank`].
    PageRank(DeltaPageRank),
    /// [`DeltaSssp`].
    Sssp(DeltaSssp),
}

/// Opts an algorithm out of kernel monomorphization: the engines treat the
/// wrapped algorithm as user-supplied and run the `dyn`-dispatch fallback
/// path. Used by the equivalence tests and `bench_report` to compare the
/// two paths; delegates every trait method unchanged.
#[derive(Debug, Clone, Copy)]
pub struct DynOnly<A>(pub A);

impl<A: IterativeAlgorithm> IterativeAlgorithm for DynOnly<A> {
    fn name(&self) -> &'static str {
        self.0.name()
    }
    fn init(&self, g: &CsrGraph, v: VertexId) -> f64 {
        self.0.init(g, v)
    }
    fn gather_identity(&self) -> f64 {
        self.0.gather_identity()
    }
    #[inline]
    fn gather(&self, acc: f64, neighbor_state: f64, w: Weight, neighbor_out_degree: usize) -> f64 {
        self.0.gather(acc, neighbor_state, w, neighbor_out_degree)
    }
    #[inline]
    fn apply(&self, g: &CsrGraph, v: VertexId, current: f64, acc: f64) -> f64 {
        self.0.apply(g, v, current, acc)
    }
    fn monotonicity(&self) -> crate::algorithm::Monotonicity {
        self.0.monotonicity()
    }
    fn norm(&self) -> crate::algorithm::ConvergenceNorm {
        self.0.norm()
    }
    fn epsilon(&self) -> f64 {
        self.0.epsilon()
    }
    fn monomorphized(&self) -> Option<AlgorithmKind> {
        None // the whole point of the wrapper
    }
    fn uses_edge_weights(&self) -> bool {
        self.0.uses_edge_weights()
    }
    fn supports_push(&self) -> bool {
        self.0.supports_push()
    }
}

/// [`DynOnly`] for the delta algorithm family.
#[derive(Debug, Clone, Copy)]
pub struct DynOnlyDelta<A>(pub A);

impl<A: DeltaAlgorithm> DeltaAlgorithm for DynOnlyDelta<A> {
    fn name(&self) -> &'static str {
        self.0.name()
    }
    fn init_state(&self, g: &CsrGraph, v: VertexId) -> f64 {
        self.0.init_state(g, v)
    }
    fn init_delta(&self, g: &CsrGraph, v: VertexId) -> f64 {
        self.0.init_delta(g, v)
    }
    fn identity(&self) -> f64 {
        self.0.identity()
    }
    #[inline]
    fn combine(&self, a: f64, b: f64) -> f64 {
        self.0.combine(a, b)
    }
    #[inline]
    fn propagate(&self, g: &CsrGraph, u: VertexId, w: VertexId, weight: Weight, delta: f64) -> f64 {
        self.0.propagate(g, u, w, weight, delta)
    }
    #[inline]
    fn significant(&self, state: f64, delta: f64) -> bool {
        self.0.significant(state, delta)
    }
    fn combine_is_idempotent(&self) -> bool {
        self.0.combine_is_idempotent()
    }
    fn monomorphized(&self) -> Option<DeltaAlgorithmKind> {
        None
    }
}

/// Expands `$body` once per built-in algorithm kind with `$a` bound to the
/// concrete algorithm (monomorphizing the kernel call in `$body`), plus a
/// fallback arm with `$a` bound to the original `&dyn` reference.
macro_rules! dispatch_gather {
    ($alg:expr, $a:ident => $body:expr) => {{
        use $crate::dispatch::AlgorithmKind as __K;
        let __alg = $alg;
        match $crate::algorithm::IterativeAlgorithm::monomorphized(__alg) {
            Some(__K::PageRank($a)) => {
                let $a = &$a;
                $body
            }
            Some(__K::Sssp($a)) => {
                let $a = &$a;
                $body
            }
            Some(__K::Bfs($a)) => {
                let $a = &$a;
                $body
            }
            Some(__K::Php($a)) => {
                let $a = &$a;
                $body
            }
            Some(__K::ConnectedComponents($a)) => {
                let $a = &$a;
                $body
            }
            Some(__K::Sswp($a)) => {
                let $a = &$a;
                $body
            }
            Some(__K::Katz($a)) => {
                let $a = &$a;
                $body
            }
            Some(__K::Adsorption($a)) => {
                let $a = &$a;
                $body
            }
            None => {
                let $a = __alg;
                $body
            }
        }
    }};
}
pub(crate) use dispatch_gather;

/// Delta-family counterpart of [`dispatch_gather!`].
macro_rules! dispatch_delta {
    ($alg:expr, $a:ident => $body:expr) => {{
        use $crate::dispatch::DeltaAlgorithmKind as __K;
        let __alg = $alg;
        match $crate::delta::DeltaAlgorithm::monomorphized(__alg) {
            Some(__K::PageRank($a)) => {
                let $a = &$a;
                $body
            }
            Some(__K::Sssp($a)) => {
                let $a = &$a;
                $body
            }
            None => {
                let $a = __alg;
                $body
            }
        }
    }};
}
pub(crate) use dispatch_delta;

/// Prebuilt per-run gather inputs: the in-adjacency streams plus the
/// graph's cached out-degree array — so the per-edge loop walks
/// contiguous streams with one index instead of re-deriving per-vertex
/// slices and offset pairs, and the PageRank-family `out_degree(u)`
/// lookup is one load. Algorithms whose gather is weight-free
/// ([`IterativeAlgorithm::uses_edge_weights`] `== false`) skip the
/// weight stream entirely.
///
/// The streams come in two variants matching the graph's storage
/// backend: flat slices of the raw CSR arrays, or a decode-per-row view
/// of the compressed adjacency ([`gograph_graph::CompressedAdjacency`])
/// whose varint blocks are decoded inline in the gather loop — no
/// materialized adjacency, same fold order, bit-identical results.
///
/// Construction is `O(1)`: the context borrows the graph's own storage.
pub struct GatherContext<'g> {
    streams: GatherStreams<'g>,
    pub(crate) out_degrees: &'g [u32],
}

/// The per-backend in-edge streams of a [`GatherContext`].
enum GatherStreams<'g> {
    Flat {
        in_offsets: &'g [usize],
        in_sources: &'g [VertexId],
        in_weights: &'g [Weight],
    },
    Compressed {
        adj: &'g gograph_graph::CompressedAdjacency,
        /// `(offsets, weights)` parallel to the decoded rows; `None` for
        /// unit-weight graphs (every edge weight is `1.0`).
        weights: Option<(&'g [usize], &'g [Weight])>,
    },
}

impl<'g> GatherContext<'g> {
    /// Builds the context for `g` (either storage backend).
    pub fn new(g: &'g CsrGraph) -> Self {
        let streams = match g.compressed_in_adjacency() {
            Some(adj) => GatherStreams::Compressed {
                adj,
                weights: g.compressed_in_weight_streams(),
            },
            None => GatherStreams::Flat {
                in_offsets: g.raw_in_offsets(),
                in_sources: g.raw_in_sources(),
                in_weights: g.raw_in_weights(),
            },
        };
        GatherContext {
            streams,
            out_degrees: g.out_degrees(),
        }
    }

    /// The in-edge index range of `v` into the flat streams.
    ///
    /// # Panics
    /// Panics on compressed storage — rows there are byte blocks, not
    /// index ranges; use [`GatherContext::gather_with`].
    #[inline(always)]
    pub fn in_range(&self, v: VertexId) -> (usize, usize) {
        match &self.streams {
            GatherStreams::Flat { in_offsets, .. } => {
                let v = v as usize;
                (in_offsets[v], in_offsets[v + 1])
            }
            GatherStreams::Compressed { .. } => {
                panic!("in_range requires flat storage; compressed rows are byte blocks")
            }
        }
    }

    /// The cached out-degree array (indexed by vertex id).
    #[inline(always)]
    pub fn out_degrees(&self) -> &[u32] {
        self.out_degrees
    }

    /// Folds all of `v`'s in-neighbor contributions into `alg`'s gather
    /// accumulator, reading neighbor states from `states`.
    #[inline(always)]
    pub fn gather<A: IterativeAlgorithm + ?Sized>(
        &self,
        alg: &A,
        v: VertexId,
        states: &[f64],
    ) -> f64 {
        self.gather_with(alg, v, |u| states[u])
    }

    /// [`GatherContext::gather`] parameterized over the state reader —
    /// the single definition of the hot per-edge loop, shared by the
    /// sequential kernels (plain `&[f64]` reads) and the block-parallel
    /// kernel (atomic loads). With a concrete `A` everything inlines,
    /// the `uses_edge_weights` branch constant-folds, and weight-free
    /// algorithms never touch the weight stream.
    #[inline(always)]
    pub fn gather_with<A: IterativeAlgorithm + ?Sized>(
        &self,
        alg: &A,
        v: VertexId,
        read: impl Fn(usize) -> f64,
    ) -> f64 {
        match &self.streams {
            GatherStreams::Flat { in_offsets, .. } => {
                let (s, e) = (in_offsets[v as usize], in_offsets[v as usize + 1]);
                self.gather_range(alg, alg.gather_identity(), s, e, read)
            }
            GatherStreams::Compressed { adj, weights } => {
                let mut acc = alg.gather_identity();
                if alg.uses_edge_weights() {
                    match weights {
                        Some((offsets, ws)) => {
                            // Weighted graph: walk the flat weight stream
                            // in lockstep with the decoded id stream.
                            let mut i = offsets[v as usize];
                            adj.for_each(v, |u| {
                                let u = u as usize;
                                acc = alg.gather(acc, read(u), ws[i], self.out_degrees[u] as usize);
                                i += 1;
                            });
                        }
                        None => {
                            // Weight streams are dropped exactly when
                            // every weight is 1.0, so the constant is the
                            // true per-edge weight here.
                            adj.for_each(v, |u| {
                                let u = u as usize;
                                acc = alg.gather(acc, read(u), 1.0, self.out_degrees[u] as usize);
                            });
                        }
                    }
                } else {
                    adj.for_each(v, |u| {
                        let u = u as usize;
                        acc = alg.gather(acc, read(u), 1.0, self.out_degrees[u] as usize);
                    });
                }
                acc
            }
        }
    }

    /// Folds the in-edge stream slice `[s, e)` into `acc` — the
    /// innermost per-edge loop, also entered mid-list by the blocked
    /// sweep, which folds one source-block span at a time. Flat storage
    /// only ([`crate::BlockedSweep`] declines to build on compressed
    /// graphs, whose rows have no flat index ranges).
    #[inline(always)]
    pub(crate) fn gather_range<A: IterativeAlgorithm + ?Sized>(
        &self,
        alg: &A,
        mut acc: f64,
        s: usize,
        e: usize,
        read: impl Fn(usize) -> f64,
    ) -> f64 {
        let (in_sources, in_weights) = match &self.streams {
            GatherStreams::Flat {
                in_sources,
                in_weights,
                ..
            } => (*in_sources, *in_weights),
            GatherStreams::Compressed { .. } => {
                panic!("gather_range requires flat storage; compressed rows are byte blocks")
            }
        };
        if alg.uses_edge_weights() {
            for i in s..e {
                let u = in_sources[i] as usize;
                acc = alg.gather(acc, read(u), in_weights[i], self.out_degrees[u] as usize);
            }
        } else {
            for &u in &in_sources[s..e] {
                let u = u as usize;
                acc = alg.gather(acc, read(u), 1.0, self.out_degrees[u] as usize);
            }
        }
        acc
    }
}

/// Prebuilt per-run scatter inputs — the push-direction counterpart of
/// [`GatherContext`]: the out-adjacency streams plus the cached
/// out-degree array, so a push round walks an active vertex's out-edges
/// as one contiguous stream (flat slices, or rows decoded from the
/// compressed out-adjacency inline). Construction is `O(1)` (borrows
/// the graph's storage). Holds only shared borrows, so the
/// block-parallel engine scatters through one context from many workers
/// concurrently (target-cell races are resolved by its CAS relaxation
/// loop, not here).
pub struct ScatterContext<'g> {
    streams: ScatterStreams<'g>,
    pub(crate) out_degrees: &'g [u32],
}

/// The per-backend out-edge streams of a [`ScatterContext`].
enum ScatterStreams<'g> {
    Flat {
        out_offsets: &'g [usize],
        out_targets: &'g [VertexId],
        out_weights: &'g [Weight],
    },
    Compressed {
        adj: &'g gograph_graph::CompressedAdjacency,
        weights: Option<(&'g [usize], &'g [Weight])>,
    },
}

// Compile-time thread-safety audit: parallel strategies and snapshot
// readers share these borrowed adjacency views across threads, so they
// must stay `Send + Sync`.
const _: () = {
    const fn require_send_sync<T: Send + Sync>() {}
    require_send_sync::<GatherContext<'static>>();
    require_send_sync::<ScatterContext<'static>>();
};

impl<'g> ScatterContext<'g> {
    /// Builds the context for `g` (either storage backend).
    pub fn new(g: &'g CsrGraph) -> Self {
        let streams = match g.compressed_out_adjacency() {
            Some(adj) => ScatterStreams::Compressed {
                adj,
                weights: g.compressed_out_weight_streams(),
            },
            None => ScatterStreams::Flat {
                out_offsets: g.raw_out_offsets(),
                out_targets: g.raw_out_targets(),
                out_weights: g.raw_out_weights(),
            },
        };
        ScatterContext {
            streams,
            out_degrees: g.out_degrees(),
        }
    }

    /// Out-degree of `v` (one load from the cached array).
    #[inline(always)]
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.out_degrees[v as usize] as usize
    }

    /// Offers `u`'s state along each of its out-edges: `visit(v, cand)`
    /// receives the target and the single-edge gather candidate
    /// `gather(gather_identity(), state_u, w, |OUT(u)|)`. The caller
    /// folds the candidate into the target's state with `apply` — sound
    /// exactly when [`IterativeAlgorithm::supports_push`] holds. With a
    /// concrete `A` the `uses_edge_weights` branch constant-folds and
    /// weight-free algorithms never touch the weight stream.
    #[inline(always)]
    pub fn scatter<A: IterativeAlgorithm + ?Sized>(
        &self,
        alg: &A,
        u: VertexId,
        state_u: f64,
        mut visit: impl FnMut(VertexId, f64),
    ) {
        let ui = u as usize;
        let du = self.out_degrees[ui] as usize;
        let identity = alg.gather_identity();
        match &self.streams {
            ScatterStreams::Flat {
                out_offsets,
                out_targets,
                out_weights,
            } => {
                let (s, e) = (out_offsets[ui], out_offsets[ui + 1]);
                if alg.uses_edge_weights() {
                    for i in s..e {
                        let cand = alg.gather(identity, state_u, out_weights[i], du);
                        visit(out_targets[i], cand);
                    }
                } else {
                    let cand = alg.gather(identity, state_u, 1.0, du);
                    for &v in &out_targets[s..e] {
                        visit(v, cand);
                    }
                }
            }
            ScatterStreams::Compressed { adj, weights } => {
                if alg.uses_edge_weights() {
                    match weights {
                        Some((offsets, ws)) => {
                            let mut i = offsets[ui];
                            adj.for_each(u, |v| {
                                visit(v, alg.gather(identity, state_u, ws[i], du));
                                i += 1;
                            });
                        }
                        None => {
                            let cand = alg.gather(identity, state_u, 1.0, du);
                            adj.for_each(u, |v| visit(v, cand));
                        }
                    }
                } else {
                    let cand = alg.gather(identity, state_u, 1.0, du);
                    adj.for_each(u, |v| visit(v, cand));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::evaluate_vertex;

    #[test]
    fn builtins_identify_themselves() {
        assert!(matches!(
            PageRank::default().monomorphized(),
            Some(AlgorithmKind::PageRank(_))
        ));
        assert!(matches!(
            Sssp::new(3).monomorphized(),
            Some(AlgorithmKind::Sssp(Sssp { source: 3 }))
        ));
        assert!(matches!(
            DeltaSssp { source: 1 }.monomorphized(),
            Some(DeltaAlgorithmKind::Sssp(DeltaSssp { source: 1 }))
        ));
    }

    #[test]
    fn dyn_only_opts_out_but_behaves_identically() {
        let g = CsrGraph::from_edges(3, [(0u32, 2u32, 5.0f64), (1, 2, 1.0)]);
        let plain = Sssp::new(0);
        let wrapped = DynOnly(plain);
        assert!(wrapped.monomorphized().is_none());
        assert!(DynOnlyDelta(DeltaSssp { source: 0 })
            .monomorphized()
            .is_none());
        let states = vec![0.0, 2.0, f64::INFINITY];
        assert_eq!(
            evaluate_vertex(&plain, &g, 2, &states),
            evaluate_vertex(&wrapped, &g, 2, &states)
        );
        assert_eq!(plain.name(), wrapped.name());
    }

    #[test]
    fn gather_context_matches_slice_based_gather() {
        let g = CsrGraph::from_edges(
            4,
            [(0u32, 3u32, 2.0f64), (1, 3, 4.0), (2, 3, 1.0), (0, 1, 1.0)],
        );
        let ctx = GatherContext::new(&g);
        let (s, e) = ctx.in_range(3);
        assert_eq!(&g.raw_in_sources()[s..e], &[0, 1, 2]);
        assert_eq!(&g.raw_in_weights()[s..e], &[2.0, 4.0, 1.0]);
        assert_eq!(ctx.out_degrees(), g.out_degrees());
        let alg = Sssp::new(0);
        let states = vec![0.0, 1.0, 7.0, f64::INFINITY];
        let acc = ctx.gather(&alg, 3, &states);
        let new = alg.apply(&g, 3, states[3], acc);
        assert_eq!(new, evaluate_vertex(&alg, &g, 3, &states));
    }

    #[test]
    fn compressed_contexts_match_flat_contexts() {
        // Weighted and unit-weight graphs, across shard counts: the
        // decode-per-row gather/scatter must reproduce the flat streams'
        // folds bit for bit.
        let weighted = CsrGraph::from_edges(
            5,
            [
                (0u32, 3u32, 2.0f64),
                (1, 3, 4.0),
                (2, 3, 1.0),
                (0, 1, 1.5),
                (3, 4, 0.5),
                (4, 0, 7.0),
            ],
        );
        let unit = CsrGraph::from_edges(5, [(0u32, 3u32), (1, 3), (2, 3), (0, 1), (3, 4), (4, 0)]);
        for g in [&weighted, &unit] {
            let flat_g = GatherContext::new(g);
            let flat_s = ScatterContext::new(g);
            let states = vec![0.3, 1.0, 7.0, 2.0, 0.9];
            for shards in [&[][..], &[2][..], &[1, 2, 3, 4][..]] {
                let c = g.compress_with_shards(shards);
                let ctx = GatherContext::new(&c);
                let sctx = ScatterContext::new(&c);
                let algs: Vec<Box<dyn IterativeAlgorithm>> = vec![
                    Box::new(Sssp::new(0)),
                    Box::new(PageRank::default()),
                    Box::new(Bfs::new(0)),
                ];
                for alg in &algs {
                    let alg = alg.as_ref();
                    for v in g.vertices() {
                        assert_eq!(
                            ctx.gather(alg, v, &states).to_bits(),
                            flat_g.gather(alg, v, &states).to_bits(),
                            "{} gather at {v}",
                            alg.name()
                        );
                        let mut got = Vec::new();
                        sctx.scatter(alg, v, states[v as usize], |t, cand| got.push((t, cand)));
                        let mut want = Vec::new();
                        flat_s.scatter(alg, v, states[v as usize], |t, cand| want.push((t, cand)));
                        assert_eq!(got, want, "{} scatter at {v}", alg.name());
                        assert_eq!(sctx.out_degree(v), flat_s.out_degree(v));
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "flat storage")]
    fn gather_range_panics_on_compressed() {
        let g = CsrGraph::from_edges(3, [(0u32, 1u32), (1, 2)]).compress();
        let ctx = GatherContext::new(&g);
        let _ = ctx.in_range(1);
    }

    #[test]
    fn weight_free_gather_matches_weighted_path() {
        // Every algorithm declaring its gather weight-free must produce,
        // through the skip-the-weights loop, exactly what a loop feeding
        // the *real* per-edge weights produces — this is the test that
        // catches a stale `uses_edge_weights()` flag if a gather starts
        // reading its weight argument.
        let g = CsrGraph::from_edges(
            5,
            [
                (0u32, 3u32, 2.0f64),
                (1, 3, 4.0),
                (0, 1, 9.0),
                (2, 4, 0.5),
                (3, 4, 7.0),
            ],
        );
        let ctx = GatherContext::new(&g);
        let weight_free: Vec<Box<dyn IterativeAlgorithm>> = vec![
            Box::new(PageRank::default()),
            Box::new(Katz::for_graph(&g)),
            Box::new(Bfs::new(0)),
            Box::new(ConnectedComponents),
            Box::new(Php::new(0)),
            Box::new(Adsorption::new(vec![0, 2])),
        ];
        let states = vec![0.3, 0.5, 0.15, 0.15, 0.4];
        for alg in &weight_free {
            let alg = alg.as_ref();
            assert!(!alg.uses_edge_weights(), "{} must be flagged", alg.name());
            for v in g.vertices() {
                assert_eq!(
                    ctx.gather(alg, v, &states),
                    real_weight_gather(alg, &g, v, &states),
                    "{} at vertex {v}",
                    alg.name()
                );
            }
        }
        // DynOnly delegates the flag.
        assert!(!DynOnly(PageRank::default()).uses_edge_weights());
    }

    /// Reference gather using the real per-edge weights (what a
    /// non-skipping loop would feed `gather`).
    fn real_weight_gather(
        alg: &dyn IterativeAlgorithm,
        g: &CsrGraph,
        v: VertexId,
        states: &[f64],
    ) -> f64 {
        let mut acc = alg.gather_identity();
        for (u, w) in g.in_edges(v) {
            acc = alg.gather(acc, states[u as usize], w, g.out_degree(u));
        }
        acc
    }
}
