//! The static-dispatch layer between the [`crate::Pipeline`] API and the
//! engine kernels, plus the prebuilt gather context those kernels consume.
//!
//! Every engine entry point (`run_sync`, `run_async`, ...) still accepts a
//! `&dyn` algorithm, so the public API is unchanged — but before entering
//! the round loop it asks the algorithm to identify itself as one of the
//! built-ins via [`IterativeAlgorithm::monomorphized`]. A `Some` answer
//! routes into a kernel instantiated for that concrete type, so `gather`
//! / `apply` / `norm` inline into the per-edge loop (no vtable call per
//! edge); `None` — the default for user-supplied algorithms — falls back
//! to the same kernel instantiated for `dyn IterativeAlgorithm`, which
//! behaves exactly like the historical engines.
//!
//! Dispatch layers, outermost first:
//!
//! 1. [`AlgorithmKind`] / [`DeltaAlgorithmKind`] — enum over the built-in
//!    algorithms, matched **once per run**;
//! 2. the monomorphized kernel (`sync_kernel`, `async_kernel`, ...) — the
//!    round loop with everything statically dispatched;
//! 3. the `dyn` fallback — the same kernel with `A = dyn
//!    IterativeAlgorithm`, for user-supplied boxed algorithms.

use crate::algorithm::IterativeAlgorithm;
use crate::algorithms::{Adsorption, Bfs, ConnectedComponents, Katz, PageRank, Php, Sssp, Sswp};
use crate::delta::{DeltaAlgorithm, DeltaPageRank, DeltaSssp};
use gograph_graph::{CsrGraph, VertexId, Weight};

/// A by-value copy of one of the eight built-in gather algorithms.
///
/// Returned by [`IterativeAlgorithm::monomorphized`]; each variant selects
/// a statically dispatched kernel instantiation.
#[derive(Debug, Clone)]
pub enum AlgorithmKind {
    /// [`PageRank`].
    PageRank(PageRank),
    /// [`Sssp`].
    Sssp(Sssp),
    /// [`Bfs`].
    Bfs(Bfs),
    /// [`Php`].
    Php(Php),
    /// [`ConnectedComponents`].
    ConnectedComponents(ConnectedComponents),
    /// [`Sswp`].
    Sswp(Sswp),
    /// [`Katz`].
    Katz(Katz),
    /// [`Adsorption`].
    Adsorption(Adsorption),
}

/// A by-value copy of one of the built-in delta algorithms — the delta
/// engines' counterpart of [`AlgorithmKind`].
#[derive(Debug, Clone, Copy)]
pub enum DeltaAlgorithmKind {
    /// [`DeltaPageRank`].
    PageRank(DeltaPageRank),
    /// [`DeltaSssp`].
    Sssp(DeltaSssp),
}

/// Opts an algorithm out of kernel monomorphization: the engines treat the
/// wrapped algorithm as user-supplied and run the `dyn`-dispatch fallback
/// path. Used by the equivalence tests and `bench_report` to compare the
/// two paths; delegates every trait method unchanged.
#[derive(Debug, Clone, Copy)]
pub struct DynOnly<A>(pub A);

impl<A: IterativeAlgorithm> IterativeAlgorithm for DynOnly<A> {
    fn name(&self) -> &'static str {
        self.0.name()
    }
    fn init(&self, g: &CsrGraph, v: VertexId) -> f64 {
        self.0.init(g, v)
    }
    fn gather_identity(&self) -> f64 {
        self.0.gather_identity()
    }
    #[inline]
    fn gather(&self, acc: f64, neighbor_state: f64, w: Weight, neighbor_out_degree: usize) -> f64 {
        self.0.gather(acc, neighbor_state, w, neighbor_out_degree)
    }
    #[inline]
    fn apply(&self, g: &CsrGraph, v: VertexId, current: f64, acc: f64) -> f64 {
        self.0.apply(g, v, current, acc)
    }
    fn monotonicity(&self) -> crate::algorithm::Monotonicity {
        self.0.monotonicity()
    }
    fn norm(&self) -> crate::algorithm::ConvergenceNorm {
        self.0.norm()
    }
    fn epsilon(&self) -> f64 {
        self.0.epsilon()
    }
    fn monomorphized(&self) -> Option<AlgorithmKind> {
        None // the whole point of the wrapper
    }
    fn uses_edge_weights(&self) -> bool {
        self.0.uses_edge_weights()
    }
    fn supports_push(&self) -> bool {
        self.0.supports_push()
    }
}

/// [`DynOnly`] for the delta algorithm family.
#[derive(Debug, Clone, Copy)]
pub struct DynOnlyDelta<A>(pub A);

impl<A: DeltaAlgorithm> DeltaAlgorithm for DynOnlyDelta<A> {
    fn name(&self) -> &'static str {
        self.0.name()
    }
    fn init_state(&self, g: &CsrGraph, v: VertexId) -> f64 {
        self.0.init_state(g, v)
    }
    fn init_delta(&self, g: &CsrGraph, v: VertexId) -> f64 {
        self.0.init_delta(g, v)
    }
    fn identity(&self) -> f64 {
        self.0.identity()
    }
    #[inline]
    fn combine(&self, a: f64, b: f64) -> f64 {
        self.0.combine(a, b)
    }
    #[inline]
    fn propagate(&self, g: &CsrGraph, u: VertexId, w: VertexId, weight: Weight, delta: f64) -> f64 {
        self.0.propagate(g, u, w, weight, delta)
    }
    #[inline]
    fn significant(&self, state: f64, delta: f64) -> bool {
        self.0.significant(state, delta)
    }
    fn combine_is_idempotent(&self) -> bool {
        self.0.combine_is_idempotent()
    }
    fn monomorphized(&self) -> Option<DeltaAlgorithmKind> {
        None
    }
}

/// Expands `$body` once per built-in algorithm kind with `$a` bound to the
/// concrete algorithm (monomorphizing the kernel call in `$body`), plus a
/// fallback arm with `$a` bound to the original `&dyn` reference.
macro_rules! dispatch_gather {
    ($alg:expr, $a:ident => $body:expr) => {{
        use $crate::dispatch::AlgorithmKind as __K;
        let __alg = $alg;
        match $crate::algorithm::IterativeAlgorithm::monomorphized(__alg) {
            Some(__K::PageRank($a)) => {
                let $a = &$a;
                $body
            }
            Some(__K::Sssp($a)) => {
                let $a = &$a;
                $body
            }
            Some(__K::Bfs($a)) => {
                let $a = &$a;
                $body
            }
            Some(__K::Php($a)) => {
                let $a = &$a;
                $body
            }
            Some(__K::ConnectedComponents($a)) => {
                let $a = &$a;
                $body
            }
            Some(__K::Sswp($a)) => {
                let $a = &$a;
                $body
            }
            Some(__K::Katz($a)) => {
                let $a = &$a;
                $body
            }
            Some(__K::Adsorption($a)) => {
                let $a = &$a;
                $body
            }
            None => {
                let $a = __alg;
                $body
            }
        }
    }};
}
pub(crate) use dispatch_gather;

/// Delta-family counterpart of [`dispatch_gather!`].
macro_rules! dispatch_delta {
    ($alg:expr, $a:ident => $body:expr) => {{
        use $crate::dispatch::DeltaAlgorithmKind as __K;
        let __alg = $alg;
        match $crate::delta::DeltaAlgorithm::monomorphized(__alg) {
            Some(__K::PageRank($a)) => {
                let $a = &$a;
                $body
            }
            Some(__K::Sssp($a)) => {
                let $a = &$a;
                $body
            }
            None => {
                let $a = __alg;
                $body
            }
        }
    }};
}
pub(crate) use dispatch_delta;

/// Prebuilt per-run gather inputs: the flat in-adjacency streams
/// (sources and weights, contiguous across all vertices) plus the
/// graph's cached out-degree array — so the per-edge loop walks
/// contiguous streams with one index instead of re-deriving per-vertex
/// slices and offset pairs, and the PageRank-family `out_degree(u)`
/// lookup is one load. Algorithms whose gather is weight-free
/// ([`IterativeAlgorithm::uses_edge_weights`] `== false`) skip the
/// weight stream entirely.
///
/// Construction is `O(1)`: the context borrows the graph's own arrays.
pub struct GatherContext<'g> {
    pub(crate) in_offsets: &'g [usize],
    pub(crate) in_sources: &'g [VertexId],
    pub(crate) in_weights: &'g [Weight],
    pub(crate) out_degrees: &'g [u32],
}

impl<'g> GatherContext<'g> {
    /// Builds the context for `g`.
    pub fn new(g: &'g CsrGraph) -> Self {
        GatherContext {
            in_offsets: g.raw_in_offsets(),
            in_sources: g.raw_in_sources(),
            in_weights: g.raw_in_weights(),
            out_degrees: g.out_degrees(),
        }
    }

    /// The in-edge index range of `v` into the flat streams.
    #[inline(always)]
    pub fn in_range(&self, v: VertexId) -> (usize, usize) {
        let v = v as usize;
        (self.in_offsets[v], self.in_offsets[v + 1])
    }

    /// The cached out-degree array (indexed by vertex id).
    #[inline(always)]
    pub fn out_degrees(&self) -> &[u32] {
        self.out_degrees
    }

    /// Folds all of `v`'s in-neighbor contributions into `alg`'s gather
    /// accumulator, reading neighbor states from `states`.
    #[inline(always)]
    pub fn gather<A: IterativeAlgorithm + ?Sized>(
        &self,
        alg: &A,
        v: VertexId,
        states: &[f64],
    ) -> f64 {
        self.gather_with(alg, v, |u| states[u])
    }

    /// [`GatherContext::gather`] parameterized over the state reader —
    /// the single definition of the hot per-edge loop, shared by the
    /// sequential kernels (plain `&[f64]` reads) and the block-parallel
    /// kernel (atomic loads). With a concrete `A` everything inlines,
    /// the `uses_edge_weights` branch constant-folds, and weight-free
    /// algorithms never touch the weight stream.
    #[inline(always)]
    pub fn gather_with<A: IterativeAlgorithm + ?Sized>(
        &self,
        alg: &A,
        v: VertexId,
        read: impl Fn(usize) -> f64,
    ) -> f64 {
        let (s, e) = self.in_range(v);
        self.gather_range(alg, alg.gather_identity(), s, e, read)
    }

    /// Folds the in-edge stream slice `[s, e)` into `acc` — the
    /// innermost per-edge loop, also entered mid-list by the blocked
    /// sweep, which folds one source-block span at a time.
    #[inline(always)]
    pub(crate) fn gather_range<A: IterativeAlgorithm + ?Sized>(
        &self,
        alg: &A,
        mut acc: f64,
        s: usize,
        e: usize,
        read: impl Fn(usize) -> f64,
    ) -> f64 {
        if alg.uses_edge_weights() {
            for i in s..e {
                let u = self.in_sources[i] as usize;
                acc = alg.gather(
                    acc,
                    read(u),
                    self.in_weights[i],
                    self.out_degrees[u] as usize,
                );
            }
        } else {
            for &u in &self.in_sources[s..e] {
                let u = u as usize;
                acc = alg.gather(acc, read(u), 1.0, self.out_degrees[u] as usize);
            }
        }
        acc
    }
}

/// Prebuilt per-run scatter inputs — the push-direction counterpart of
/// [`GatherContext`]: the flat out-adjacency streams plus the cached
/// out-degree array, so a push round walks an active vertex's out-edges
/// as one contiguous stream. Construction is `O(1)` (borrows the
/// graph's arrays). Holds only shared borrows, so the block-parallel
/// engine scatters through one context from many workers concurrently
/// (target-cell races are resolved by its CAS relaxation loop, not
/// here).
pub struct ScatterContext<'g> {
    pub(crate) out_offsets: &'g [usize],
    pub(crate) out_targets: &'g [VertexId],
    pub(crate) out_weights: &'g [Weight],
    pub(crate) out_degrees: &'g [u32],
}

// Compile-time thread-safety audit: parallel strategies and snapshot
// readers share these borrowed adjacency views across threads, so they
// must stay `Send + Sync`.
const _: () = {
    const fn require_send_sync<T: Send + Sync>() {}
    require_send_sync::<GatherContext<'static>>();
    require_send_sync::<ScatterContext<'static>>();
};

impl<'g> ScatterContext<'g> {
    /// Builds the context for `g`.
    pub fn new(g: &'g CsrGraph) -> Self {
        ScatterContext {
            out_offsets: g.raw_out_offsets(),
            out_targets: g.raw_out_targets(),
            out_weights: g.raw_out_weights(),
            out_degrees: g.out_degrees(),
        }
    }

    /// Out-degree of `v` (one load from the cached array).
    #[inline(always)]
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.out_degrees[v as usize] as usize
    }

    /// Offers `u`'s state along each of its out-edges: `visit(v, cand)`
    /// receives the target and the single-edge gather candidate
    /// `gather(gather_identity(), state_u, w, |OUT(u)|)`. The caller
    /// folds the candidate into the target's state with `apply` — sound
    /// exactly when [`IterativeAlgorithm::supports_push`] holds. With a
    /// concrete `A` the `uses_edge_weights` branch constant-folds and
    /// weight-free algorithms never touch the weight stream.
    #[inline(always)]
    pub fn scatter<A: IterativeAlgorithm + ?Sized>(
        &self,
        alg: &A,
        u: VertexId,
        state_u: f64,
        mut visit: impl FnMut(VertexId, f64),
    ) {
        let ui = u as usize;
        let (s, e) = (self.out_offsets[ui], self.out_offsets[ui + 1]);
        let du = self.out_degrees[ui] as usize;
        let identity = alg.gather_identity();
        if alg.uses_edge_weights() {
            for i in s..e {
                let cand = alg.gather(identity, state_u, self.out_weights[i], du);
                visit(self.out_targets[i], cand);
            }
        } else {
            let cand = alg.gather(identity, state_u, 1.0, du);
            for &v in &self.out_targets[s..e] {
                visit(v, cand);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::evaluate_vertex;

    #[test]
    fn builtins_identify_themselves() {
        assert!(matches!(
            PageRank::default().monomorphized(),
            Some(AlgorithmKind::PageRank(_))
        ));
        assert!(matches!(
            Sssp::new(3).monomorphized(),
            Some(AlgorithmKind::Sssp(Sssp { source: 3 }))
        ));
        assert!(matches!(
            DeltaSssp { source: 1 }.monomorphized(),
            Some(DeltaAlgorithmKind::Sssp(DeltaSssp { source: 1 }))
        ));
    }

    #[test]
    fn dyn_only_opts_out_but_behaves_identically() {
        let g = CsrGraph::from_edges(3, [(0u32, 2u32, 5.0f64), (1, 2, 1.0)]);
        let plain = Sssp::new(0);
        let wrapped = DynOnly(plain);
        assert!(wrapped.monomorphized().is_none());
        assert!(DynOnlyDelta(DeltaSssp { source: 0 })
            .monomorphized()
            .is_none());
        let states = vec![0.0, 2.0, f64::INFINITY];
        assert_eq!(
            evaluate_vertex(&plain, &g, 2, &states),
            evaluate_vertex(&wrapped, &g, 2, &states)
        );
        assert_eq!(plain.name(), wrapped.name());
    }

    #[test]
    fn gather_context_matches_slice_based_gather() {
        let g = CsrGraph::from_edges(
            4,
            [(0u32, 3u32, 2.0f64), (1, 3, 4.0), (2, 3, 1.0), (0, 1, 1.0)],
        );
        let ctx = GatherContext::new(&g);
        let (s, e) = ctx.in_range(3);
        assert_eq!(&ctx.in_sources[s..e], &[0, 1, 2]);
        assert_eq!(&ctx.in_weights[s..e], &[2.0, 4.0, 1.0]);
        assert_eq!(ctx.out_degrees(), g.out_degrees());
        let alg = Sssp::new(0);
        let states = vec![0.0, 1.0, 7.0, f64::INFINITY];
        let acc = ctx.gather(&alg, 3, &states);
        let new = alg.apply(&g, 3, states[3], acc);
        assert_eq!(new, evaluate_vertex(&alg, &g, 3, &states));
    }

    #[test]
    fn weight_free_gather_matches_weighted_path() {
        // Every algorithm declaring its gather weight-free must produce,
        // through the skip-the-weights loop, exactly what a loop feeding
        // the *real* per-edge weights produces — this is the test that
        // catches a stale `uses_edge_weights()` flag if a gather starts
        // reading its weight argument.
        let g = CsrGraph::from_edges(
            5,
            [
                (0u32, 3u32, 2.0f64),
                (1, 3, 4.0),
                (0, 1, 9.0),
                (2, 4, 0.5),
                (3, 4, 7.0),
            ],
        );
        let ctx = GatherContext::new(&g);
        let weight_free: Vec<Box<dyn IterativeAlgorithm>> = vec![
            Box::new(PageRank::default()),
            Box::new(Katz::for_graph(&g)),
            Box::new(Bfs::new(0)),
            Box::new(ConnectedComponents),
            Box::new(Php::new(0)),
            Box::new(Adsorption::new(vec![0, 2])),
        ];
        let states = vec![0.3, 0.5, 0.15, 0.15, 0.4];
        for alg in &weight_free {
            let alg = alg.as_ref();
            assert!(!alg.uses_edge_weights(), "{} must be flagged", alg.name());
            for v in g.vertices() {
                assert_eq!(
                    ctx.gather(alg, v, &states),
                    real_weight_gather(alg, &g, v, &states),
                    "{} at vertex {v}",
                    alg.name()
                );
            }
        }
        // DynOnly delegates the flag.
        assert!(!DynOnly(PageRank::default()).uses_edge_weights());
    }

    /// Reference gather using the real per-edge weights (what a
    /// non-skipping loop would feed `gather`).
    fn real_weight_gather(
        alg: &dyn IterativeAlgorithm,
        g: &CsrGraph,
        v: VertexId,
        states: &[f64],
    ) -> f64 {
        let mut acc = alg.gather_identity();
        for (u, w) in g.in_edges(v) {
            acc = alg.gather(acc, states[u as usize], w, g.out_degree(u));
        }
        acc
    }
}
