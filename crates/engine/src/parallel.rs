//! Parallel block-asynchronous engine.
//!
//! The processing order is cut into contiguous blocks; within a round the
//! blocks run in parallel (rayon), each scanning its slice of the order
//! sequentially and updating a shared atomic state array in place.
//! Within a block the Gauss–Seidel freshness of the async engine is
//! preserved; across concurrently-running blocks reads may see either the
//! old or the new value — safe for monotonic algorithms (the paper's
//! asynchronous-parallel semantics \[14\]): stale reads only delay, never
//! corrupt, the unique fixpoint.

use crate::algorithm::ConvergenceNorm;
use crate::algorithm::IterativeAlgorithm;
use crate::convergence::{state_delta, trace_point, RunStats};
use crate::dispatch::{dispatch_gather, GatherContext};
use crate::runner::RunConfig;
use gograph_graph::{CsrGraph, Permutation};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Atomic f64 cell (bit-cast over `AtomicU64`, relaxed ordering — the
/// monotone-fixpoint argument does not need any ordering guarantees).
struct AtomicF64(AtomicU64);

impl AtomicF64 {
    fn new(x: f64) -> Self {
        AtomicF64(AtomicU64::new(x.to_bits()))
    }

    #[inline]
    fn load(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    #[inline]
    fn store(&self, x: f64) {
        self.0.store(x.to_bits(), Ordering::Relaxed);
    }
}

/// Runs `alg` on `g` with `num_blocks` parallel order blocks per round.
/// `num_blocks = 1` degenerates to the sequential async engine.
pub fn run_parallel(
    g: &CsrGraph,
    alg: &dyn IterativeAlgorithm,
    order: &Permutation,
    num_blocks: usize,
    cfg: &RunConfig,
) -> RunStats {
    dispatch_gather!(alg, a => parallel_kernel(g, a, order, num_blocks, cfg))
}

/// The block-parallel round loop, generic over the algorithm so the
/// per-edge gather inlines inside each block's scan.
pub fn parallel_kernel<A: IterativeAlgorithm + ?Sized>(
    g: &CsrGraph,
    alg: &A,
    order: &Permutation,
    num_blocks: usize,
    cfg: &RunConfig,
) -> RunStats {
    let init: Vec<f64> = (0..g.num_vertices() as u32)
        .map(|v| alg.init(g, v))
        .collect();
    parallel_kernel_warm(g, alg, order, num_blocks, cfg, init)
}

/// [`parallel_kernel`] started from caller-supplied states instead of
/// `alg.init` — the warm-start entry the streaming subsystem uses to
/// resume from a previously converged state.
///
/// # Panics
/// Panics if `init_states.len() != g.num_vertices()` — callers go
/// through [`crate::ExecutionStrategy::run_warm`], which validates
/// first.
pub fn parallel_kernel_warm<A: IterativeAlgorithm + ?Sized>(
    g: &CsrGraph,
    alg: &A,
    order: &Permutation,
    num_blocks: usize,
    cfg: &RunConfig,
    init_states: Vec<f64>,
) -> RunStats {
    let n = g.num_vertices();
    assert_eq!(order.len(), n, "order length must match vertex count");
    assert_eq!(init_states.len(), n, "state length must match vertex count");
    let num_blocks = num_blocks.clamp(1, n.max(1));
    if num_blocks == 1 {
        // One block *is* the sequential async engine — delegate so the
        // degenerate case inherits its direction optimization instead
        // of duplicating a frontier-blind sweep here.
        let mut stats = crate::asynch::async_kernel_warm(g, alg, order, cfg, init_states);
        // Keep this engine's memory accounting shape: states + the
        // single per-block delta buffer.
        stats.state_memory_bytes = (n + 1) * std::mem::size_of::<f64>();
        return stats;
    }
    let ctx = GatherContext::new(g);
    let states: Vec<AtomicF64> = init_states.into_iter().map(AtomicF64::new).collect();
    let eps = alg.epsilon();
    let start = Instant::now();
    let mut trace = Vec::new();
    let snapshot = |states: &[AtomicF64]| -> Vec<f64> { states.iter().map(|s| s.load()).collect() };
    if cfg.record_trace {
        trace.push(trace_point(
            0,
            start.elapsed(),
            f64::INFINITY,
            &snapshot(&states),
        ));
    }

    let block_size = n.div_ceil(num_blocks).max(1);
    let blocks: Vec<&[gograph_graph::VertexId]> = order.order().chunks(block_size).collect();

    let mut rounds = 0usize;
    let mut converged = false;
    while rounds < cfg.max_rounds {
        rounds += 1;
        // Each block returns its local delta; combine per the norm.
        let deltas: Vec<f64> = blocks
            .par_iter()
            .map(|block| {
                let mut local = 0.0f64;
                for &v in block.iter() {
                    let acc = ctx.gather_with(alg, v, |u| states[u].load());
                    let old = states[v as usize].load();
                    let new = alg.apply(g, v, old, acc);
                    let d = state_delta(old, new);
                    match alg.norm() {
                        ConvergenceNorm::Max => local = local.max(d),
                        ConvergenceNorm::Sum => local += d,
                    }
                    states[v as usize].store(new);
                }
                local
            })
            .collect();
        let delta = match alg.norm() {
            ConvergenceNorm::Max => deltas.into_iter().fold(0.0, f64::max),
            ConvergenceNorm::Sum => deltas.into_iter().sum(),
        };
        if cfg.record_trace {
            trace.push(trace_point(
                rounds,
                start.elapsed(),
                delta,
                &snapshot(&states),
            ));
        }
        if delta <= eps {
            converged = true;
            break;
        }
    }

    RunStats {
        rounds,
        runtime: start.elapsed(),
        converged,
        final_states: snapshot(&states),
        trace,
        // Shared atomic state array plus the per-block delta buffers the
        // round barrier collects (blocks.len() <= num_blocks when n is
        // not divisible by the block count).
        state_memory_bytes: (n + blocks.len()) * std::mem::size_of::<f64>(),
        evaluations: None,
        push_rounds: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{PageRank, Sssp};
    use crate::asynch::run_async;
    use gograph_graph::generators::{
        planted_partition, with_random_weights, PlantedPartitionConfig,
    };

    fn test_graph() -> CsrGraph {
        with_random_weights(
            &planted_partition(PlantedPartitionConfig {
                num_vertices: 300,
                num_edges: 2500,
                communities: 8,
                p_intra: 0.8,
                gamma: 2.5,
                seed: 2,
            }),
            1.0,
            5.0,
            9,
        )
    }

    #[test]
    fn parallel_sssp_matches_sequential_fixpoint() {
        let g = test_graph();
        let cfg = RunConfig::default();
        let id = Permutation::identity(300);
        let alg = Sssp::new(0);
        let seq = run_async(&g, &alg, &id, &cfg);
        let par = run_parallel(&g, &alg, &id, 8, &cfg);
        assert!(par.converged);
        assert_eq!(seq.final_states, par.final_states);
    }

    #[test]
    fn parallel_pagerank_matches_fixpoint() {
        let g = test_graph();
        let cfg = RunConfig::default();
        let id = Permutation::identity(300);
        let pr = PageRank::default();
        let seq = run_async(&g, &pr, &id, &cfg);
        let par = run_parallel(&g, &pr, &id, 4, &cfg);
        assert!(par.converged);
        for (x, y) in seq.final_states.iter().zip(&par.final_states) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn one_block_equals_async() {
        let g = test_graph();
        let cfg = RunConfig::default();
        let id = Permutation::identity(300);
        let alg = Sssp::new(0);
        let seq = run_async(&g, &alg, &id, &cfg);
        let par = run_parallel(&g, &alg, &id, 1, &cfg);
        assert_eq!(seq.rounds, par.rounds);
        assert_eq!(seq.final_states, par.final_states);
    }

    #[test]
    fn memory_accounting_counts_actual_blocks() {
        // n=10, num_blocks=7 -> block_size=2 -> only 5 blocks exist; the
        // stat must count the buffers actually allocated.
        let g = gograph_graph::generators::regular::chain(10);
        let cfg = RunConfig::default();
        let stats = run_parallel(&g, &Sssp::new(0), &Permutation::identity(10), 7, &cfg);
        assert_eq!(
            stats.state_memory_bytes,
            (10 + 5) * std::mem::size_of::<f64>()
        );
    }

    #[test]
    fn excessive_block_count_clamped() {
        let g = gograph_graph::generators::regular::chain(5);
        let cfg = RunConfig::default();
        let stats = run_parallel(&g, &Sssp::new(0), &Permutation::identity(5), 1000, &cfg);
        assert!(stats.converged);
        assert_eq!(stats.final_states[4], 4.0);
    }
}
