//! Parallel block-asynchronous engine with direction optimization.
//!
//! The PR 5 push/pull round planner (see [`crate::direction`]) and the
//! block-parallel execution model compose here into one engine:
//!
//! - **dense rounds** cut the processing order into contiguous blocks
//!   (rayon), each scanning its slice sequentially against a shared
//!   atomic state array. Within a block the Gauss–Seidel freshness of
//!   the async engine is preserved; across concurrently-running blocks
//!   reads may see either the old or the new value — safe for monotonic
//!   algorithms (the paper's asynchronous-parallel semantics \[14\]):
//!   stale reads only delay, never corrupt, the unique fixpoint.
//! - **sparse pull rounds** gather only the vertices whose inputs may
//!   have changed, the scheduled positions split into per-worker chunks
//!   swept in parallel.
//! - **push rounds** scatter pending changes over out-edges with CAS
//!   min/max relaxations on the atomic cells ([`AtomicF64::relax`]),
//!   chosen per round by the shared Beamer-style
//!   [`choose_push`] heuristic.
//!
//! Each worker records the positions it changed in its own [`Frontier`]
//! buffer; the buffers merge into one set at the round barrier
//! ([`Frontier::union_with`]), which plans the next round. Unlike the
//! sequential engines there is **no in-round activation** — a change
//! produced mid-round schedules work for the *next* round — so staleness
//! is repaired by rescheduling rather than by sweep order.
//!
//! Determinism contract: max-norm algorithms run to exact stability
//! (`epsilon == 0`) and land on the unique floating-point fixpoint, so
//! final states are **bit-identical across runs and block counts**
//! (round counts may vary). Sum-norm algorithms keep the engine's
//! historical racing-accumulate tolerance contract: runs stop within
//! epsilon of the fixpoint, and racing blocks shift where inside that
//! band each run lands.

use crate::algorithm::{ConvergenceNorm, IterativeAlgorithm};
use crate::convergence::{trace_point, DeltaAccumulator, RunStats};
use crate::direction::{
    choose_push, push_mass, DirectionPolicy, DENSE_EVAL_DENOMINATOR, GENERAL_DENSE_DENOMINATOR,
};
use crate::dispatch::{dispatch_gather, GatherContext, ScatterContext};
use crate::runner::RunConfig;
use gograph_graph::{CsrGraph, Frontier, Permutation, VertexId};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Atomic f64 cell (bit-cast over `AtomicU64`, relaxed ordering — the
/// monotone-fixpoint argument does not need any ordering guarantees).
struct AtomicF64(AtomicU64);

impl AtomicF64 {
    fn new(x: f64) -> Self {
        AtomicF64(AtomicU64::new(x.to_bits()))
    }

    #[inline]
    fn load(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    #[inline]
    fn store(&self, x: f64) {
        self.0.store(x.to_bits(), Ordering::Relaxed);
    }

    /// CAS relaxation loop: replaces the cell with `f(current)` until
    /// the exchange lands or `f` stops improving it. Returns the
    /// `(old, new)` pair of the winning exchange, or `None` when the
    /// cell was already stable under `f`. Lock-free: a failed exchange
    /// means another worker improved the cell concurrently, and the
    /// monotone `f` simply re-derives from the fresher value.
    #[inline]
    fn relax(&self, f: impl Fn(f64) -> f64) -> Option<(f64, f64)> {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let old = f64::from_bits(cur);
            let new = f(old);
            if new == old {
                return None;
            }
            match self.0.compare_exchange_weak(
                cur,
                new.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some((old, new)),
                Err(actual) => cur = actual,
            }
        }
    }
}

/// Below this many scheduled positions a sparse/push round runs inline
/// on the calling thread: fan-out/join overhead would dominate the tail
/// rounds, which on reordered graphs are exactly where the direction
/// machinery wins its edge-work savings. `GOGRAPH_PAR_CUTOFF` overrides
/// (0 forces every round onto the pool — the CI knob that exercises the
/// CAS paths on small graphs under `--release`).
const PAR_ROUND_CUTOFF: usize = 2048;

fn par_round_cutoff() -> usize {
    std::env::var("GOGRAPH_PAR_CUTOFF")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(PAR_ROUND_CUTOFF)
}

/// Runs `alg` on `g` with `num_blocks` parallel order blocks per round.
/// `num_blocks = 1` degenerates to the sequential async engine.
pub fn run_parallel(
    g: &CsrGraph,
    alg: &dyn IterativeAlgorithm,
    order: &Permutation,
    num_blocks: usize,
    cfg: &RunConfig,
) -> RunStats {
    dispatch_gather!(alg, a => parallel_kernel(g, a, order, num_blocks, cfg))
}

/// The block-parallel round loop, generic over the algorithm so the
/// per-edge gather/scatter inlines inside each worker's sweep.
pub fn parallel_kernel<A: IterativeAlgorithm + ?Sized>(
    g: &CsrGraph,
    alg: &A,
    order: &Permutation,
    num_blocks: usize,
    cfg: &RunConfig,
) -> RunStats {
    let init: Vec<f64> = (0..g.num_vertices() as u32)
        .map(|v| alg.init(g, v))
        .collect();
    parallel_kernel_warm(g, alg, order, num_blocks, cfg, init, None)
}

/// [`parallel_kernel`] started from caller-supplied states instead of
/// `alg.init` — the warm-start entry the streaming subsystem uses to
/// resume from a previously converged state.
///
/// `initial_frontier` (vertex ids, as in
/// [`crate::worklist::worklist_kernel_warm`]) seeds the first round as
/// an exact pull set: only the seeded vertices re-gather, and the run
/// grows outward from whatever they change — the warm-start carryover
/// the streaming path feeds through
/// [`crate::strategy::ParallelStrategy::run_warm`]. Without a frontier
/// the first round is a full sweep. The single-block degenerate case
/// delegates to the async engine, which re-evaluates everything on its
/// first round regardless (the frontier is an optimization hint, never
/// required for correctness).
///
/// # Panics
/// Panics if `init_states.len() != g.num_vertices()` — callers go
/// through [`crate::ExecutionStrategy::run_warm`], which validates
/// first.
pub fn parallel_kernel_warm<A: IterativeAlgorithm + ?Sized>(
    g: &CsrGraph,
    alg: &A,
    order: &Permutation,
    num_blocks: usize,
    cfg: &RunConfig,
    init_states: Vec<f64>,
    initial_frontier: Option<&Frontier>,
) -> RunStats {
    let n = g.num_vertices();
    assert_eq!(order.len(), n, "order length must match vertex count");
    assert_eq!(init_states.len(), n, "state length must match vertex count");
    let num_blocks = num_blocks.clamp(1, n.max(1));
    if num_blocks == 1 {
        // One block *is* the sequential async engine — delegate so the
        // degenerate case inherits its direction optimization (and its
        // memory accounting: what it reports is what is allocated).
        return crate::asynch::async_kernel_warm(g, alg, order, cfg, init_states);
    }
    let ctx = GatherContext::new(g);
    let sctx = ScatterContext::new(g);
    let num_edges = g.num_edges();
    // Same policy wiring as the async planner: under PullOnly even
    // push-capable algorithms use the per-target plan.
    let push_ok = alg.supports_push() && cfg.direction != DirectionPolicy::PullOnly;
    let force_push = alg.supports_push() && cfg.direction == DirectionPolicy::PushOnly;
    let dense_denom = if push_ok {
        DENSE_EVAL_DENOMINATOR
    } else {
        GENERAL_DENSE_DENOMINATOR
    };
    let norm = alg.norm();
    let eps = alg.epsilon();
    let cells: Vec<AtomicF64> = init_states.into_iter().map(AtomicF64::new).collect();
    let states = &cells[..];
    let start = Instant::now();
    let mut trace = Vec::new();
    let snapshot = |states: &[AtomicF64]| -> Vec<f64> { states.iter().map(|s| s.load()).collect() };
    if cfg.record_trace {
        trace.push(trace_point(
            0,
            start.elapsed(),
            f64::INFINITY,
            &snapshot(states),
        ));
    }

    let block_size = n.div_ceil(num_blocks).max(1);
    let blocks: Vec<&[VertexId]> = order.order().chunks(block_size).collect();
    // Indexed job list for dense rounds (the vendored rayon shim has no
    // enumerate adapter).
    let dense_jobs: Vec<(usize, &[VertexId])> = blocks.iter().copied().enumerate().collect();
    // Per-worker output buffers: job `i` records the positions it
    // changed in `scratch[i]`, and the barrier merges them into one
    // frontier. Each job locks only its own buffer, so the mutexes are
    // uncontended and exist to satisfy `Sync`.
    let scratch: Vec<Mutex<Frontier>> = (0..blocks.len())
        .map(|_| Mutex::new(Frontier::new(n)))
        .collect();
    let fold_delta = |results: &[(f64, usize)]| -> f64 {
        match norm {
            ConvergenceNorm::Max => results.iter().map(|r| r.0).fold(0.0, f64::max),
            ConvergenceNorm::Sum => results.iter().map(|r| r.0).sum(),
        }
    };

    /// What `work_set` holds going into a round — the async planner's
    /// states minus `Pending` (no in-round activation exists here), plus
    /// `Targets`: the warm-seeded exact pull set.
    #[derive(Clone, Copy, PartialEq)]
    enum Work {
        /// Nothing yet — run a full sweep (cold start / warm restart).
        Dense,
        /// Positions that changed last round; expanded lazily into a
        /// pull schedule (out-neighbors, plus self for the per-target
        /// plan) or used directly as push sources.
        Changed,
        /// Exact pull set (warm-start seed): gather these, nothing else.
        Targets,
        /// Changed positions whose new value has unpropagated out-edges
        /// (per-source plan, `push_ok`).
        Sources,
    }
    let mut work = Work::Dense;
    let mut work_set = Frontier::new(n);
    let mut work_count = 0usize;
    if let Some(seed) = initial_frontier {
        seed.for_each(|v| {
            work_set.insert(order.position(v));
        });
        work_count = work_set.len();
        work = Work::Targets;
    }
    let mut out_set = Frontier::new(n);
    let mut expand = Frontier::new(n);
    let mut sched: Vec<u32> = Vec::new();
    let par_cutoff = par_round_cutoff();

    let mut rounds = 0usize;
    let mut push_rounds = 0usize;
    let mut converged = false;
    while rounds < cfg.max_rounds {
        rounds += 1;
        // Plan the round: push wins whenever the frontier's out-degree
        // mass beats the pull side's true cost. For a trackable-sparse
        // frontier that cost is the out-neighborhood expansion and the
        // Beamer crossover applies unchanged. Past the density cutoff
        // the pull route is a *full* gather sweep plus the follow-up
        // sweep the dropped changed set forces (the dense arm stops
        // tracking members once the round pins itself dense), so push
        // competes against `2|E|` there — and a frontier's out-degree
        // mass never exceeds `|E|`, so push-capable rounds scatter
        // instead of paying two streaming passes. Unlike the sequential
        // async engine the dense sweep holds no Gauss–Seidel freshness
        // edge here (cross-block reads are stale anyway). The Targets
        // round stays a gather by construction — the seeds' *inputs*
        // changed, so scattering their own states would propagate
        // nothing.
        let dense = match work {
            Work::Dense => true,
            // The warm seed is an *exact* pull set: the caller asserts
            // only these vertices' inputs changed, so the first round
            // gathers exactly them no matter how many there are — a
            // density reroute to the full sweep would silently discard
            // the seed and replay the cold trajectory.
            Work::Targets => false,
            Work::Changed | Work::Sources => work_count * dense_denom > n,
        };
        let push = match work {
            Work::Dense => force_push,
            Work::Targets => false,
            Work::Changed | Work::Sources => {
                let pull_bound = if dense { 2 * num_edges } else { num_edges };
                choose_push(
                    cfg.direction,
                    push_ok,
                    push_mass(&work_set, order, ctx.out_degrees()),
                    pull_bound,
                )
            }
        };
        out_set.clear();
        for s in &scratch {
            s.lock().unwrap().clear();
        }
        let delta;
        let out_count;

        if push {
            // Push round: every scheduled source scatters its state over
            // its out-edges; targets are relaxed with a CAS loop, so
            // concurrent relaxations of the same cell all land (each
            // failed exchange retries against the fresher value).
            push_rounds += 1;
            sched.clear();
            match work {
                Work::Dense => sched.extend(0..n as u32),
                _ => work_set.for_each_ascending(|p| sched.push(p)),
            }
            let run_job = |ji: usize, positions: &[u32]| -> (f64, usize) {
                let mut acc = DeltaAccumulator::new(norm);
                let mut out = scratch[ji].lock().unwrap();
                for &pos in positions {
                    let u = order.vertex_at(pos as usize);
                    let su = states[u as usize].load();
                    sctx.scatter(alg, u, su, |v, cand| {
                        if let Some((old, new)) =
                            states[v as usize].relax(|cur| alg.apply(g, v, cur, cand))
                        {
                            acc.record(old, new);
                            out.insert(order.position(v));
                        }
                    });
                }
                (acc.value(), 0)
            };
            let results: Vec<(f64, usize)> = if sched.len() <= par_cutoff {
                vec![run_job(0, &sched)]
            } else {
                let chunk = sched.len().div_ceil(blocks.len()).max(1);
                let jobs: Vec<(usize, &[u32])> = sched.chunks(chunk).enumerate().collect();
                jobs.par_iter().map(|&(ji, p)| run_job(ji, p)).collect()
            };
            delta = fold_delta(&results);
            for s in &scratch {
                out_set.union_with(&s.lock().unwrap());
            }
            out_count = out_set.len();
            work = Work::Sources;
        } else if dense {
            // Dense round: contiguous order blocks in parallel, the
            // historical block-parallel sweep plus changed-member
            // tracking. A block stops materializing members once its own
            // count pins the next round dense (the merge is skipped in
            // that case — only the total count is consulted).
            let results: Vec<(f64, usize)> = dense_jobs
                .par_iter()
                .map(|&(bi, block)| {
                    let mut acc = DeltaAccumulator::new(norm);
                    let mut count = 0usize;
                    let mut out = scratch[bi].lock().unwrap();
                    let base = bi * block_size;
                    let mut track = true;
                    for (i, &v) in block.iter().enumerate() {
                        let a = ctx.gather_with(alg, v, |u| states[u].load());
                        let old = states[v as usize].load();
                        let new = alg.apply(g, v, old, a);
                        acc.record(old, new);
                        if new != old {
                            states[v as usize].store(new);
                            count += 1;
                            if track {
                                out.insert((base + i) as u32);
                                if count * dense_denom > n {
                                    track = false;
                                    out.clear();
                                }
                            }
                        }
                    }
                    (acc.value(), count)
                })
                .collect();
            delta = fold_delta(&results);
            let count: usize = results.iter().map(|r| r.1).sum();
            if count * dense_denom <= n {
                // Every block tracked fully (a partial block alone would
                // have pushed the total past the threshold), so the
                // union is the exact changed set.
                for s in &scratch {
                    out_set.union_with(&s.lock().unwrap());
                }
                work = Work::Changed;
            } else {
                // The changed set overflowed and was dropped; out_set is
                // empty, so the next round must be a full sweep (forced
                // push schedules every source from a Dense work state —
                // scheduling from the empty set would falsely converge).
                work = Work::Dense;
            }
            out_count = count;
        } else {
            // Sparse pull round: schedule exactly the positions whose
            // inputs may have changed, gather them in parallel chunks.
            // Changes reschedule their dependents for the next round —
            // that is how a stale cross-chunk read (a source improving
            // concurrently with its target's gather) is repaired.
            sched.clear();
            match work {
                Work::Targets => work_set.for_each_ascending(|p| sched.push(p)),
                Work::Changed | Work::Sources => {
                    expand.clear();
                    work_set.for_each(|p| {
                        if !push_ok {
                            // Per-target plan: the changed vertex itself
                            // re-evaluates too (exact for any pure
                            // algorithm whose apply reads `cur`).
                            expand.insert(p);
                        }
                        g.for_each_out_neighbor(order.vertex_at(p as usize), |w| {
                            expand.insert(order.position(w));
                        });
                    });
                    expand.for_each_ascending(|p| sched.push(p));
                }
                Work::Dense => unreachable!("dense work is handled by the dense arm"),
            }
            let run_job = |ji: usize, positions: &[u32]| -> (f64, usize) {
                let mut acc = DeltaAccumulator::new(norm);
                let mut count = 0usize;
                let mut out = scratch[ji].lock().unwrap();
                for &pos in positions {
                    let v = order.vertex_at(pos as usize);
                    let a = ctx.gather_with(alg, v, |u| states[u].load());
                    let old = states[v as usize].load();
                    let new = alg.apply(g, v, old, a);
                    acc.record(old, new);
                    if new != old {
                        states[v as usize].store(new);
                        count += 1;
                        out.insert(pos);
                    }
                }
                (acc.value(), count)
            };
            let results: Vec<(f64, usize)> = if sched.len() <= par_cutoff {
                vec![run_job(0, &sched)]
            } else {
                let chunk = sched.len().div_ceil(blocks.len()).max(1);
                let jobs: Vec<(usize, &[u32])> = sched.chunks(chunk).enumerate().collect();
                jobs.par_iter().map(|&(ji, p)| run_job(ji, p)).collect()
            };
            delta = fold_delta(&results);
            for s in &scratch {
                out_set.union_with(&s.lock().unwrap());
            }
            out_count = out_set.len();
            work = if push_ok {
                Work::Sources
            } else {
                Work::Changed
            };
        }

        if cfg.record_trace {
            trace.push(trace_point(
                rounds,
                start.elapsed(),
                delta,
                &snapshot(states),
            ));
        }
        if delta <= eps {
            converged = true;
            break;
        }
        std::mem::swap(&mut work_set, &mut out_set);
        work_count = out_count;
    }

    let scratch_bytes: usize = scratch
        .iter()
        .map(|s| s.lock().unwrap().memory_bytes())
        .sum();
    RunStats {
        rounds,
        runtime: start.elapsed(),
        converged,
        final_states: snapshot(states),
        trace,
        // Shared atomic state array, the per-job (delta, count) cells
        // the round barrier collects (blocks.len() <= num_blocks when n
        // is not divisible by the block count), the planner's frontier
        // sets, the scheduled-position list, and every per-worker output
        // buffer.
        state_memory_bytes: n * std::mem::size_of::<f64>()
            + blocks.len() * std::mem::size_of::<(f64, usize)>()
            + work_set.memory_bytes()
            + out_set.memory_bytes()
            + expand.memory_bytes()
            + sched.capacity() * std::mem::size_of::<u32>()
            + scratch_bytes,
        evaluations: None,
        push_rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{Bfs, PageRank, Sssp};
    use crate::asynch::run_async;
    use gograph_graph::generators::{
        planted_partition, with_random_weights, PlantedPartitionConfig,
    };

    /// Block counts for the CAS-path tests; override with
    /// `GOGRAPH_TEST_THREADS` so CI can exercise wider interleavings
    /// under `--release`.
    fn test_blocks() -> usize {
        std::env::var("GOGRAPH_TEST_THREADS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(4)
    }

    fn test_graph() -> CsrGraph {
        with_random_weights(
            &planted_partition(PlantedPartitionConfig {
                num_vertices: 300,
                num_edges: 2500,
                communities: 8,
                p_intra: 0.8,
                gamma: 2.5,
                seed: 2,
            }),
            1.0,
            5.0,
            9,
        )
    }

    #[test]
    fn parallel_sssp_matches_sequential_fixpoint() {
        let g = test_graph();
        let cfg = RunConfig::default();
        let id = Permutation::identity(300);
        let alg = Sssp::new(0);
        let seq = run_async(&g, &alg, &id, &cfg);
        let par = run_parallel(&g, &alg, &id, 8, &cfg);
        assert!(par.converged);
        assert_eq!(seq.final_states, par.final_states);
    }

    #[test]
    fn parallel_pagerank_matches_fixpoint() {
        let g = test_graph();
        let cfg = RunConfig::default();
        let id = Permutation::identity(300);
        let pr = PageRank::default();
        let seq = run_async(&g, &pr, &id, &cfg);
        let par = run_parallel(&g, &pr, &id, 4, &cfg);
        assert!(par.converged);
        for (x, y) in seq.final_states.iter().zip(&par.final_states) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn one_block_equals_async() {
        let g = test_graph();
        let cfg = RunConfig::default();
        let id = Permutation::identity(300);
        let alg = Sssp::new(0);
        let seq = run_async(&g, &alg, &id, &cfg);
        let par = run_parallel(&g, &alg, &id, 1, &cfg);
        assert_eq!(seq.rounds, par.rounds);
        assert_eq!(seq.final_states, par.final_states);
    }

    #[test]
    fn direction_policies_agree_on_the_parallel_fixpoint() {
        // auto / pull / push, all at several block counts, all land on
        // the async engine's exact states (max-norm unique fixpoint).
        let g = test_graph();
        let cfg_for = |direction| RunConfig {
            direction,
            ..Default::default()
        };
        let id = Permutation::identity(300);
        let alg = Sssp::new(0);
        let reference = run_async(&g, &alg, &id, &cfg_for(DirectionPolicy::Auto));
        for blocks in [2, test_blocks(), 8] {
            for direction in [
                DirectionPolicy::Auto,
                DirectionPolicy::PullOnly,
                DirectionPolicy::PushOnly,
            ] {
                let par = run_parallel(&g, &alg, &id, blocks, &cfg_for(direction));
                assert!(par.converged, "{blocks} blocks / {direction:?}");
                assert_eq!(
                    reference.final_states, par.final_states,
                    "{blocks} blocks / {direction:?}"
                );
                if direction == DirectionPolicy::PushOnly {
                    assert!(par.push_rounds > 0, "PushOnly must scatter");
                }
                if direction == DirectionPolicy::PullOnly {
                    assert_eq!(par.push_rounds, 0, "PullOnly must never scatter");
                }
            }
        }
    }

    #[test]
    fn push_rounds_reported_and_deterministic_across_runs() {
        // CAS-relaxation stress: many blocks, forced push, repeated runs
        // must stay bit-identical (unique max-norm fixpoint).
        let g = test_graph();
        let cfg = RunConfig {
            direction: DirectionPolicy::PushOnly,
            ..Default::default()
        };
        let id = Permutation::identity(300);
        let alg = Bfs::new(0);
        let first = run_parallel(&g, &alg, &id, test_blocks(), &cfg);
        assert!(first.converged);
        assert!(
            first.push_rounds > 0,
            "push_rounds must count scatter rounds"
        );
        assert!(first.push_rounds <= first.rounds);
        for _ in 0..3 {
            let again = run_parallel(&g, &alg, &id, test_blocks(), &cfg);
            assert_eq!(first.final_states, again.final_states);
        }
    }

    #[test]
    fn cas_push_paths_run_on_the_pool_for_large_rounds() {
        // 5000 vertices exceed PAR_ROUND_CUTOFF, so the forced push
        // rounds scatter across the worker pool through the CAS
        // relaxation loop even without the GOGRAPH_PAR_CUTOFF override.
        // The fixpoint must match the async engine bit-for-bit, and
        // repeat runs must be bit-identical.
        let g = with_random_weights(
            &planted_partition(PlantedPartitionConfig {
                num_vertices: 5_000,
                num_edges: 40_000,
                communities: 12,
                p_intra: 0.8,
                gamma: 2.5,
                seed: 7,
            }),
            1.0,
            5.0,
            11,
        );
        let id = Permutation::identity(5_000);
        let alg = Sssp::new(0);
        let reference = run_async(&g, &alg, &id, &RunConfig::default());
        let cfg = RunConfig {
            direction: DirectionPolicy::PushOnly,
            ..Default::default()
        };
        let first = run_parallel(&g, &alg, &id, test_blocks(), &cfg);
        assert!(first.converged);
        assert!(first.push_rounds > 0, "forced push must scatter");
        assert_eq!(reference.final_states, first.final_states);
        let again = run_parallel(&g, &alg, &id, test_blocks(), &cfg);
        assert_eq!(first.final_states, again.final_states);
    }

    #[test]
    fn warm_frontier_seed_converges_from_the_seeded_targets() {
        // Worklist-style warm start: init states + the source's
        // out-neighborhood as the pull seed must reach the cold
        // fixpoint.
        let g = test_graph();
        let cfg = RunConfig::default();
        let id = Permutation::identity(300);
        let alg = Sssp::new(0);
        let cold = run_parallel(&g, &alg, &id, 4, &cfg);
        let init: Vec<f64> = (0..300u32).map(|v| alg.init(&g, v)).collect();
        let seed = Frontier::from_members(300, g.out_neighbors(0).iter().copied());
        let warm = parallel_kernel_warm(&g, &alg, &id, 4, &cfg, init, Some(&seed));
        assert!(warm.converged);
        assert_eq!(cold.final_states, warm.final_states);
        // An empty frontier with fixpoint states confirms in one round.
        let empty = Frontier::new(300);
        let confirm = parallel_kernel_warm(
            &g,
            &alg,
            &id,
            4,
            &cfg,
            cold.final_states.clone(),
            Some(&empty),
        );
        assert_eq!(confirm.rounds, 1);
        assert!(confirm.converged);
    }

    #[test]
    fn memory_accounting_counts_actual_buffers() {
        // n=10, num_blocks=7 -> block_size=2 -> only 5 blocks exist; the
        // stat must count the per-block barrier cells and per-worker
        // frontier buffers actually allocated (5, not 7), on top of the
        // shared state array and the planner's sets.
        let g = gograph_graph::generators::regular::chain(10);
        let cfg = RunConfig::default();
        let stats = run_parallel(&g, &Sssp::new(0), &Permutation::identity(10), 7, &cfg);
        let states = 10 * std::mem::size_of::<f64>();
        let barrier_cells = 5 * std::mem::size_of::<(f64, usize)>();
        // Eight frontiers exist (work/out/expand + 5 worker buffers),
        // each holding at least one bitmap word and one summary word.
        let frontier_floor = 8 * 2 * std::mem::size_of::<u64>();
        assert!(
            stats.state_memory_bytes >= states + barrier_cells + frontier_floor,
            "undercounted: {}",
            stats.state_memory_bytes
        );
        // And strictly more than the pre-fix formula, which ignored the
        // frontier machinery entirely.
        assert!(stats.state_memory_bytes > (10 + 5) * std::mem::size_of::<f64>());
    }

    #[test]
    fn excessive_block_count_clamped() {
        let g = gograph_graph::generators::regular::chain(5);
        let cfg = RunConfig::default();
        let stats = run_parallel(&g, &Sssp::new(0), &Permutation::identity(5), 1000, &cfg);
        assert!(stats.converged);
        assert_eq!(stats.final_states[4], 4.0);
    }
}
