//! The evolving-graph subsystem: a [`StreamingPipeline`] owns a graph
//! together with its converged algorithm state and consumes batches of
//! [`EdgeUpdate`]s, reusing everything a cold [`crate::Pipeline`] run
//! would recompute from scratch.
//!
//! Per batch it
//!
//! 1. folds the updates into an [`IncrementalGoGraph`], which maintains
//!    the positive-edge-maximizing processing order by local
//!    repositioning instead of a full GoGraph re-run;
//! 2. patches the CSR through [`CsrGraph::apply_updates`] (a sorted
//!    merge, no global re-sort);
//! 3. re-runs the full GoGraph reorder only when the maintained order's
//!    positive-edge fraction has drifted more than a configurable
//!    threshold below the fraction the last full run achieved;
//! 4. warm-starts the engine from the previous converged states,
//!    resetting only the *affected frontier* — vertices whose state
//!    could depend on a deleted edge — and seeding re-evaluation at the
//!    endpoints the batch touched.
//!
//! # When is warm-starting sound?
//!
//! For **max-norm** algorithms (SSSP, BFS, CC, SSWP — a vertex's value is
//! witnessed by a single best path) the previous states stay valid
//! bounds after an insert-only batch, and deletions only invalidate
//! vertices whose value loses its *support* — see
//! [`StreamingPipeline::apply_batch`]'s trimming pass: resetting that
//! set to `init` restores validity, so the engines converge to the
//! exact new fixpoint from the warm states. For **sum-norm** algorithms (PageRank,
//! Katz, PHP, Adsorption — a value aggregates *all* paths and degree
//! normalizations) any edge change can move any vertex's fixpoint in
//! either direction, which the monotone-from-init formulation cannot
//! follow downward; those algorithms are conservatively restarted from
//! `init` each batch (the order maintenance and CSR patching are still
//! reused). The same split applies to the delta family: min/max-style
//! (`⊕` idempotent) delta algorithms warm-start with frontier-seeded
//! deltas, sum-style ones restart.

use crate::algorithm::{ConvergenceNorm, IterativeAlgorithm};
use crate::delta::DeltaAlgorithm;
use crate::error::EngineError;
use crate::pipeline::{PipelineResult, StageTimings};
use crate::runner::{Mode, RunConfig};
use crate::strategy::{strategy_for, AlgorithmRef, WarmStart};
use gograph_core::{GoGraph, IncrementalGoGraph};
use gograph_graph::{CsrGraph, EdgeUpdate, Permutation, VertexId};
use std::time::{Duration, Instant};

/// Builder for a [`StreamingPipeline`]; see [`StreamingPipeline::over`].
pub struct StreamingPipelineBuilder {
    graph: CsrGraph,
    mode: Mode,
    gather: Option<Box<dyn IterativeAlgorithm>>,
    delta: Option<Box<dyn DeltaAlgorithm>>,
    cfg: RunConfig,
    drift_threshold: f64,
}

impl StreamingPipelineBuilder {
    /// Selects the execution strategy (default: [`Mode::Async`]).
    pub fn mode(mut self, mode: Mode) -> Self {
        self.mode = mode;
        self
    }

    /// Supplies the gather algorithm (for every mode but `Delta`).
    ///
    /// Custom algorithms: see
    /// [`StreamingPipeline::warm_start_is_sound`] for the contract a
    /// max-norm algorithm must meet to be streamed warm (its gather
    /// must not read the neighbor-out-degree argument).
    pub fn algorithm(mut self, alg: impl IterativeAlgorithm + 'static) -> Self {
        self.gather = Some(Box::new(alg));
        self
    }

    /// Supplies the delta algorithm (for [`Mode::Delta`]).
    pub fn delta_algorithm(mut self, alg: impl DeltaAlgorithm + 'static) -> Self {
        self.delta = Some(Box::new(alg));
        self
    }

    /// Replaces the run configuration shared by every batch execution.
    pub fn config(mut self, cfg: RunConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Safety cap on rounds per batch execution (default 10 000).
    pub fn max_rounds(mut self, n: usize) -> Self {
        self.cfg.max_rounds = n;
        self
    }

    /// Sets how far the maintained order's positive-edge fraction
    /// `M(O)/|E|` may drop below the fraction the last full GoGraph run
    /// achieved before a full reorder + relabel of the order is
    /// triggered (default 0.05). `0.0` re-reorders on any regression;
    /// `1.0` effectively never re-reorders.
    pub fn drift_threshold(mut self, threshold: f64) -> Self {
        self.drift_threshold = threshold;
        self
    }

    /// Bootstraps the pipeline: one full GoGraph reorder of the seed
    /// graph and one cold engine run to the fixpoint. Fails like
    /// [`crate::Pipeline::execute`] on a missing or wrong-family
    /// algorithm, and on a non-finite or negative drift threshold.
    pub fn build(self) -> Result<StreamingPipeline, EngineError> {
        let StreamingPipelineBuilder {
            graph,
            mode,
            gather,
            delta,
            cfg,
            drift_threshold,
        } = self;
        if !(drift_threshold >= 0.0 && drift_threshold.is_finite()) {
            return Err(EngineError::InvalidParameter {
                name: "drift_threshold",
                message: format!("must be finite and >= 0, got {drift_threshold}"),
            });
        }
        let strategy_name = strategy_for(mode).name();
        match mode {
            Mode::Delta(_) => {
                if delta.is_none() {
                    return Err(if gather.is_some() {
                        EngineError::IncompatibleAlgorithm {
                            mode: strategy_name,
                            provided: "gather",
                        }
                    } else {
                        EngineError::MissingAlgorithm {
                            mode: strategy_name,
                            expected: "delta",
                        }
                    });
                }
            }
            _ => {
                if gather.is_none() {
                    return Err(if delta.is_some() {
                        EngineError::IncompatibleAlgorithm {
                            mode: strategy_name,
                            provided: "delta",
                        }
                    } else {
                        EngineError::MissingAlgorithm {
                            mode: strategy_name,
                            expected: "gather",
                        }
                    });
                }
            }
        }

        // Bootstrap reorder: one full GoGraph run, loaded into the
        // incremental maintainer.
        let t = Instant::now();
        let inc = IncrementalGoGraph::from_graph(&graph);
        let order = inc.current_order();
        let baseline_fraction = inc.positive_fraction();
        let reorder_time = t.elapsed();

        let mut pipeline = StreamingPipeline {
            inc,
            graph,
            order,
            mode,
            gather,
            delta,
            cfg,
            drift_threshold,
            baseline_fraction,
            states: Vec::new(),
            last: None,
            total_rounds: 0,
            batches_applied: 0,
            full_reorders: 1, // the bootstrap run
        };

        // Bootstrap execution: a cold run to the initial fixpoint.
        let t = Instant::now();
        let stats = strategy_for(pipeline.mode).run(
            &pipeline.graph,
            pipeline.algorithm_ref(),
            &pipeline.order,
            &pipeline.cfg,
        )?;
        let execute_time = t.elapsed();
        pipeline.absorb(stats, reorder_time, execute_time);
        Ok(pipeline)
    }
}

/// A pipeline over an **evolving** graph: converged state, the
/// incrementally maintained processing order and the CSR all persist
/// across [`StreamingPipeline::apply_batch`] calls, so each batch costs
/// rounds proportional to how far the updates actually perturbed the
/// fixpoint — not a cold recompute.
///
/// ```
/// use gograph_engine::{Mode, Sssp, StreamingPipeline};
/// use gograph_graph::generators::regular::chain;
/// use gograph_graph::EdgeUpdate;
///
/// let g = chain(50);
/// let mut sp = StreamingPipeline::over(&g)
///     .mode(Mode::Async)
///     .algorithm(Sssp::new(0))
///     .build()
///     .unwrap();
/// assert_eq!(sp.states()[49], 49.0);
///
/// // A shortcut edge arrives: the warm-started re-run only has to
/// // propagate the improvement.
/// let r = sp.apply_batch(&[EdgeUpdate::insert(0, 48)]).unwrap();
/// assert!(r.stats.converged);
/// assert_eq!(sp.states()[49], 2.0);
/// ```
pub struct StreamingPipeline {
    inc: IncrementalGoGraph,
    graph: CsrGraph,
    order: Permutation,
    mode: Mode,
    gather: Option<Box<dyn IterativeAlgorithm>>,
    delta: Option<Box<dyn DeltaAlgorithm>>,
    cfg: RunConfig,
    drift_threshold: f64,
    baseline_fraction: f64,
    states: Vec<f64>,
    last: Option<PipelineResult>,
    total_rounds: usize,
    batches_applied: usize,
    full_reorders: usize,
}

impl StreamingPipeline {
    /// Starts building a streaming pipeline seeded from `graph` (which
    /// is copied: the pipeline owns and evolves its graph).
    pub fn over(graph: &CsrGraph) -> StreamingPipelineBuilder {
        StreamingPipelineBuilder {
            graph: graph.clone(),
            mode: Mode::Async,
            gather: None,
            delta: None,
            cfg: RunConfig::default(),
            drift_threshold: 0.05,
        }
    }

    /// Applies one batch of edge updates and re-converges.
    ///
    /// Self-loop updates are skipped (they are neither positive nor
    /// negative under any order, matching [`IncrementalGoGraph`]); a
    /// batch may grow the vertex set by inserting edges whose endpoints
    /// are beyond the current count. An empty batch is a cheap
    /// confirmation run over unchanged state.
    pub fn apply_batch(&mut self, updates: &[EdgeUpdate]) -> Result<PipelineResult, EngineError> {
        let t_maintain = Instant::now();
        let updates: Vec<EdgeUpdate> = updates
            .iter()
            .copied()
            .filter(|u| u.src() != u.dst())
            .collect();

        // Heads of deleted edges: the only vertices whose state can
        // *directly* lose its justification. The affected set proper is
        // trimmed after the CSR is patched, against surviving edges.
        let removal_heads: Vec<VertexId> = updates
            .iter()
            .filter_map(|u| match *u {
                EdgeUpdate::Remove { src, dst }
                    if (src as usize) < self.graph.num_vertices()
                        && self.graph.has_edge(src, dst) =>
                {
                    Some(dst)
                }
                _ => None,
            })
            .collect();

        // Maintain the order and patch the CSR. A (post-filter) empty
        // batch changes nothing, so the CSR rebuild, drift scan and
        // order rematerialization are all skipped — only the cheap
        // confirmation run below remains.
        if !updates.is_empty() {
            self.inc.apply_updates(&updates);
            self.graph = self.graph.apply_updates(&updates);
            debug_assert_eq!(self.inc.num_vertices(), self.graph.num_vertices());

            // Drift-triggered full reorder: fall back to the full
            // GoGraph run only when local repositioning has lost too
            // much metric quality relative to the last full run.
            let fraction = self.inc.positive_fraction();
            if self.baseline_fraction - fraction > self.drift_threshold {
                let full_order = GoGraph::default().run(&self.graph);
                self.inc = IncrementalGoGraph::from_graph_with_order(&self.graph, &full_order);
                self.baseline_fraction = self.inc.positive_fraction();
                self.full_reorders += 1;
            }
            self.order = self.inc.current_order();
        }
        let maintain_time = t_maintain.elapsed();

        // Warm-start preparation: extend state over new vertices, then
        // either carry the converged states (max-norm / min-style) with
        // the affected frontier reset, or restart (sum-norm).
        let n = self.graph.num_vertices();
        for v in self.states.len() as VertexId..n as VertexId {
            self.states.push(self.init_state_of(v));
        }
        let affected = if self.warm_start_is_sound() {
            self.affected_by_deletions(&removal_heads)
        } else {
            Vec::new()
        };
        let warm = if self.warm_start_is_sound() {
            let mut states = self.states.clone();
            let mut frontier: Vec<VertexId> = affected.clone();
            for &v in &affected {
                states[v as usize] = self.init_state_of(v);
            }
            frontier.extend(updates.iter().filter(|u| u.is_insert()).map(|u| u.dst()));
            frontier.sort_unstable();
            frontier.dedup();
            Some(WarmStart::from_states(states).with_frontier(frontier))
        } else {
            None
        };

        // Re-converge.
        let strategy = strategy_for(self.mode);
        let t = Instant::now();
        let stats = match warm {
            Some(w) => {
                strategy.run_warm(&self.graph, self.algorithm_ref(), &self.order, &self.cfg, w)?
            }
            None => strategy.run(&self.graph, self.algorithm_ref(), &self.order, &self.cfg)?,
        };
        let execute_time = t.elapsed();
        self.batches_applied += 1;
        Ok(self.absorb(stats, maintain_time, execute_time))
    }

    /// The current graph (after all applied batches).
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// The maintained processing order.
    pub fn order(&self) -> &Permutation {
        &self.order
    }

    /// The converged per-vertex states, indexed by vertex id.
    pub fn states(&self) -> &[f64] {
        &self.states
    }

    /// The result of the most recent execution (bootstrap or batch).
    pub fn last_result(&self) -> &PipelineResult {
        self.last.as_ref().expect("set by build()")
    }

    /// Total engine rounds across the bootstrap and every batch — the
    /// quantity the warm-vs-cold benchmark compares.
    pub fn total_rounds(&self) -> usize {
        self.total_rounds
    }

    /// Batches applied so far (the bootstrap run is not a batch).
    pub fn batches_applied(&self) -> usize {
        self.batches_applied
    }

    /// Full GoGraph reorders executed, including the bootstrap run.
    pub fn full_reorders(&self) -> usize {
        self.full_reorders
    }

    /// Current positive-edge fraction `M(O)/|E|` of the maintained order.
    pub fn positive_fraction(&self) -> f64 {
        self.inc.positive_fraction()
    }

    /// The positive-edge fraction right after the last full reorder —
    /// the level the drift threshold is measured against.
    pub fn baseline_fraction(&self) -> f64 {
        self.baseline_fraction
    }

    /// Whether batches may reuse the converged states (see the module
    /// docs): max-norm gather algorithms and min/max-style delta
    /// algorithms warm-start; sum-norm ones restart each batch.
    ///
    /// For **user-supplied** max-norm algorithms this classification
    /// additionally assumes the per-edge contribution depends only on
    /// the neighbor's state and the edge weight — *not* on the
    /// neighbor's out-degree (every built-in max-norm algorithm
    /// qualifies; degree normalization is what makes the sum-norm
    /// family unsound here in the first place). A custom max-norm
    /// gather that reads its `neighbor_out_degree` argument couples a
    /// vertex's fixpoint to edges outside its in-neighborhood, which
    /// the insert-frontier seeding does not track — such algorithms
    /// must not be streamed warm.
    pub fn warm_start_is_sound(&self) -> bool {
        match self.mode {
            // Enforced through the trait hook, not inferred from the
            // identity value: a non-idempotent ⊕ defaults to `false`
            // and restarts safely.
            Mode::Delta(_) => self
                .delta
                .as_ref()
                .is_some_and(|a| a.combine_is_idempotent()),
            _ => self
                .gather
                .as_ref()
                .is_some_and(|a| a.norm() == ConvergenceNorm::Max),
        }
    }

    fn algorithm_ref(&self) -> AlgorithmRef<'_> {
        match self.mode {
            Mode::Delta(_) => {
                AlgorithmRef::Delta(self.delta.as_deref().expect("validated by build()"))
            }
            _ => AlgorithmRef::Gather(self.gather.as_deref().expect("validated by build()")),
        }
    }

    /// The algorithm's initial state for `v` on the current graph.
    fn init_state_of(&self, v: VertexId) -> f64 {
        match self.mode {
            Mode::Delta(_) => self
                .delta
                .as_ref()
                .expect("validated by build()")
                .init_state(&self.graph, v),
            _ => self
                .gather
                .as_ref()
                .expect("validated by build()")
                .init(&self.graph, v),
        }
    }

    /// The set of vertices whose converged state is invalidated by the
    /// batch's deletions — KickStarter-style support trimming instead of
    /// a blunt downstream-reachability sweep.
    ///
    /// A vertex keeps its state when it is *supported*: either the
    /// state equals the algorithm's intrinsic value for the vertex (the
    /// source term / `init`), or some surviving in-edge from an
    /// unaffected, strictly-closer-to-the-root neighbor offers exactly
    /// the same value. The strictness requirement (neighbor state
    /// strictly below for decreasing algorithms, strictly above for
    /// increasing ones) makes support chains well-founded, so cyclic
    /// self-support — two stale CC labels justifying each other — cannot
    /// keep an invalidated value alive. Everything that loses
    /// certifiable support cascades.
    ///
    /// Precision depends on the algorithm's value structure: where
    /// candidates strictly progress along edges (SSSP/BFS with positive
    /// weights) surviving witnesses are recognized and deletions stay
    /// surgical; where converged values are *equal* across a region
    /// (CC's per-component labels) strict support can never be
    /// certified, so a deletion conservatively resets the forward
    /// reach of its head within that region even when an alternate
    /// path survives — correct, just cold-run-priced for that batch.
    /// (KickStarter buys back that precision with per-vertex dependence
    /// levels; a future PR could add them.)
    fn affected_by_deletions(&self, seeds: &[VertexId]) -> Vec<VertexId> {
        if seeds.is_empty() {
            return Vec::new();
        }
        let g = &self.graph;
        let states = &self.states;
        let n = g.num_vertices();

        // Per-family hooks: the value a single settled in-edge offers,
        // the vertex's intrinsic value, and the strict progress order.
        let candidate: Box<dyn Fn(VertexId, VertexId, f64, f64) -> f64> = match self.mode {
            Mode::Delta(_) => {
                let alg = self.delta.as_deref().expect("validated by build()");
                Box::new(move |x, v, w, sx| alg.propagate(g, x, v, w, sx))
            }
            _ => {
                let alg = self.gather.as_deref().expect("validated by build()");
                Box::new(move |x, _v, w, sx| {
                    alg.gather(alg.gather_identity(), sx, w, g.out_degree(x))
                })
            }
        };
        let intrinsic: Box<dyn Fn(VertexId) -> f64> = match self.mode {
            Mode::Delta(_) => {
                let alg = self.delta.as_deref().expect("validated by build()");
                Box::new(move |v| alg.combine(alg.init_state(g, v), alg.init_delta(g, v)))
            }
            _ => {
                let alg = self.gather.as_deref().expect("validated by build()");
                Box::new(move |v| alg.init(g, v))
            }
        };
        let decreasing = match self.mode {
            // Min-style delta algorithms start at `+inf` and come down.
            Mode::Delta(_) => self
                .delta
                .as_deref()
                .expect("validated by build()")
                .identity()
                .is_sign_positive(),
            _ => {
                self.gather
                    .as_deref()
                    .expect("validated by build()")
                    .monotonicity()
                    == crate::algorithm::Monotonicity::Decreasing
            }
        };
        let strictly_closer = |sx: f64, sv: f64| if decreasing { sx < sv } else { sx > sv };

        let mut affected = vec![false; n];
        let mut queued = vec![false; n];
        let mut queue: std::collections::VecDeque<VertexId> = std::collections::VecDeque::new();
        for &s in seeds {
            if (s as usize) < n && !queued[s as usize] {
                queued[s as usize] = true;
                queue.push_back(s);
            }
        }
        let mut out = Vec::new();
        while let Some(v) = queue.pop_front() {
            queued[v as usize] = false;
            if affected[v as usize] {
                continue;
            }
            let sv = states[v as usize];
            let same = |a: f64, b: f64| {
                a == b || (a.is_infinite() && b.is_infinite() && a.signum() == b.signum())
            };
            let supported = same(intrinsic(v), sv)
                || g.in_edges(v).any(|(x, w)| {
                    !affected[x as usize]
                        && strictly_closer(states[x as usize], sv)
                        && same(candidate(x, v, w, states[x as usize]), sv)
                });
            if !supported {
                affected[v as usize] = true;
                out.push(v);
                // Everything this vertex may have been supporting needs
                // a recheck.
                for &w in g.out_neighbors(v) {
                    if !affected[w as usize] && !queued[w as usize] {
                        queued[w as usize] = true;
                        queue.push_back(w);
                    }
                }
            }
        }
        out
    }

    /// Records a finished execution into the pipeline's running state
    /// and packages it as a [`PipelineResult`].
    fn absorb(
        &mut self,
        stats: crate::convergence::RunStats,
        reorder_time: Duration,
        execute_time: Duration,
    ) -> PipelineResult {
        self.states.clone_from(&stats.final_states);
        self.total_rounds += stats.rounds;
        let result = PipelineResult {
            order: self.order.clone(),
            relabeled: None,
            stats,
            timings: StageTimings {
                reorder: reorder_time,
                relabel: Duration::ZERO,
                execute: execute_time,
            },
        };
        self.last = Some(result.clone());
        result
    }
}

/// Splits `items` into at most `target` non-empty, order-preserving
/// chunks — the helper for turning an update stream into an
/// [`StreamingPipeline::apply_batch`] schedule. Sizes by `div_ceil`, so
/// when `items.len() < target` it returns fewer (never empty) batches,
/// and an empty input yields an empty schedule.
pub fn split_batches<T: Clone>(items: &[T], target: usize) -> Vec<Vec<T>> {
    if items.is_empty() {
        return Vec::new();
    }
    let size = items.len().div_ceil(target.max(1));
    items.chunks(size).map(<[T]>::to_vec).collect()
}

impl std::fmt::Debug for StreamingPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamingPipeline")
            .field("vertices", &self.graph.num_vertices())
            .field("edges", &self.graph.num_edges())
            .field("mode", &self.mode)
            .field("batches_applied", &self.batches_applied)
            .field("total_rounds", &self.total_rounds)
            .field("full_reorders", &self.full_reorders)
            .field("positive_fraction", &self.inc.positive_fraction())
            .field("baseline_fraction", &self.baseline_fraction)
            .field("drift_threshold", &self.drift_threshold)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{Bfs, ConnectedComponents, PageRank, Sssp};
    use crate::delta::{DeltaPageRank, DeltaSchedule, DeltaSssp};
    use crate::pipeline::Pipeline;
    use gograph_graph::generators::regular::chain;
    use gograph_graph::generators::{planted_partition, shuffle_labels, PlantedPartitionConfig};

    fn seed_graph() -> CsrGraph {
        shuffle_labels(
            &planted_partition(PlantedPartitionConfig {
                num_vertices: 120,
                num_edges: 700,
                communities: 4,
                p_intra: 0.8,
                gamma: 2.4,
                seed: 77,
            }),
            5,
        )
    }

    #[test]
    fn bootstrap_matches_cold_pipeline() {
        let g = seed_graph();
        let sp = StreamingPipeline::over(&g)
            .algorithm(Sssp::new(0))
            .build()
            .unwrap();
        let cold = Pipeline::on(&g)
            .order(sp.order().clone())
            .algorithm(Sssp::new(0))
            .execute()
            .unwrap();
        assert_eq!(sp.states(), &cold.stats.final_states[..]);
        assert_eq!(sp.full_reorders(), 1);
        assert_eq!(sp.batches_applied(), 0);
        assert!(sp.total_rounds() > 0);
    }

    #[test]
    fn insert_only_batch_warm_start_is_exact() {
        let g = chain(60);
        let mut sp = StreamingPipeline::over(&g)
            .algorithm(Sssp::new(0))
            .build()
            .unwrap();
        let r = sp.apply_batch(&[EdgeUpdate::insert(0, 30)]).unwrap();
        assert!(r.stats.converged);
        // Distances past the shortcut drop to hop-count via it.
        assert_eq!(sp.states()[30], 1.0);
        assert_eq!(sp.states()[59], 30.0);
        // Early chain is untouched.
        assert_eq!(sp.states()[10], 10.0);
    }

    #[test]
    fn deletion_resets_downstream_and_reconverges() {
        let g = chain(40);
        let mut sp = StreamingPipeline::over(&g)
            .algorithm(Bfs::new(0))
            .build()
            .unwrap();
        // Cutting the chain at 19 -> 20 strands the tail at infinity.
        let r = sp.apply_batch(&[EdgeUpdate::remove(19, 20)]).unwrap();
        assert!(r.stats.converged);
        assert_eq!(sp.states()[19], 19.0);
        assert!(sp.states()[20].is_infinite());
        assert!(sp.states()[39].is_infinite());
        // Reconnecting through a shortcut heals the tail.
        let r = sp.apply_batch(&[EdgeUpdate::insert(5, 20)]).unwrap();
        assert!(r.stats.converged);
        assert_eq!(sp.states()[20], 6.0);
        assert_eq!(sp.states()[39], 25.0);
    }

    #[test]
    fn sum_norm_algorithms_restart_but_stay_correct() {
        let g = seed_graph();
        let mut sp = StreamingPipeline::over(&g)
            .algorithm(PageRank::default())
            .build()
            .unwrap();
        assert!(!sp.warm_start_is_sound());
        let updates = [
            EdgeUpdate::insert(3, 99),
            EdgeUpdate::insert(99, 3),
            EdgeUpdate::remove(0, 1),
        ];
        let r = sp.apply_batch(&updates).unwrap();
        assert!(r.stats.converged);
        let cold = Pipeline::on(sp.graph())
            .order(sp.order().clone())
            .algorithm(PageRank::default())
            .execute()
            .unwrap();
        assert_eq!(sp.states(), &cold.stats.final_states[..]);
    }

    #[test]
    fn worklist_mode_seeds_only_the_frontier() {
        let g = chain(200);
        let mut sp = StreamingPipeline::over(&g)
            .mode(Mode::Worklist)
            .algorithm(Sssp::new(0))
            .build()
            .unwrap();
        let bootstrap_evals = sp.last_result().stats.evaluations.unwrap();
        let r = sp.apply_batch(&[EdgeUpdate::insert(0, 190)]).unwrap();
        let batch_evals = r.stats.evaluations.unwrap();
        assert!(r.stats.converged);
        assert_eq!(sp.states()[190], 1.0);
        assert_eq!(sp.states()[199], 10.0);
        assert!(
            batch_evals < bootstrap_evals / 2,
            "warm worklist should touch a fraction of the graph: \
             {batch_evals} vs bootstrap {bootstrap_evals}"
        );
    }

    #[test]
    fn delta_mode_warm_starts_min_style() {
        let g = chain(80);
        let mut sp = StreamingPipeline::over(&g)
            .mode(Mode::Delta(DeltaSchedule::RoundRobin))
            .delta_algorithm(DeltaSssp { source: 0 })
            .build()
            .unwrap();
        assert!(sp.warm_start_is_sound());
        let r = sp.apply_batch(&[EdgeUpdate::insert(0, 40)]).unwrap();
        assert!(r.stats.converged);
        assert_eq!(sp.states()[40], 1.0);
        assert_eq!(sp.states()[79], 40.0);
        assert!(
            r.stats.rounds <= 3,
            "warm delta propagation should be local, took {} rounds",
            r.stats.rounds
        );
    }

    #[test]
    fn delta_sum_style_restarts() {
        let g = seed_graph();
        let mut sp = StreamingPipeline::over(&g)
            .mode(Mode::Delta(DeltaSchedule::RoundRobin))
            .delta_algorithm(DeltaPageRank::default())
            .build()
            .unwrap();
        assert!(!sp.warm_start_is_sound());
        let r = sp.apply_batch(&[EdgeUpdate::insert(1, 117)]).unwrap();
        assert!(r.stats.converged);
    }

    #[test]
    fn batches_can_grow_the_vertex_set() {
        let g = chain(10);
        let mut sp = StreamingPipeline::over(&g)
            .algorithm(ConnectedComponents)
            .build()
            .unwrap();
        let r = sp
            .apply_batch(&[EdgeUpdate::insert(9, 12), EdgeUpdate::insert(12, 11)])
            .unwrap();
        assert!(r.stats.converged);
        assert_eq!(sp.graph().num_vertices(), 13);
        assert_eq!(sp.order().len(), 13);
        assert_eq!(sp.states().len(), 13);
        // All of 0..=12 except the isolated 10 collapse to label 0.
        assert_eq!(sp.states()[11], 0.0);
        assert_eq!(sp.states()[12], 0.0);
        assert_eq!(sp.states()[10], 10.0);
    }

    #[test]
    fn drift_threshold_zero_forces_reorders_and_validation_rejects_bad_values() {
        let g = seed_graph();
        for bad in [-0.5, f64::NAN, f64::INFINITY] {
            let err = StreamingPipeline::over(&g)
                .algorithm(Sssp::new(0))
                .drift_threshold(bad)
                .build()
                .unwrap_err();
            assert!(matches!(
                err,
                EngineError::InvalidParameter {
                    name: "drift_threshold",
                    ..
                }
            ));
        }
        let mut eager = StreamingPipeline::over(&g)
            .algorithm(Sssp::new(0))
            .drift_threshold(0.0)
            .build()
            .unwrap();
        let mut lazy = StreamingPipeline::over(&g)
            .algorithm(Sssp::new(0))
            .drift_threshold(1.0)
            .build()
            .unwrap();
        // Adversarial arrivals: edges pointing against the current order.
        for i in 0..8 {
            let order = eager.order().clone();
            let late = order.vertex_at(order.len() - 1 - i);
            let early = order.vertex_at(i);
            let batch = [EdgeUpdate::insert(late, early)];
            eager.apply_batch(&batch).unwrap();
            lazy.apply_batch(&batch).unwrap();
        }
        assert_eq!(lazy.full_reorders(), 1, "threshold 1.0 never re-reorders");
        assert!(
            eager.full_reorders() >= lazy.full_reorders(),
            "threshold 0.0 re-reorders at least as often"
        );
    }

    #[test]
    fn missing_or_mismatched_algorithms_are_reported() {
        let g = chain(5);
        let err = StreamingPipeline::over(&g).build().unwrap_err();
        assert!(matches!(err, EngineError::MissingAlgorithm { .. }));
        let err = StreamingPipeline::over(&g)
            .mode(Mode::Delta(DeltaSchedule::RoundRobin))
            .algorithm(Sssp::new(0))
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            EngineError::IncompatibleAlgorithm {
                provided: "gather",
                ..
            }
        ));
        let err = StreamingPipeline::over(&g)
            .delta_algorithm(DeltaSssp { source: 0 })
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            EngineError::IncompatibleAlgorithm {
                provided: "delta",
                ..
            }
        ));
    }

    #[test]
    fn empty_batch_is_a_cheap_confirmation() {
        let g = seed_graph();
        let mut sp = StreamingPipeline::over(&g)
            .algorithm(Sssp::new(0))
            .build()
            .unwrap();
        let before = sp.states().to_vec();
        let r = sp.apply_batch(&[]).unwrap();
        assert!(r.stats.converged);
        assert_eq!(r.stats.rounds, 1, "already at the fixpoint");
        assert_eq!(sp.states(), &before[..]);
    }

    #[test]
    fn split_batches_is_robust_to_small_inputs() {
        assert!(split_batches::<u32>(&[], 4).is_empty());
        // Fewer items than batches: one-element batches, never empty.
        assert_eq!(split_batches(&[1, 2], 4), vec![vec![1], vec![2]]);
        // Zero target clamps to one batch.
        assert_eq!(split_batches(&[1, 2, 3], 0), vec![vec![1, 2, 3]]);
        // Even split preserves order and covers everything.
        let batches = split_batches(&[1, 2, 3, 4, 5], 2);
        assert_eq!(batches, vec![vec![1, 2, 3], vec![4, 5]]);
    }

    #[test]
    fn self_loops_are_skipped() {
        let g = chain(6);
        let mut sp = StreamingPipeline::over(&g)
            .algorithm(Sssp::new(0))
            .build()
            .unwrap();
        let r = sp
            .apply_batch(&[EdgeUpdate::insert(3, 3), EdgeUpdate::remove(2, 2)])
            .unwrap();
        assert!(r.stats.converged);
        assert_eq!(sp.graph().num_edges(), 5);
        assert!(!sp.graph().has_edge(3, 3));
    }
}
