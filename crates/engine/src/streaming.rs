//! The evolving-graph subsystem: a [`StreamingPipeline`] owns a graph
//! together with its converged algorithm state and consumes batches of
//! [`EdgeUpdate`]s, reusing everything a cold [`crate::Pipeline`] run
//! would recompute from scratch.
//!
//! Per batch it
//!
//! 1. folds the updates into an [`IncrementalGoGraph`], which maintains
//!    the positive-edge-maximizing processing order by local
//!    repositioning instead of a full GoGraph re-run;
//! 2. patches the CSR through [`CsrGraph::apply_updates`] (a sorted
//!    merge, no global re-sort);
//! 3. when the maintained order's positive-edge fraction has drifted
//!    more than a configurable threshold below the fraction the last
//!    full run achieved, repairs it **partition by partition**: the
//!    [`PartitionedOrder`] kept from the last full run says which
//!    partitions' intra fractions degraded, and only those get their
//!    conquer-phase insertion ordering re-run and spliced back
//!    ([`IncrementalGoGraph::reorder_within`]); a full — optionally
//!    parallel — GoGraph reorder happens only if the order is still past
//!    threshold afterwards, i.e. when the partitioning itself has
//!    degraded;
//! 4. warm-starts the engine from the previous converged states,
//!    resetting only the *affected frontier* — vertices whose state
//!    could depend on a deleted edge — and seeding re-evaluation at the
//!    endpoints the batch touched.
//!
//! # When is warm-starting sound?
//!
//! For **max-norm** algorithms (SSSP, BFS, CC, SSWP — a vertex's value is
//! witnessed by a single best path) the previous states stay valid
//! bounds after an insert-only batch, and deletions only invalidate
//! vertices whose value loses its *support* — see
//! [`StreamingPipeline::apply_batch`]'s trimming pass: resetting that
//! set to `init` restores validity, so the engines converge to the
//! exact new fixpoint from the warm states. For **sum-norm** algorithms (PageRank,
//! Katz, PHP, Adsorption — a value aggregates *all* paths and degree
//! normalizations) any edge change can move any vertex's fixpoint in
//! either direction, which the monotone-from-init formulation cannot
//! follow downward; those algorithms are conservatively restarted from
//! `init` each batch (the order maintenance and CSR patching are still
//! reused). The same split applies to the delta family: min/max-style
//! (`⊕` idempotent) delta algorithms warm-start with frontier-seeded
//! deltas, sum-style ones restart.

use crate::algorithm::{ConvergenceNorm, IterativeAlgorithm};
use crate::delta::DeltaAlgorithm;
use crate::error::EngineError;
use crate::pipeline::{PipelineResult, StageTimings};
use crate::runner::{Mode, RunConfig};
use crate::strategy::{strategy_for, AlgorithmRef, WarmStart};
use gograph_core::{
    order_members, partition_contributions, GoGraph, IncrementalGoGraph, PartitionContribution,
    PartitionedOrder, UNPARTITIONED,
};
use gograph_graph::{CsrGraph, EdgeUpdate, Frontier, Permutation, VertexId};
use std::time::{Duration, Instant};

/// Builder for a [`StreamingPipeline`]; see [`StreamingPipeline::over`].
pub struct StreamingPipelineBuilder {
    graph: CsrGraph,
    mode: Mode,
    gather: Option<Box<dyn IterativeAlgorithm>>,
    delta: Option<Box<dyn DeltaAlgorithm>>,
    cfg: RunConfig,
    drift_threshold: f64,
    quality_floor: f64,
    reorder_threads: usize,
    partition_scoped: bool,
}

impl StreamingPipelineBuilder {
    /// Selects the execution strategy (default: [`Mode::Async`]).
    pub fn mode(mut self, mode: Mode) -> Self {
        self.mode = mode;
        self
    }

    /// Supplies the gather algorithm (for every mode but `Delta`).
    ///
    /// Custom algorithms: see
    /// [`StreamingPipeline::warm_start_is_sound`] for the contract a
    /// max-norm algorithm must meet to be streamed warm (its gather
    /// must not read the neighbor-out-degree argument).
    pub fn algorithm(mut self, alg: impl IterativeAlgorithm + 'static) -> Self {
        self.gather = Some(Box::new(alg));
        self
    }

    /// Supplies the delta algorithm (for [`Mode::Delta`]).
    pub fn delta_algorithm(mut self, alg: impl DeltaAlgorithm + 'static) -> Self {
        self.delta = Some(Box::new(alg));
        self
    }

    /// Replaces the run configuration shared by every batch execution.
    pub fn config(mut self, cfg: RunConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Safety cap on rounds per batch execution (default 10 000).
    pub fn max_rounds(mut self, n: usize) -> Self {
        self.cfg.max_rounds = n;
        self
    }

    /// Sets how far the maintained order's positive-edge fraction
    /// `M(O)/|E|` may drop below the fraction the last full GoGraph run
    /// achieved before a full reorder + relabel of the order is
    /// triggered (default 0.05). `0.0` re-reorders on any regression;
    /// `1.0` effectively never re-reorders.
    pub fn drift_threshold(mut self, threshold: f64) -> Self {
        self.drift_threshold = threshold;
        self
    }

    /// Sets the positive-fraction floor below which a drift breach
    /// always escalates to a full reorder instead of accepting local
    /// repairs or a densification re-baseline (default 0.55: the
    /// Theorem-2 guarantee that a fresh GoGraph run reaches at least
    /// `|E|/2` positive edges, plus margin). Lower it toward 0.5 to
    /// tolerate more drift before paying full reorders, raise it to
    /// re-reorder more eagerly; must lie in `[0, 1]`.
    pub fn quality_floor(mut self, floor: f64) -> Self {
        self.quality_floor = floor;
        self
    }

    /// Fans full GoGraph reorders (the bootstrap run and every
    /// drift-triggered fallback) out across `n` workers of the shared
    /// rayon pool via [`gograph_core::ParallelGoGraph`]. The parallel
    /// construction is bit-identical to sequential, so this is purely a
    /// latency knob (default 1).
    pub fn reorder_parallelism(mut self, n: usize) -> Self {
        self.reorder_threads = n.max(1);
        self
    }

    /// Enables or disables partition-scoped re-reordering (default on).
    ///
    /// When on, a drift-threshold breach first re-runs the conquer-phase
    /// insertion ordering for the *dirty* partitions only — those whose
    /// intra-partition positive fraction degraded — splicing each result
    /// back into the maintained order, and escalates to a full reorder
    /// only if the order is still below threshold afterwards (the
    /// partitioning itself has degraded). When off, every breach pays a
    /// full reorder — the pre-PartitionedOrder behaviour, kept for
    /// comparison benchmarks.
    pub fn partition_scoped_reorder(mut self, yes: bool) -> Self {
        self.partition_scoped = yes;
        self
    }

    /// Bootstraps the pipeline: one full GoGraph reorder of the seed
    /// graph and one cold engine run to the fixpoint. Fails like
    /// [`crate::Pipeline::execute`] on a missing or wrong-family
    /// algorithm, and on a non-finite or negative drift threshold.
    pub fn build(self) -> Result<StreamingPipeline, EngineError> {
        let StreamingPipelineBuilder {
            graph,
            mode,
            gather,
            delta,
            cfg,
            drift_threshold,
            quality_floor,
            reorder_threads,
            partition_scoped,
        } = self;
        validate_streaming_params(mode, &gather, &delta, drift_threshold, quality_floor)?;

        // Bootstrap reorder: one full (optionally parallel) GoGraph run,
        // loaded into the incremental maintainer together with its
        // partition structure — the per-partition drift baseline.
        let t = Instant::now();
        let po = GoGraph::default()
            .parallelism(reorder_threads)
            .run_partitioned(&graph);
        let inc = IncrementalGoGraph::from_graph_with_order(&graph, po.order());
        let order = inc.current_order();
        let baseline_fraction = inc.positive_fraction();
        let reorder_time = t.elapsed();

        let mut pipeline = StreamingPipeline {
            inc,
            graph,
            order,
            mode,
            gather,
            delta,
            cfg,
            drift_threshold,
            quality_floor,
            reorder_threads,
            partition_scoped,
            baseline_fraction,
            part_of: Vec::new(),
            part_members: Vec::new(),
            baseline_intra: Vec::new(),
            baseline_density: 0.0,
            states: Vec::new(),
            last: None,
            total_rounds: 0,
            batches_applied: 0,
            full_reorders: 1, // the bootstrap run
            partition_reorders: 0,
            partition_repair_attempts: 0,
        };
        pipeline.adopt_partitioning(&po);

        // Bootstrap execution: a cold run to the initial fixpoint.
        let t = Instant::now();
        let stats = strategy_for(pipeline.mode).run(
            &pipeline.graph,
            pipeline.algorithm_ref(),
            &pipeline.order,
            &pipeline.cfg,
        )?;
        let execute_time = t.elapsed();
        pipeline.absorb(stats, reorder_time, execute_time);
        Ok(pipeline)
    }

    /// Reconstructs a pipeline from a previously
    /// [exported](StreamingPipeline::export_state) state instead of
    /// bootstrapping: no reorder, no cold run — the graph, maintained
    /// order, drift baselines and converged states are adopted as-is and
    /// the incremental order maintainer is rebuilt from the saved
    /// insertion-order keys ([`ResumableState::order_vals`]), restoring
    /// its exact decision state.
    ///
    /// Given the same builder configuration (mode, algorithm, run
    /// config, thresholds) as the exporting pipeline, the resumed
    /// pipeline is **bit-identical going forward**: applying the same
    /// batch sequence to both produces coinciding graphs, orders and
    /// states. This is the foundation of crash recovery — a checkpoint
    /// is an exported state, and WAL replay is `apply_batch` on the
    /// resumed pipeline. The graph passed to [`StreamingPipeline::over`]
    /// is ignored; `state.graph` is authoritative.
    pub fn resume(self, state: ResumableState) -> Result<StreamingPipeline, EngineError> {
        let StreamingPipelineBuilder {
            graph: _,
            mode,
            gather,
            delta,
            cfg,
            drift_threshold,
            quality_floor,
            reorder_threads,
            partition_scoped,
        } = self;
        validate_streaming_params(mode, &gather, &delta, drift_threshold, quality_floor)?;
        let ResumableState {
            graph,
            order_vals,
            order_min_val,
            order_max_val,
            part_of,
            part_members,
            baseline_intra,
            baseline_fraction,
            baseline_density,
            states,
            total_rounds,
            batches_applied,
            full_reorders,
            partition_reorders,
            partition_repair_attempts,
        } = state;
        let n = graph.num_vertices();
        let shape_err =
            |name: &'static str, message: String| EngineError::InvalidParameter { name, message };
        if order_vals.len() != n {
            return Err(shape_err(
                "order_vals",
                format!("order val count {} != vertex count {n}", order_vals.len()),
            ));
        }
        if order_vals.iter().any(|v| v.is_nan())
            || order_vals
                .iter()
                .any(|&v| !(order_min_val <= v && v <= order_max_val))
        {
            return Err(shape_err(
                "order_vals",
                "order vals must be non-NaN and covered by the saved bounds".to_string(),
            ));
        }
        if states.len() != n {
            return Err(shape_err(
                "states",
                format!("state length {} != vertex count {n}", states.len()),
            ));
        }
        if !part_of.is_empty() && part_of.len() != n {
            return Err(shape_err(
                "part_of",
                format!(
                    "partition assignment length {} != vertex count {n}",
                    part_of.len()
                ),
            ));
        }
        if part_members.len() != baseline_intra.len() {
            return Err(shape_err(
                "part_members",
                format!(
                    "{} partitions but {} intra baselines",
                    part_members.len(),
                    baseline_intra.len()
                ),
            ));
        }
        if !(0.0..=1.0).contains(&baseline_fraction) {
            return Err(shape_err(
                "baseline_fraction",
                format!("must be a fraction in [0, 1], got {baseline_fraction}"),
            ));
        }

        let inc = IncrementalGoGraph::from_graph_with_saved_order(
            &graph,
            &order_vals,
            order_min_val,
            order_max_val,
        );
        let order = inc.current_order();
        let mut pipeline = StreamingPipeline {
            inc,
            graph,
            order,
            mode,
            gather,
            delta,
            cfg,
            drift_threshold,
            quality_floor,
            reorder_threads,
            partition_scoped,
            baseline_fraction,
            part_of,
            part_members,
            baseline_intra,
            baseline_density,
            states,
            last: None,
            total_rounds,
            batches_applied,
            full_reorders,
            partition_reorders,
            partition_repair_attempts,
        };
        // A synthetic last-result so `last_result()` is well-defined
        // before the first post-resume batch: the adopted fixpoint.
        let stats = crate::convergence::RunStats {
            rounds: 0,
            runtime: Duration::ZERO,
            converged: true,
            final_states: pipeline.states.clone(),
            trace: Vec::new(),
            state_memory_bytes: 0,
            evaluations: None,
            push_rounds: 0,
        };
        pipeline.last = Some(PipelineResult {
            order: pipeline.order.clone(),
            relabeled: None,
            stats,
            timings: StageTimings {
                reorder: Duration::ZERO,
                relabel: Duration::ZERO,
                execute: Duration::ZERO,
            },
        });
        Ok(pipeline)
    }
}

/// Shared parameter validation for [`StreamingPipelineBuilder::build`]
/// and [`StreamingPipelineBuilder::resume`].
fn validate_streaming_params(
    mode: Mode,
    gather: &Option<Box<dyn IterativeAlgorithm>>,
    delta: &Option<Box<dyn DeltaAlgorithm>>,
    drift_threshold: f64,
    quality_floor: f64,
) -> Result<(), EngineError> {
    if !(drift_threshold >= 0.0 && drift_threshold.is_finite()) {
        return Err(EngineError::InvalidParameter {
            name: "drift_threshold",
            message: format!("must be finite and >= 0, got {drift_threshold}"),
        });
    }
    if !(0.0..=1.0).contains(&quality_floor) {
        return Err(EngineError::InvalidParameter {
            name: "quality_floor",
            message: format!("must be a fraction in [0, 1], got {quality_floor}"),
        });
    }
    let strategy_name = strategy_for(mode).name();
    match mode {
        Mode::Delta(_) => {
            if delta.is_none() {
                return Err(if gather.is_some() {
                    EngineError::IncompatibleAlgorithm {
                        mode: strategy_name,
                        provided: "gather",
                    }
                } else {
                    EngineError::MissingAlgorithm {
                        mode: strategy_name,
                        expected: "delta",
                    }
                });
            }
        }
        _ => {
            if gather.is_none() {
                return Err(if delta.is_some() {
                    EngineError::IncompatibleAlgorithm {
                        mode: strategy_name,
                        provided: "delta",
                    }
                } else {
                    EngineError::MissingAlgorithm {
                        mode: strategy_name,
                        expected: "gather",
                    }
                });
            }
        }
    }
    Ok(())
}

/// A value-complete snapshot of a [`StreamingPipeline`]'s evolving
/// state — everything `apply_batch` reads that is not builder
/// configuration. Exported by [`StreamingPipeline::export_state`] and
/// consumed by [`StreamingPipelineBuilder::resume`]; the serve crate's
/// checkpoint format is a serialization of this.
#[derive(Debug, Clone)]
pub struct ResumableState {
    /// The evolved graph.
    pub graph: CsrGraph,
    /// Per-vertex float keys of the maintained insertion order — the
    /// *full* behavioral state, from which the [`Permutation`] is
    /// derived. The induced permutation alone is not enough for
    /// bit-identical resume: future repositioning decisions depend on
    /// the exact keys (midpoints, collision nudges).
    pub order_vals: Vec<f64>,
    /// Sticky head/tail bounds of the insertion order (`remove` never
    /// shrinks them, so they can be wider than the vals imply).
    pub order_min_val: f64,
    /// See [`ResumableState::order_min_val`].
    pub order_max_val: f64,
    /// Vertex → partition of the last full reorder.
    pub part_of: Vec<u32>,
    /// Members of each partition, as of the last full reorder.
    pub part_members: Vec<Vec<VertexId>>,
    /// Per-partition intra positive-fraction baselines.
    pub baseline_intra: Vec<PartitionContribution>,
    /// The positive fraction the last full reorder achieved.
    pub baseline_fraction: f64,
    /// Edges-per-vertex at the last full reorder or re-baseline.
    pub baseline_density: f64,
    /// The converged per-vertex states.
    pub states: Vec<f64>,
    /// Engine rounds across the bootstrap and every batch.
    pub total_rounds: usize,
    /// Batches applied so far.
    pub batches_applied: usize,
    /// Full reorders executed (bootstrap included).
    pub full_reorders: usize,
    /// Partition-scoped re-reorders adopted.
    pub partition_reorders: usize,
    /// Partition-scoped repair attempts.
    pub partition_repair_attempts: usize,
}

/// A pipeline over an **evolving** graph: converged state, the
/// incrementally maintained processing order and the CSR all persist
/// across [`StreamingPipeline::apply_batch`] calls, so each batch costs
/// rounds proportional to how far the updates actually perturbed the
/// fixpoint — not a cold recompute.
///
/// ```
/// use gograph_engine::{Mode, Sssp, StreamingPipeline};
/// use gograph_graph::generators::regular::chain;
/// use gograph_graph::EdgeUpdate;
///
/// let g = chain(50);
/// let mut sp = StreamingPipeline::over(&g)
///     .mode(Mode::Async)
///     .algorithm(Sssp::new(0))
///     .build()
///     .unwrap();
/// assert_eq!(sp.states()[49], 49.0);
///
/// // A shortcut edge arrives: the warm-started re-run only has to
/// // propagate the improvement.
/// let r = sp.apply_batch(&[EdgeUpdate::insert(0, 48)]).unwrap();
/// assert!(r.stats.converged);
/// assert_eq!(sp.states()[49], 2.0);
/// ```
pub struct StreamingPipeline {
    inc: IncrementalGoGraph,
    graph: CsrGraph,
    order: Permutation,
    mode: Mode,
    gather: Option<Box<dyn IterativeAlgorithm>>,
    delta: Option<Box<dyn DeltaAlgorithm>>,
    cfg: RunConfig,
    drift_threshold: f64,
    quality_floor: f64,
    reorder_threads: usize,
    partition_scoped: bool,
    baseline_fraction: f64,
    /// Vertex → partition of the last full reorder; vertices that joined
    /// since are [`UNPARTITIONED`] until the next full reorder.
    part_of: Vec<u32>,
    /// Members of each partition, as of the last full reorder.
    part_members: Vec<Vec<VertexId>>,
    /// Per-partition intra positive fraction right after the last full
    /// reorder — what per-partition drift is measured against.
    baseline_intra: Vec<PartitionContribution>,
    /// Edges-per-vertex at the last full reorder (or re-baseline): the
    /// evidence check for the densification re-baseline rule.
    baseline_density: f64,
    states: Vec<f64>,
    last: Option<PipelineResult>,
    total_rounds: usize,
    batches_applied: usize,
    full_reorders: usize,
    partition_reorders: usize,
    partition_repair_attempts: usize,
}

impl StreamingPipeline {
    /// Starts building a streaming pipeline seeded from `graph` (which
    /// is copied: the pipeline owns and evolves its graph).
    pub fn over(graph: &CsrGraph) -> StreamingPipelineBuilder {
        StreamingPipelineBuilder {
            graph: graph.clone(),
            mode: Mode::Async,
            gather: None,
            delta: None,
            cfg: RunConfig::default(),
            drift_threshold: 0.05,
            quality_floor: Self::DEFAULT_QUALITY_FLOOR,
            reorder_threads: 1,
            partition_scoped: true,
        }
    }

    /// Applies one batch of edge updates and re-converges.
    ///
    /// Self-loop updates are skipped (they are neither positive nor
    /// negative under any order, matching [`IncrementalGoGraph`]); a
    /// batch may grow the vertex set by inserting edges whose endpoints
    /// are beyond the current count. An empty batch is a cheap
    /// confirmation run over unchanged state.
    pub fn apply_batch(&mut self, updates: &[EdgeUpdate]) -> Result<PipelineResult, EngineError> {
        let t_maintain = Instant::now();
        let updates: Vec<EdgeUpdate> = updates
            .iter()
            .copied()
            .filter(|u| u.src() != u.dst())
            .collect();

        // Heads of deleted edges: the only vertices whose state can
        // *directly* lose its justification. The affected set proper is
        // trimmed after the CSR is patched, against surviving edges.
        let removal_heads: Vec<VertexId> = updates
            .iter()
            .filter_map(|u| match *u {
                EdgeUpdate::Remove { src, dst }
                    if (src as usize) < self.graph.num_vertices()
                        && self.graph.has_edge(src, dst) =>
                {
                    Some(dst)
                }
                _ => None,
            })
            .collect();

        // Maintain the order and patch the CSR. A (post-filter) empty
        // batch changes nothing, so the CSR rebuild, drift scan and
        // order rematerialization are all skipped — only the cheap
        // confirmation run below remains.
        if !updates.is_empty() {
            self.inc.apply_updates(&updates);
            self.graph = self.graph.apply_updates(&updates);
            debug_assert_eq!(self.inc.num_vertices(), self.graph.num_vertices());
            // Vertices that joined mid-stream belong to no partition
            // until the next full reorder re-partitions them.
            self.part_of
                .resize(self.graph.num_vertices(), UNPARTITIONED);

            // Drift-triggered repair: partition-scoped re-reordering
            // first, full (parallel) reorder only if that is not enough.
            let fraction = self.inc.positive_fraction();
            if self.baseline_fraction - fraction > self.drift_threshold {
                self.repair_order();
            }
            self.order = self.inc.current_order();
        }
        let maintain_time = t_maintain.elapsed();

        // Warm-start preparation: extend state over new vertices, then
        // either carry the converged states (max-norm / min-style) with
        // the affected frontier reset, or restart (sum-norm). The
        // frontier reaches every frontier-consuming engine — worklist,
        // block-parallel (its first round pulls exactly this set), and
        // the delta family.
        let n = self.graph.num_vertices();
        for v in self.states.len() as VertexId..n as VertexId {
            self.states.push(self.init_state_of(v));
        }
        let affected = if self.warm_start_is_sound() {
            self.affected_by_deletions(&removal_heads)
        } else {
            Vec::new()
        };
        let warm = if self.warm_start_is_sound() {
            let mut states = self.states.clone();
            let mut frontier = Frontier::new(n);
            for &v in &affected {
                states[v as usize] = self.init_state_of(v);
                frontier.insert(v);
            }
            for u in updates.iter().filter(|u| u.is_insert()) {
                frontier.insert(u.dst());
            }
            Some(WarmStart::from_states(states).with_frontier_set(frontier))
        } else {
            None
        };

        // Re-converge.
        let strategy = strategy_for(self.mode);
        let t = Instant::now();
        let stats = match warm {
            Some(w) => {
                strategy.run_warm(&self.graph, self.algorithm_ref(), &self.order, &self.cfg, w)?
            }
            None => strategy.run(&self.graph, self.algorithm_ref(), &self.order, &self.cfg)?,
        };
        let execute_time = t.elapsed();
        self.batches_applied += 1;
        Ok(self.absorb(stats, maintain_time, execute_time))
    }

    /// Snapshots everything `apply_batch` evolves into a
    /// [`ResumableState`], from which
    /// [`StreamingPipelineBuilder::resume`] reconstructs a pipeline
    /// that behaves bit-identically from this point on. The graph
    /// payload is `Arc`-shared (cheap); orders, baselines and states
    /// are value copies.
    pub fn export_state(&self) -> ResumableState {
        let (order_vals, order_min_val, order_max_val) = self.inc.order_state();
        ResumableState {
            graph: self.graph.snapshot(),
            order_vals,
            order_min_val,
            order_max_val,
            part_of: self.part_of.clone(),
            part_members: self.part_members.clone(),
            baseline_intra: self.baseline_intra.clone(),
            baseline_fraction: self.baseline_fraction,
            baseline_density: self.baseline_density,
            states: self.states.clone(),
            total_rounds: self.total_rounds,
            batches_applied: self.batches_applied,
            full_reorders: self.full_reorders,
            partition_reorders: self.partition_reorders,
            partition_repair_attempts: self.partition_repair_attempts,
        }
    }

    /// The current graph (after all applied batches).
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// The maintained processing order.
    pub fn order(&self) -> &Permutation {
        &self.order
    }

    /// The converged per-vertex states, indexed by vertex id.
    pub fn states(&self) -> &[f64] {
        &self.states
    }

    /// The result of the most recent execution (bootstrap or batch).
    pub fn last_result(&self) -> &PipelineResult {
        self.last.as_ref().expect("set by build()")
    }

    /// Total engine rounds across the bootstrap and every batch — the
    /// quantity the warm-vs-cold benchmark compares.
    pub fn total_rounds(&self) -> usize {
        self.total_rounds
    }

    /// Batches applied so far (the bootstrap run is not a batch).
    pub fn batches_applied(&self) -> usize {
        self.batches_applied
    }

    /// Full GoGraph reorders executed, including the bootstrap run.
    pub fn full_reorders(&self) -> usize {
        self.full_reorders
    }

    /// Partition-scoped re-reorders **adopted**: conquer-phase re-runs
    /// over single dirty partitions whose result actually changed the
    /// maintained order (splices the keep/rollback check rejected, or
    /// that matched the current arrangement, are not counted — see
    /// [`StreamingPipeline::partition_repair_attempts`]).
    pub fn partition_reorders(&self) -> usize {
        self.partition_reorders
    }

    /// Partition-scoped repair *attempts*: every dirty partition whose
    /// conquer ordering was re-run on a drift breach, whether or not the
    /// resulting splice was adopted.
    pub fn partition_repair_attempts(&self) -> usize {
        self.partition_repair_attempts
    }

    /// Partitions tracked from the last full reorder (the divide phase's
    /// output; mid-stream vertices stay unpartitioned until the next
    /// full run).
    pub fn num_partitions(&self) -> usize {
        self.part_members.len()
    }

    /// Vertex → partition id from the last full reorder
    /// ([`UNPARTITIONED`] for vertices that joined since)
    /// — exposed so an epoch publisher can snapshot the partition
    /// structure alongside the order. Empty until the first full
    /// reorder of a partition-scoped pipeline.
    pub fn part_assignment(&self) -> &[u32] {
        &self.part_of
    }

    /// Default [`StreamingPipelineBuilder::quality_floor`]: Theorem 2
    /// guarantees a fresh GoGraph run at least `|E|/2` positive edges,
    /// so under 0.5-plus-margin the full run is certain to be worth
    /// paying.
    pub const DEFAULT_QUALITY_FLOOR: f64 = 0.55;

    /// The configured positive-fraction floor below which a drift
    /// breach always escalates to a full reorder (see
    /// [`StreamingPipelineBuilder::quality_floor`]).
    pub fn quality_floor(&self) -> f64 {
        self.quality_floor
    }

    /// On a drift breach, repairs the order as locally as possible.
    ///
    /// 1. Re-runs the conquer-phase greedy for each *dirty* partition
    ///    (intra positive fraction degraded beyond half the threshold —
    ///    local repair is cheap, so it triggers more eagerly than the
    ///    global fallback) and splices the results into the maintained
    ///    order.
    /// 2. If the order is back within threshold, done: the partition
    ///    repairs replaced a full reorder.
    /// 3. Otherwise, escalate to a full parallel reorder unless the
    ///    residual drift is demonstrably *densification*: the breach can
    ///    skip the full reorder only when local repairs recovered
    ///    nothing (the order is partition-locally optimal), the fraction
    ///    is still comfortably above the Theorem-2 floor, **and** the
    ///    graph has actually grown denser since the last full run — a
    ///    baseline computed on a sparser graph is then no longer
    ///    achievable by anyone, full rerun included (which local
    ///    repositioning routinely *beats* in that regime), so the
    ///    breach **re-baselines** to the current fraction instead of
    ///    paying a full reorder that would lower order quality. Without
    ///    the density evidence (e.g. deletion-driven cross-partition
    ///    decay) the full reorder runs, exactly as it did pre-PR-4.
    fn repair_order(&mut self) {
        let before = self.inc.positive_fraction();
        if self.partition_scoped && !self.part_members.is_empty() {
            let order_now = self.inc.current_order();
            let (intra, _cross) = partition_contributions(
                &self.graph,
                &self.part_of,
                &order_now,
                self.part_members.len(),
            );
            let local_threshold = self.drift_threshold / 2.0;
            for (members, (cur, base)) in self
                .part_members
                .iter()
                .zip(intra.iter().zip(&self.baseline_intra))
            {
                if cur.total > 0 && base.fraction() - cur.fraction() > local_threshold {
                    let repaired = order_members(&self.graph, members);
                    self.partition_repair_attempts += 1;
                    if self.inc.reorder_within(&repaired) {
                        self.partition_reorders += 1;
                    }
                }
            }
        }
        let now = self.inc.positive_fraction();
        if self.baseline_fraction - now <= self.drift_threshold {
            return;
        }
        let repairs_recovered = now - before > self.drift_threshold * 0.1;
        let densified = self.density() > self.baseline_density;
        if !self.partition_scoped || repairs_recovered || !densified || now < self.quality_floor {
            let po = GoGraph::default()
                .parallelism(self.reorder_threads)
                .run_partitioned(&self.graph);
            self.inc = IncrementalGoGraph::from_graph_with_order(&self.graph, po.order());
            self.adopt_partitioning(&po);
            self.baseline_fraction = self.inc.positive_fraction();
            self.full_reorders += 1;
        } else {
            // Densification drift: adopt the current (locally optimal)
            // order as the new reference, per partition too.
            self.baseline_fraction = now;
            self.baseline_density = self.density();
            let order_now = self.inc.current_order();
            let (intra, _cross) = partition_contributions(
                &self.graph,
                &self.part_of,
                &order_now,
                self.part_members.len(),
            );
            self.baseline_intra = intra;
        }
    }

    /// Edges per vertex of the current graph.
    fn density(&self) -> f64 {
        self.graph.num_edges() as f64 / self.graph.num_vertices().max(1) as f64
    }

    /// Loads the partition structure of a fresh full reorder as the new
    /// per-partition drift baseline.
    fn adopt_partitioning(&mut self, po: &PartitionedOrder) {
        self.part_of = po.part_assignment().to_vec();
        self.part_members = (0..po.num_parts() as u32)
            .map(|p| po.members(p).to_vec())
            .collect();
        self.baseline_intra = (0..po.num_parts() as u32)
            .map(|p| po.intra_contribution(p))
            .collect();
        self.baseline_density = self.density();
    }

    /// Current positive-edge fraction `M(O)/|E|` of the maintained order.
    pub fn positive_fraction(&self) -> f64 {
        self.inc.positive_fraction()
    }

    /// The positive-edge fraction right after the last full reorder —
    /// the level the drift threshold is measured against.
    pub fn baseline_fraction(&self) -> f64 {
        self.baseline_fraction
    }

    /// Whether batches may reuse the converged states (see the module
    /// docs): max-norm gather algorithms and min/max-style delta
    /// algorithms warm-start; sum-norm ones restart each batch.
    ///
    /// For **user-supplied** max-norm algorithms this classification
    /// additionally assumes the per-edge contribution depends only on
    /// the neighbor's state and the edge weight — *not* on the
    /// neighbor's out-degree (every built-in max-norm algorithm
    /// qualifies; degree normalization is what makes the sum-norm
    /// family unsound here in the first place). A custom max-norm
    /// gather that reads its `neighbor_out_degree` argument couples a
    /// vertex's fixpoint to edges outside its in-neighborhood, which
    /// the insert-frontier seeding does not track — such algorithms
    /// must not be streamed warm.
    pub fn warm_start_is_sound(&self) -> bool {
        match self.mode {
            // Enforced through the trait hook, not inferred from the
            // identity value: a non-idempotent ⊕ defaults to `false`
            // and restarts safely.
            Mode::Delta(_) => self
                .delta
                .as_ref()
                .is_some_and(|a| a.combine_is_idempotent()),
            _ => self
                .gather
                .as_ref()
                .is_some_and(|a| a.norm() == ConvergenceNorm::Max),
        }
    }

    fn algorithm_ref(&self) -> AlgorithmRef<'_> {
        match self.mode {
            Mode::Delta(_) => {
                AlgorithmRef::Delta(self.delta.as_deref().expect("validated by build()"))
            }
            _ => AlgorithmRef::Gather(self.gather.as_deref().expect("validated by build()")),
        }
    }

    /// The algorithm's initial state for `v` on the current graph.
    fn init_state_of(&self, v: VertexId) -> f64 {
        match self.mode {
            Mode::Delta(_) => self
                .delta
                .as_ref()
                .expect("validated by build()")
                .init_state(&self.graph, v),
            _ => self
                .gather
                .as_ref()
                .expect("validated by build()")
                .init(&self.graph, v),
        }
    }

    /// The set of vertices whose converged state is invalidated by the
    /// batch's deletions — KickStarter-style support trimming instead of
    /// a blunt downstream-reachability sweep.
    ///
    /// A vertex keeps its state when it is *supported*: either the
    /// state equals the algorithm's intrinsic value for the vertex (the
    /// source term / `init`), or some surviving in-edge from an
    /// unaffected, strictly-closer-to-the-root neighbor offers exactly
    /// the same value. The strictness requirement (neighbor state
    /// strictly below for decreasing algorithms, strictly above for
    /// increasing ones) makes support chains well-founded, so cyclic
    /// self-support — two stale CC labels justifying each other — cannot
    /// keep an invalidated value alive. Everything that loses
    /// certifiable support cascades.
    ///
    /// Precision depends on the algorithm's value structure: where
    /// candidates strictly progress along edges (SSSP/BFS with positive
    /// weights) surviving witnesses are recognized and deletions stay
    /// surgical; where converged values are *equal* across a region
    /// (CC's per-component labels) strict support can never be
    /// certified, so a deletion conservatively resets the forward
    /// reach of its head within that region even when an alternate
    /// path survives — correct, just cold-run-priced for that batch.
    /// (KickStarter buys back that precision with per-vertex dependence
    /// levels; a future PR could add them.)
    fn affected_by_deletions(&self, seeds: &[VertexId]) -> Vec<VertexId> {
        if seeds.is_empty() {
            return Vec::new();
        }
        let g = &self.graph;
        let states = &self.states;
        let n = g.num_vertices();

        // Per-family hooks: the value a single settled in-edge offers,
        // the vertex's intrinsic value, and the strict progress order.
        let candidate: Box<dyn Fn(VertexId, VertexId, f64, f64) -> f64> = match self.mode {
            Mode::Delta(_) => {
                let alg = self.delta.as_deref().expect("validated by build()");
                Box::new(move |x, v, w, sx| alg.propagate(g, x, v, w, sx))
            }
            _ => {
                let alg = self.gather.as_deref().expect("validated by build()");
                Box::new(move |x, _v, w, sx| {
                    alg.gather(alg.gather_identity(), sx, w, g.out_degree(x))
                })
            }
        };
        let intrinsic: Box<dyn Fn(VertexId) -> f64> = match self.mode {
            Mode::Delta(_) => {
                let alg = self.delta.as_deref().expect("validated by build()");
                Box::new(move |v| alg.combine(alg.init_state(g, v), alg.init_delta(g, v)))
            }
            _ => {
                let alg = self.gather.as_deref().expect("validated by build()");
                Box::new(move |v| alg.init(g, v))
            }
        };
        let decreasing = match self.mode {
            // Min-style delta algorithms start at `+inf` and come down.
            Mode::Delta(_) => self
                .delta
                .as_deref()
                .expect("validated by build()")
                .identity()
                .is_sign_positive(),
            _ => {
                self.gather
                    .as_deref()
                    .expect("validated by build()")
                    .monotonicity()
                    == crate::algorithm::Monotonicity::Decreasing
            }
        };
        let strictly_closer = |sx: f64, sv: f64| if decreasing { sx < sv } else { sx > sv };

        let mut affected = vec![false; n];
        let mut queued = vec![false; n];
        let mut queue: std::collections::VecDeque<VertexId> = std::collections::VecDeque::new();
        for &s in seeds {
            if (s as usize) < n && !queued[s as usize] {
                queued[s as usize] = true;
                queue.push_back(s);
            }
        }
        let mut out = Vec::new();
        while let Some(v) = queue.pop_front() {
            queued[v as usize] = false;
            if affected[v as usize] {
                continue;
            }
            let sv = states[v as usize];
            let same = |a: f64, b: f64| {
                a == b || (a.is_infinite() && b.is_infinite() && a.signum() == b.signum())
            };
            let supported = same(intrinsic(v), sv)
                || g.in_edges(v).any(|(x, w)| {
                    !affected[x as usize]
                        && strictly_closer(states[x as usize], sv)
                        && same(candidate(x, v, w, states[x as usize]), sv)
                });
            if !supported {
                affected[v as usize] = true;
                out.push(v);
                // Everything this vertex may have been supporting needs
                // a recheck.
                g.for_each_out_neighbor(v, |w| {
                    if !affected[w as usize] && !queued[w as usize] {
                        queued[w as usize] = true;
                        queue.push_back(w);
                    }
                });
            }
        }
        out
    }

    /// Records a finished execution into the pipeline's running state
    /// and packages it as a [`PipelineResult`].
    fn absorb(
        &mut self,
        stats: crate::convergence::RunStats,
        reorder_time: Duration,
        execute_time: Duration,
    ) -> PipelineResult {
        self.states.clone_from(&stats.final_states);
        self.total_rounds += stats.rounds;
        let result = PipelineResult {
            order: self.order.clone(),
            relabeled: None,
            stats,
            timings: StageTimings {
                reorder: reorder_time,
                relabel: Duration::ZERO,
                execute: execute_time,
            },
        };
        self.last = Some(result.clone());
        result
    }
}

/// Error from [`split_batches`]: the requested batch count cannot be
/// satisfied with non-empty batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitBatchesError {
    /// How many items were available to split.
    pub items: usize,
    /// How many batches were requested.
    pub target: usize,
}

impl std::fmt::Display for SplitBatchesError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cannot split {} update(s) into {} non-empty batch(es)",
            self.items, self.target
        )
    }
}

impl std::error::Error for SplitBatchesError {}

/// Splits `items` into exactly-at-most `target` non-empty,
/// order-preserving chunks — the helper for turning an update stream
/// into an [`StreamingPipeline::apply_batch`] schedule. Sizes by
/// `div_ceil`, so every batch is non-empty and the count never exceeds
/// `target`.
///
/// Returns [`SplitBatchesError`] when `target` is zero or larger than
/// `items.len()` — callers at tiny scales (e.g. a load generator on a
/// toy graph) must handle the shortage explicitly instead of receiving
/// a silently smaller schedule.
pub fn split_batches<T: Clone>(
    items: &[T],
    target: usize,
) -> Result<Vec<Vec<T>>, SplitBatchesError> {
    if target == 0 || target > items.len() {
        return Err(SplitBatchesError {
            items: items.len(),
            target,
        });
    }
    let size = items.len().div_ceil(target);
    Ok(items.chunks(size).map(<[T]>::to_vec).collect())
}

impl std::fmt::Debug for StreamingPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamingPipeline")
            .field("vertices", &self.graph.num_vertices())
            .field("edges", &self.graph.num_edges())
            .field("mode", &self.mode)
            .field("batches_applied", &self.batches_applied)
            .field("total_rounds", &self.total_rounds)
            .field("full_reorders", &self.full_reorders)
            .field("partition_reorders", &self.partition_reorders)
            .field("partition_repair_attempts", &self.partition_repair_attempts)
            .field("num_partitions", &self.part_members.len())
            .field("partition_scoped", &self.partition_scoped)
            .field("reorder_threads", &self.reorder_threads)
            .field("positive_fraction", &self.inc.positive_fraction())
            .field("baseline_fraction", &self.baseline_fraction)
            .field("drift_threshold", &self.drift_threshold)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{Bfs, ConnectedComponents, PageRank, Sssp};
    use crate::delta::{DeltaPageRank, DeltaSchedule, DeltaSssp};
    use crate::pipeline::Pipeline;
    use gograph_graph::generators::regular::chain;
    use gograph_graph::generators::{planted_partition, shuffle_labels, PlantedPartitionConfig};

    fn seed_graph() -> CsrGraph {
        shuffle_labels(
            &planted_partition(PlantedPartitionConfig {
                num_vertices: 120,
                num_edges: 700,
                communities: 4,
                p_intra: 0.8,
                gamma: 2.4,
                seed: 77,
            }),
            5,
        )
    }

    #[test]
    fn bootstrap_matches_cold_pipeline() {
        let g = seed_graph();
        let sp = StreamingPipeline::over(&g)
            .algorithm(Sssp::new(0))
            .build()
            .unwrap();
        let cold = Pipeline::on(&g)
            .order(sp.order().clone())
            .algorithm(Sssp::new(0))
            .execute()
            .unwrap();
        assert_eq!(sp.states(), &cold.stats.final_states[..]);
        assert_eq!(sp.full_reorders(), 1);
        assert_eq!(sp.batches_applied(), 0);
        assert!(sp.total_rounds() > 0);
    }

    #[test]
    fn insert_only_batch_warm_start_is_exact() {
        let g = chain(60);
        let mut sp = StreamingPipeline::over(&g)
            .algorithm(Sssp::new(0))
            .build()
            .unwrap();
        let r = sp.apply_batch(&[EdgeUpdate::insert(0, 30)]).unwrap();
        assert!(r.stats.converged);
        // Distances past the shortcut drop to hop-count via it.
        assert_eq!(sp.states()[30], 1.0);
        assert_eq!(sp.states()[59], 30.0);
        // Early chain is untouched.
        assert_eq!(sp.states()[10], 10.0);
    }

    #[test]
    fn deletion_resets_downstream_and_reconverges() {
        let g = chain(40);
        let mut sp = StreamingPipeline::over(&g)
            .algorithm(Bfs::new(0))
            .build()
            .unwrap();
        // Cutting the chain at 19 -> 20 strands the tail at infinity.
        let r = sp.apply_batch(&[EdgeUpdate::remove(19, 20)]).unwrap();
        assert!(r.stats.converged);
        assert_eq!(sp.states()[19], 19.0);
        assert!(sp.states()[20].is_infinite());
        assert!(sp.states()[39].is_infinite());
        // Reconnecting through a shortcut heals the tail.
        let r = sp.apply_batch(&[EdgeUpdate::insert(5, 20)]).unwrap();
        assert!(r.stats.converged);
        assert_eq!(sp.states()[20], 6.0);
        assert_eq!(sp.states()[39], 25.0);
    }

    #[test]
    fn sum_norm_algorithms_restart_but_stay_correct() {
        let g = seed_graph();
        let mut sp = StreamingPipeline::over(&g)
            .algorithm(PageRank::default())
            .build()
            .unwrap();
        assert!(!sp.warm_start_is_sound());
        let updates = [
            EdgeUpdate::insert(3, 99),
            EdgeUpdate::insert(99, 3),
            EdgeUpdate::remove(0, 1),
        ];
        let r = sp.apply_batch(&updates).unwrap();
        assert!(r.stats.converged);
        let cold = Pipeline::on(sp.graph())
            .order(sp.order().clone())
            .algorithm(PageRank::default())
            .execute()
            .unwrap();
        assert_eq!(sp.states(), &cold.stats.final_states[..]);
    }

    #[test]
    fn worklist_mode_seeds_only_the_frontier() {
        let g = chain(200);
        let mut sp = StreamingPipeline::over(&g)
            .mode(Mode::Worklist)
            .algorithm(Sssp::new(0))
            .build()
            .unwrap();
        let bootstrap_evals = sp.last_result().stats.evaluations.unwrap();
        let r = sp.apply_batch(&[EdgeUpdate::insert(0, 190)]).unwrap();
        let batch_evals = r.stats.evaluations.unwrap();
        assert!(r.stats.converged);
        assert_eq!(sp.states()[190], 1.0);
        assert_eq!(sp.states()[199], 10.0);
        assert!(
            batch_evals < bootstrap_evals / 2,
            "warm worklist should touch a fraction of the graph: \
             {batch_evals} vs bootstrap {bootstrap_evals}"
        );
    }

    #[test]
    fn delta_mode_warm_starts_min_style() {
        let g = chain(80);
        let mut sp = StreamingPipeline::over(&g)
            .mode(Mode::Delta(DeltaSchedule::RoundRobin))
            .delta_algorithm(DeltaSssp { source: 0 })
            .build()
            .unwrap();
        assert!(sp.warm_start_is_sound());
        let r = sp.apply_batch(&[EdgeUpdate::insert(0, 40)]).unwrap();
        assert!(r.stats.converged);
        assert_eq!(sp.states()[40], 1.0);
        assert_eq!(sp.states()[79], 40.0);
        assert!(
            r.stats.rounds <= 3,
            "warm delta propagation should be local, took {} rounds",
            r.stats.rounds
        );
    }

    #[test]
    fn delta_sum_style_restarts() {
        let g = seed_graph();
        let mut sp = StreamingPipeline::over(&g)
            .mode(Mode::Delta(DeltaSchedule::RoundRobin))
            .delta_algorithm(DeltaPageRank::default())
            .build()
            .unwrap();
        assert!(!sp.warm_start_is_sound());
        let r = sp.apply_batch(&[EdgeUpdate::insert(1, 117)]).unwrap();
        assert!(r.stats.converged);
    }

    #[test]
    fn batches_can_grow_the_vertex_set() {
        let g = chain(10);
        let mut sp = StreamingPipeline::over(&g)
            .algorithm(ConnectedComponents)
            .build()
            .unwrap();
        let r = sp
            .apply_batch(&[EdgeUpdate::insert(9, 12), EdgeUpdate::insert(12, 11)])
            .unwrap();
        assert!(r.stats.converged);
        assert_eq!(sp.graph().num_vertices(), 13);
        assert_eq!(sp.order().len(), 13);
        assert_eq!(sp.states().len(), 13);
        // All of 0..=12 except the isolated 10 collapse to label 0.
        assert_eq!(sp.states()[11], 0.0);
        assert_eq!(sp.states()[12], 0.0);
        assert_eq!(sp.states()[10], 10.0);
    }

    #[test]
    fn drift_threshold_zero_forces_reorders_and_validation_rejects_bad_values() {
        let g = seed_graph();
        for bad in [-0.5, f64::NAN, f64::INFINITY] {
            let err = StreamingPipeline::over(&g)
                .algorithm(Sssp::new(0))
                .drift_threshold(bad)
                .build()
                .unwrap_err();
            assert!(matches!(
                err,
                EngineError::InvalidParameter {
                    name: "drift_threshold",
                    ..
                }
            ));
        }
        let mut eager = StreamingPipeline::over(&g)
            .algorithm(Sssp::new(0))
            .drift_threshold(0.0)
            .build()
            .unwrap();
        let mut lazy = StreamingPipeline::over(&g)
            .algorithm(Sssp::new(0))
            .drift_threshold(1.0)
            .build()
            .unwrap();
        // Adversarial arrivals: edges pointing against the current order.
        for i in 0..8 {
            let order = eager.order().clone();
            let late = order.vertex_at(order.len() - 1 - i);
            let early = order.vertex_at(i);
            let batch = [EdgeUpdate::insert(late, early)];
            eager.apply_batch(&batch).unwrap();
            lazy.apply_batch(&batch).unwrap();
        }
        assert_eq!(lazy.full_reorders(), 1, "threshold 1.0 never re-reorders");
        assert!(
            eager.full_reorders() >= lazy.full_reorders(),
            "threshold 0.0 re-reorders at least as often"
        );
    }

    #[test]
    fn partition_scoped_repair_replaces_full_reorders() {
        let g = seed_graph();
        // Same adversarial schedule, with and without partition-scoped
        // repair, at a hair-trigger threshold so breaches actually occur.
        let build = |scoped: bool| {
            StreamingPipeline::over(&g)
                .algorithm(Sssp::new(0))
                .drift_threshold(0.01)
                .partition_scoped_reorder(scoped)
                .build()
                .unwrap()
        };
        let mut scoped = build(true);
        let mut full_only = build(false);
        assert!(scoped.num_partitions() > 1, "divide phase must partition");
        for i in 0..10 {
            let order = full_only.order().clone();
            let late = order.vertex_at(order.len() - 1 - i);
            let early = order.vertex_at(i);
            let batch = [EdgeUpdate::insert(late, early)];
            scoped.apply_batch(&batch).unwrap();
            full_only.apply_batch(&batch).unwrap();
        }
        assert_eq!(full_only.partition_reorders(), 0);
        assert!(
            scoped.full_reorders() <= full_only.full_reorders(),
            "partition-scoped repair must not add full reorders: {} vs {}",
            scoped.full_reorders(),
            full_only.full_reorders()
        );
        // Both end at the same fixpoint regardless of repair strategy.
        assert_eq!(scoped.graph(), full_only.graph());
        assert_eq!(scoped.states(), full_only.states());
    }

    #[test]
    fn reorder_parallelism_changes_nothing_but_latency() {
        let g = seed_graph();
        let mut seq = StreamingPipeline::over(&g)
            .algorithm(Bfs::new(0))
            .build()
            .unwrap();
        let mut par = StreamingPipeline::over(&g)
            .algorithm(Bfs::new(0))
            .reorder_parallelism(4)
            .build()
            .unwrap();
        assert_eq!(seq.order(), par.order(), "parallel bootstrap reorder");
        let batch = [EdgeUpdate::insert(0, 100), EdgeUpdate::remove(0, 1)];
        seq.apply_batch(&batch).unwrap();
        par.apply_batch(&batch).unwrap();
        assert_eq!(seq.order(), par.order());
        assert_eq!(seq.states(), par.states());
    }

    #[test]
    fn missing_or_mismatched_algorithms_are_reported() {
        let g = chain(5);
        let err = StreamingPipeline::over(&g).build().unwrap_err();
        assert!(matches!(err, EngineError::MissingAlgorithm { .. }));
        let err = StreamingPipeline::over(&g)
            .mode(Mode::Delta(DeltaSchedule::RoundRobin))
            .algorithm(Sssp::new(0))
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            EngineError::IncompatibleAlgorithm {
                provided: "gather",
                ..
            }
        ));
        let err = StreamingPipeline::over(&g)
            .delta_algorithm(DeltaSssp { source: 0 })
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            EngineError::IncompatibleAlgorithm {
                provided: "delta",
                ..
            }
        ));
    }

    #[test]
    fn empty_batch_is_a_cheap_confirmation() {
        let g = seed_graph();
        let mut sp = StreamingPipeline::over(&g)
            .algorithm(Sssp::new(0))
            .build()
            .unwrap();
        let before = sp.states().to_vec();
        let r = sp.apply_batch(&[]).unwrap();
        assert!(r.stats.converged);
        assert_eq!(r.stats.rounds, 1, "already at the fixpoint");
        assert_eq!(sp.states(), &before[..]);
    }

    #[test]
    fn split_batches_rejects_unsatisfiable_targets() {
        // More batches than items is an explicit error, not a silently
        // smaller (or empty-batch) schedule.
        assert_eq!(
            split_batches(&[1, 2], 4),
            Err(SplitBatchesError {
                items: 2,
                target: 4
            })
        );
        assert_eq!(
            split_batches::<u32>(&[], 4),
            Err(SplitBatchesError {
                items: 0,
                target: 4
            })
        );
        assert_eq!(
            split_batches(&[1, 2, 3], 0),
            Err(SplitBatchesError {
                items: 3,
                target: 0
            })
        );
        let err = split_batches(&[1, 2], 4).unwrap_err();
        assert!(err.to_string().contains("cannot split 2"));
    }

    #[test]
    fn split_batches_even_split_preserves_order() {
        // Even split preserves order and covers everything.
        let batches = split_batches(&[1, 2, 3, 4, 5], 2).unwrap();
        assert_eq!(batches, vec![vec![1, 2, 3], vec![4, 5]]);
        // Exactly one batch per item is the tightest legal schedule.
        assert_eq!(split_batches(&[1, 2], 2).unwrap(), vec![vec![1], vec![2]]);
        assert_eq!(split_batches(&[7], 1).unwrap(), vec![vec![7]]);
    }

    #[test]
    fn resume_is_bit_identical_going_forward() {
        let g = seed_graph();
        let build = || {
            StreamingPipeline::over(&g)
                .algorithm(Sssp::new(0))
                .drift_threshold(0.01)
                .build()
                .unwrap()
        };
        let mut original = build();
        let mut control = build();
        // Drive both through a prefix, export mid-stream, resume a third.
        let batches: Vec<Vec<EdgeUpdate>> = (0..6)
            .map(|i| {
                vec![
                    EdgeUpdate::insert(i * 7 % 120, (i * 13 + 5) % 120),
                    EdgeUpdate::remove(i, i + 1),
                    EdgeUpdate::insert(119 - i, i * 3),
                ]
            })
            .collect();
        for b in &batches[..3] {
            original.apply_batch(b).unwrap();
            control.apply_batch(b).unwrap();
        }
        let state = original.export_state();
        let mut resumed = StreamingPipeline::over(&g)
            .algorithm(Sssp::new(0))
            .drift_threshold(0.01)
            .resume(state)
            .unwrap();
        assert_eq!(resumed.graph(), original.graph());
        assert_eq!(resumed.order(), original.order());
        assert_eq!(resumed.states(), original.states());
        assert_eq!(resumed.batches_applied(), 3);
        // The tail must evolve identically on all three pipelines.
        for b in &batches[3..] {
            original.apply_batch(b).unwrap();
            control.apply_batch(b).unwrap();
            resumed.apply_batch(b).unwrap();
        }
        assert_eq!(resumed.graph(), original.graph());
        assert_eq!(resumed.order(), original.order());
        assert_eq!(resumed.states(), original.states());
        assert_eq!(resumed.full_reorders(), original.full_reorders());
        assert_eq!(control.states(), original.states(), "control sanity");
    }

    #[test]
    fn resume_at_bootstrap_equals_build() {
        let g = seed_graph();
        let built = StreamingPipeline::over(&g)
            .algorithm(ConnectedComponents)
            .build()
            .unwrap();
        let mut resumed = StreamingPipeline::over(&g)
            .algorithm(ConnectedComponents)
            .resume(built.export_state())
            .unwrap();
        assert_eq!(resumed.order(), built.order());
        assert_eq!(resumed.states(), built.states());
        assert_eq!(resumed.num_partitions(), built.num_partitions());
        let r = resumed.apply_batch(&[EdgeUpdate::insert(0, 110)]).unwrap();
        assert!(r.stats.converged);
    }

    #[test]
    fn resume_validates_shapes_and_algorithms() {
        let g = chain(10);
        let sp = StreamingPipeline::over(&g)
            .algorithm(Sssp::new(0))
            .build()
            .unwrap();
        let good = sp.export_state();

        let err = StreamingPipeline::over(&g)
            .resume(good.clone())
            .unwrap_err();
        assert!(matches!(err, EngineError::MissingAlgorithm { .. }));

        let mut short_states = good.clone();
        short_states.states.pop();
        let err = StreamingPipeline::over(&g)
            .algorithm(Sssp::new(0))
            .resume(short_states)
            .unwrap_err();
        assert!(matches!(
            err,
            EngineError::InvalidParameter { name: "states", .. }
        ));

        let mut bad_fraction = good.clone();
        bad_fraction.baseline_fraction = f64::NAN;
        let err = StreamingPipeline::over(&g)
            .algorithm(Sssp::new(0))
            .resume(bad_fraction)
            .unwrap_err();
        assert!(matches!(
            err,
            EngineError::InvalidParameter {
                name: "baseline_fraction",
                ..
            }
        ));

        let mut bad_vals = good.clone();
        bad_vals.order_vals[0] = f64::NAN;
        let err = StreamingPipeline::over(&g)
            .algorithm(Sssp::new(0))
            .resume(bad_vals)
            .unwrap_err();
        assert!(matches!(
            err,
            EngineError::InvalidParameter {
                name: "order_vals",
                ..
            }
        ));

        let mut bad_parts = good;
        bad_parts
            .baseline_intra
            .push(PartitionContribution::default());
        let err = StreamingPipeline::over(&g)
            .algorithm(Sssp::new(0))
            .resume(bad_parts)
            .unwrap_err();
        assert!(matches!(
            err,
            EngineError::InvalidParameter {
                name: "part_members",
                ..
            }
        ));
    }

    #[test]
    fn self_loops_are_skipped() {
        let g = chain(6);
        let mut sp = StreamingPipeline::over(&g)
            .algorithm(Sssp::new(0))
            .build()
            .unwrap();
        let r = sp
            .apply_batch(&[EdgeUpdate::insert(3, 3), EdgeUpdate::remove(2, 2)])
            .unwrap();
        assert!(r.stats.converged);
        assert_eq!(sp.graph().num_edges(), 5);
        assert!(!sp.graph().has_edge(3, 3));
    }
}
