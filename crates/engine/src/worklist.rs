//! Worklist (active-frontier) asynchronous engine.
//!
//! Full-scan engines (sync/async) re-evaluate every vertex each round
//! even when nothing relevant changed. The worklist engine keeps an
//! *active set*: a vertex is re-evaluated only when one of its
//! in-neighbors changed state since its last evaluation. Within a round,
//! active vertices are processed **in processing-order position** — so a
//! GoGraph order still pays off: positive edges let activations be
//! consumed in the same round instead of the next one.
//!
//! This is the execution style of Galois/GraphLab-style engines the
//! paper's related work discusses; it changes the work bound, not the
//! fixpoint.

use crate::algorithm::IterativeAlgorithm;
use crate::convergence::{state_delta, trace_point, RunStats};
use crate::direction::{
    activate_per_source, activate_per_target, choose_push, push_mass, DirectionPolicy, PositionScan,
};
use crate::dispatch::{dispatch_gather, GatherContext, ScatterContext};
use crate::runner::RunConfig;
use gograph_graph::{CsrGraph, Frontier, Permutation};
use std::time::Instant;

/// Statistics specific to a worklist run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorklistStats {
    /// Total vertex evaluations across all rounds (the work measure; a
    /// full-scan engine costs `rounds * n`).
    pub evaluations: usize,
}

/// Runs `alg` with an active-set worklist. Returns the run stats plus
/// the evaluation count.
#[deprecated(
    since = "0.2.0",
    note = "use gograph_engine::Pipeline with Mode::Worklist"
)]
pub fn run_worklist(
    g: &CsrGraph,
    alg: &dyn IterativeAlgorithm,
    order: &Permutation,
    cfg: &RunConfig,
) -> (RunStats, WorklistStats) {
    let stats = crate::pipeline::Pipeline::on(g)
        .algorithm_ref(alg)
        .mode(crate::runner::Mode::Worklist)
        .order_ref(order)
        .config(*cfg)
        .execute()
        .expect("legacy run_worklist(): invalid configuration")
        .stats;
    let evaluations = stats.evaluations.unwrap_or(0);
    (stats, WorklistStats { evaluations })
}

/// The worklist engine proper; stats carry
/// [`RunStats::evaluations`](crate::convergence::RunStats::evaluations).
pub(crate) fn worklist_core(
    g: &CsrGraph,
    alg: &dyn IterativeAlgorithm,
    order: &Permutation,
    cfg: &RunConfig,
) -> RunStats {
    dispatch_gather!(alg, a => worklist_kernel(g, a, order, cfg))
}

/// The worklist round loop, generic over the algorithm so the per-edge
/// gather of each re-evaluated vertex inlines with a concrete `A`.
pub fn worklist_kernel<A: IterativeAlgorithm + ?Sized>(
    g: &CsrGraph,
    alg: &A,
    order: &Permutation,
    cfg: &RunConfig,
) -> RunStats {
    let init: Vec<f64> = (0..g.num_vertices() as u32)
        .map(|v| alg.init(g, v))
        .collect();
    worklist_kernel_warm(g, alg, order, cfg, init, None)
}

/// [`worklist_kernel`] started from caller-supplied states and an
/// optional initial frontier — the warm-start entry the streaming
/// subsystem uses: only the vertices a batch of edge updates actually
/// touched are seeded as active, and activation spreads from there.
/// `frontier: None` activates every vertex (the cold behaviour); an
/// empty frontier converges immediately.
///
/// Rounds are direction-optimized (see [`crate::direction`]). A *pull*
/// round gathers the active set in processing-order position — emitted
/// straight from the hybrid [`Frontier`] bitmap, an `O(n/4096 + |F|)`
/// sweep instead of the former per-round `O(|F| log |F|)`
/// sort-and-dedup — and activates the out-neighbors of whatever
/// changed. A *push* round (for [`IterativeAlgorithm::supports_push`]
/// algorithms, chosen when the changed set's out-degree mass is light)
/// skips the activation/gather detour entirely: each changed vertex
/// relaxes its out-edges in place, touching `Σ outdeg(changed)` edges
/// instead of the full in-degree mass of the activated neighborhood.
///
/// # Panics
/// Panics if `states.len() != g.num_vertices()` or a frontier vertex is
/// out of range — callers go through
/// [`crate::ExecutionStrategy::run_warm`], which validates first.
pub fn worklist_kernel_warm<A: IterativeAlgorithm + ?Sized>(
    g: &CsrGraph,
    alg: &A,
    order: &Permutation,
    cfg: &RunConfig,
    mut states: Vec<f64>,
    initial_frontier: Option<&Frontier>,
) -> RunStats {
    let n = g.num_vertices();
    assert_eq!(order.len(), n, "order length must match vertex count");
    assert_eq!(states.len(), n, "state length must match vertex count");
    let ctx = GatherContext::new(g);
    let sctx = ScatterContext::new(g);
    let num_edges = g.num_edges();
    let supports_push = alg.supports_push();
    let eps = alg.epsilon();
    let start = Instant::now();
    let mut trace = Vec::new();
    if cfg.record_trace {
        trace.push(trace_point(0, start.elapsed(), f64::INFINITY, &states));
    }

    // Push-capable bookkeeping is per-source ("whose change is
    // unpropagated"); PullOnly and accumulative algorithms use the
    // historical per-target activation rule.
    let push_ok = supports_push && cfg.direction != DirectionPolicy::PullOnly;

    /// What the next round works on. Frontiers hold order positions.
    enum Work {
        /// Gather every vertex, in processing order (cold start).
        PullAll,
        /// Gather the scheduled target set (warm seed / activations).
        PullTargets,
        /// Gather the out-neighborhoods of the pending sources.
        PullFromSources,
        /// Scatter the pending sources' out-edges.
        Push,
    }
    let mut work = match initial_frontier {
        None => Work::PullAll,
        Some(_) => Work::PullTargets,
    };
    // The set feeding the next round (meaning per `work`); seeded from
    // the warm frontier.
    let mut work_set = Frontier::new(n);
    if let Some(seed) = initial_frontier {
        seed.for_each(|v| {
            work_set.insert(order.position(v));
        });
    }
    let mut out_set = Frontier::new(n);
    let mut scan = PositionScan::new(n);
    let mut evaluations = 0usize;

    let mut rounds = 0usize;
    let mut converged = false;
    let mut push_rounds = 0usize;
    while rounds < cfg.max_rounds {
        rounds += 1;
        out_set.clear();
        let mut round_changed = false;
        let mut round_changes = 0usize;

        // Schedule the round's sweep.
        match &work {
            Work::PullAll => (0..n as u32).for_each(|p| scan.set(p)),
            Work::PullTargets | Work::Push => scan.load(&work_set),
            Work::PullFromSources => work_set.for_each(|p| {
                g.for_each_out_neighbor(order.vertex_at(p as usize), |w| {
                    scan.set(order.position(w));
                });
            }),
        }
        let is_push = matches!(work, Work::Push);
        if is_push {
            push_rounds += 1;
        }

        // Forward sweep with in-round consumption: fresh values reach
        // later positions (positive edges) in the same round, exactly
        // the property the GoGraph order maximizes.
        let mut wi = 0usize;
        while wi < scan.num_words() {
            let Some(pos) = scan.take_lowest(wi) else {
                wi += 1;
                continue;
            };
            evaluations += 1;
            if is_push {
                // Scatter the pending source; improved targets at later
                // positions join this sweep as sources themselves.
                let u = order.vertex_at(pos as usize);
                let su = states[u as usize];
                sctx.scatter(alg, u, su, |v, cand| {
                    let old = states[v as usize];
                    let new = alg.apply(g, v, old, cand);
                    if new != old {
                        states[v as usize] = new;
                        if state_delta(old, new) > eps {
                            round_changed = true;
                            round_changes += 1;
                            let pv = order.position(v);
                            if pv > pos {
                                scan.set(pv);
                            } else {
                                out_set.insert(pv);
                            }
                        }
                    }
                });
            } else {
                let v = order.vertex_at(pos as usize);
                let acc = ctx.gather(alg, v, &states);
                let old = states[v as usize];
                let new = alg.apply(g, v, old, acc);
                states[v as usize] = new;
                if state_delta(old, new) > eps {
                    round_changed = true;
                    round_changes += 1;
                    if push_ok {
                        activate_per_source(g, order, v, pos, &mut scan, &mut out_set);
                    } else {
                        activate_per_target(g, order, v, pos, &mut scan, &mut out_set, false);
                    }
                }
            }
        }

        if cfg.record_trace {
            trace.push(trace_point(
                rounds,
                start.elapsed(),
                round_changes as f64,
                &states,
            ));
        }
        if !round_changed || out_set.is_empty() {
            converged = true;
            break;
        }

        // Plan the next round from the pending set.
        std::mem::swap(&mut work_set, &mut out_set);
        work = if !push_ok {
            Work::PullTargets
        } else if choose_push(
            cfg.direction,
            supports_push,
            push_mass(&work_set, order, ctx.out_degrees()),
            num_edges,
        ) {
            Work::Push
        } else {
            Work::PullFromSources
        };
    }

    RunStats {
        rounds,
        runtime: start.elapsed(),
        converged,
        final_states: states,
        trace,
        // States plus the frontier structures that replaced the old
        // active-flags array (two hybrid sets + the sweep bitmap).
        state_memory_bytes: n * std::mem::size_of::<f64>()
            + work_set.memory_bytes()
            + out_set.memory_bytes()
            + scan.memory_bytes(),
        evaluations: Some(evaluations),
        push_rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{Bfs, PageRank, Sssp};
    use crate::asynch::run_async;
    use gograph_graph::generators::regular::chain;
    use gograph_graph::generators::{
        planted_partition, with_random_weights, PlantedPartitionConfig,
    };

    fn test_graph() -> CsrGraph {
        with_random_weights(
            &planted_partition(PlantedPartitionConfig {
                num_vertices: 400,
                num_edges: 3000,
                communities: 8,
                p_intra: 0.8,
                gamma: 2.4,
                seed: 77,
            }),
            1.0,
            4.0,
            5,
        )
    }

    #[test]
    fn matches_async_fixpoint_sssp() {
        let g = test_graph();
        let cfg = RunConfig::default();
        let id = Permutation::identity(400);
        let reference = run_async(&g, &Sssp::new(0), &id, &cfg);
        let wl = worklist_core(&g, &Sssp::new(0), &id, &cfg);
        assert!(wl.converged);
        assert_eq!(reference.final_states, wl.final_states);
    }

    #[test]
    fn matches_async_fixpoint_pagerank() {
        let g = test_graph();
        let cfg = RunConfig::default();
        let id = Permutation::identity(400);
        let reference = run_async(&g, &PageRank::default(), &id, &cfg);
        let wl = worklist_core(&g, &PageRank::default(), &id, &cfg);
        assert!(wl.converged);
        for (a, b) in reference.final_states.iter().zip(&wl.final_states) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn does_less_work_than_full_scans_on_bfs() {
        let g = test_graph();
        let cfg = RunConfig::default();
        let id = Permutation::identity(400);
        let full = run_async(&g, &Bfs::new(0), &id, &cfg);
        let wl = worklist_core(&g, &Bfs::new(0), &id, &cfg);
        assert_eq!(full.final_states, wl.final_states);
        let full_evals = full.rounds * 400;
        let evals = wl.evaluations.unwrap();
        assert!(
            evals < full_evals,
            "worklist {evals} evals vs full-scan {full_evals}"
        );
    }

    #[test]
    fn chain_frontier_is_narrow() {
        let g = chain(100);
        let cfg = RunConfig::default();
        let id = Permutation::identity(100);
        let wl = worklist_core(&g, &Sssp::new(0), &id, &cfg);
        assert!(wl.converged);
        // Identity order on a chain: all work done in round 1 plus
        // reactivation checks — far below rounds * n.
        let evals = wl.evaluations.unwrap();
        assert!(evals <= 3 * 100, "evaluations {evals}");
    }

    #[test]
    fn order_still_matters() {
        let g = chain(60);
        let cfg = RunConfig::default();
        let fwd = Permutation::identity(60);
        let rev = fwd.reversed();
        let a = worklist_core(&g, &Sssp::new(0), &fwd, &cfg);
        let b = worklist_core(&g, &Sssp::new(0), &rev, &cfg);
        assert_eq!(a.final_states, b.final_states);
        assert!(a.rounds < b.rounds);
        assert!(a.evaluations.unwrap() < b.evaluations.unwrap());
    }
}
