//! Worklist (active-frontier) asynchronous engine.
//!
//! Full-scan engines (sync/async) re-evaluate every vertex each round
//! even when nothing relevant changed. The worklist engine keeps an
//! *active set*: a vertex is re-evaluated only when one of its
//! in-neighbors changed state since its last evaluation. Within a round,
//! active vertices are processed **in processing-order position** — so a
//! GoGraph order still pays off: positive edges let activations be
//! consumed in the same round instead of the next one.
//!
//! This is the execution style of Galois/GraphLab-style engines the
//! paper's related work discusses; it changes the work bound, not the
//! fixpoint.

use crate::algorithm::IterativeAlgorithm;
use crate::convergence::{state_delta, trace_point, RunStats};
use crate::dispatch::{dispatch_gather, GatherContext};
use crate::runner::RunConfig;
use gograph_graph::{CsrGraph, Permutation, VertexId};
use std::time::Instant;

/// Statistics specific to a worklist run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorklistStats {
    /// Total vertex evaluations across all rounds (the work measure; a
    /// full-scan engine costs `rounds * n`).
    pub evaluations: usize,
}

/// Runs `alg` with an active-set worklist. Returns the run stats plus
/// the evaluation count.
#[deprecated(
    since = "0.2.0",
    note = "use gograph_engine::Pipeline with Mode::Worklist"
)]
pub fn run_worklist(
    g: &CsrGraph,
    alg: &dyn IterativeAlgorithm,
    order: &Permutation,
    cfg: &RunConfig,
) -> (RunStats, WorklistStats) {
    let stats = crate::pipeline::Pipeline::on(g)
        .algorithm_ref(alg)
        .mode(crate::runner::Mode::Worklist)
        .order_ref(order)
        .config(*cfg)
        .execute()
        .expect("legacy run_worklist(): invalid configuration")
        .stats;
    let evaluations = stats.evaluations.unwrap_or(0);
    (stats, WorklistStats { evaluations })
}

/// The worklist engine proper; stats carry
/// [`RunStats::evaluations`](crate::convergence::RunStats::evaluations).
pub(crate) fn worklist_core(
    g: &CsrGraph,
    alg: &dyn IterativeAlgorithm,
    order: &Permutation,
    cfg: &RunConfig,
) -> RunStats {
    dispatch_gather!(alg, a => worklist_kernel(g, a, order, cfg))
}

/// The worklist round loop, generic over the algorithm so the per-edge
/// gather of each re-evaluated vertex inlines with a concrete `A`.
pub fn worklist_kernel<A: IterativeAlgorithm + ?Sized>(
    g: &CsrGraph,
    alg: &A,
    order: &Permutation,
    cfg: &RunConfig,
) -> RunStats {
    let init: Vec<f64> = (0..g.num_vertices() as u32)
        .map(|v| alg.init(g, v))
        .collect();
    worklist_kernel_warm(g, alg, order, cfg, init, None)
}

/// [`worklist_kernel`] started from caller-supplied states and an
/// optional initial frontier — the warm-start entry the streaming
/// subsystem uses: only the vertices a batch of edge updates actually
/// touched are seeded as active, and activation spreads from there.
/// `frontier: None` activates every vertex (the cold behaviour); an
/// empty frontier converges immediately.
///
/// # Panics
/// Panics if `states.len() != g.num_vertices()` or a frontier vertex is
/// out of range — callers go through
/// [`crate::ExecutionStrategy::run_warm`], which validates first.
pub fn worklist_kernel_warm<A: IterativeAlgorithm + ?Sized>(
    g: &CsrGraph,
    alg: &A,
    order: &Permutation,
    cfg: &RunConfig,
    mut states: Vec<f64>,
    initial_frontier: Option<&[VertexId]>,
) -> RunStats {
    let n = g.num_vertices();
    assert_eq!(order.len(), n, "order length must match vertex count");
    assert_eq!(states.len(), n, "state length must match vertex count");
    let ctx = GatherContext::new(g);
    let eps = alg.epsilon();
    let start = Instant::now();
    let mut trace = Vec::new();
    if cfg.record_trace {
        trace.push(trace_point(0, start.elapsed(), f64::INFINITY, &states));
    }

    // Active flags + current/next frontier (as positions for in-order
    // processing).
    let mut active = vec![initial_frontier.is_none(); n];
    let mut frontier: Vec<VertexId> = match initial_frontier {
        None => order.order().to_vec(),
        Some(seed) => {
            let mut f: Vec<VertexId> = seed.to_vec();
            for &v in &f {
                active[v as usize] = true;
            }
            f.sort_by_key(|&v| order.position(v));
            f.dedup();
            f
        }
    };
    let mut evaluations = 0usize;

    let mut rounds = 0usize;
    let mut converged = false;
    while rounds < cfg.max_rounds {
        rounds += 1;
        let mut next: Vec<VertexId> = Vec::new();
        let mut round_changed = false;
        for &v in &frontier {
            if !active[v as usize] {
                continue;
            }
            active[v as usize] = false;
            evaluations += 1;
            let acc = ctx.gather(alg, v, &states);
            let old = states[v as usize];
            let new = alg.apply(g, v, old, acc);
            if state_delta(old, new) > eps {
                states[v as usize] = new;
                round_changed = true;
                // Activate out-neighbors. Those later in the order within
                // this same frontier will pick the fresh value up this
                // round (positive edges!); the rest go to the next round.
                for &w in g.out_neighbors(v) {
                    if !active[w as usize] {
                        active[w as usize] = true;
                        // If w sits later in this round's frontier it is
                        // consumed this round (positive edge); scheduling
                        // it for the next round too is harmless — the
                        // active flag is cleared at evaluation, so a
                        // stale entry is skipped.
                        next.push(w);
                    }
                }
            } else {
                states[v as usize] = new;
            }
        }
        if cfg.record_trace {
            trace.push(trace_point(
                rounds,
                start.elapsed(),
                next.len() as f64,
                &states,
            ));
        }
        if !round_changed {
            converged = true;
            break;
        }
        // Order the next frontier by processing position.
        next.sort_by_key(|&v| order.position(v));
        next.dedup();
        frontier = next;
        if frontier.is_empty() {
            converged = true;
            break;
        }
    }

    RunStats {
        rounds,
        runtime: start.elapsed(),
        converged,
        final_states: states,
        trace,
        state_memory_bytes: n * std::mem::size_of::<f64>() + n, // states + flags
        evaluations: Some(evaluations),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{Bfs, PageRank, Sssp};
    use crate::asynch::run_async;
    use gograph_graph::generators::regular::chain;
    use gograph_graph::generators::{
        planted_partition, with_random_weights, PlantedPartitionConfig,
    };

    fn test_graph() -> CsrGraph {
        with_random_weights(
            &planted_partition(PlantedPartitionConfig {
                num_vertices: 400,
                num_edges: 3000,
                communities: 8,
                p_intra: 0.8,
                gamma: 2.4,
                seed: 77,
            }),
            1.0,
            4.0,
            5,
        )
    }

    #[test]
    fn matches_async_fixpoint_sssp() {
        let g = test_graph();
        let cfg = RunConfig::default();
        let id = Permutation::identity(400);
        let reference = run_async(&g, &Sssp::new(0), &id, &cfg);
        let wl = worklist_core(&g, &Sssp::new(0), &id, &cfg);
        assert!(wl.converged);
        assert_eq!(reference.final_states, wl.final_states);
    }

    #[test]
    fn matches_async_fixpoint_pagerank() {
        let g = test_graph();
        let cfg = RunConfig::default();
        let id = Permutation::identity(400);
        let reference = run_async(&g, &PageRank::default(), &id, &cfg);
        let wl = worklist_core(&g, &PageRank::default(), &id, &cfg);
        assert!(wl.converged);
        for (a, b) in reference.final_states.iter().zip(&wl.final_states) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn does_less_work_than_full_scans_on_bfs() {
        let g = test_graph();
        let cfg = RunConfig::default();
        let id = Permutation::identity(400);
        let full = run_async(&g, &Bfs::new(0), &id, &cfg);
        let wl = worklist_core(&g, &Bfs::new(0), &id, &cfg);
        assert_eq!(full.final_states, wl.final_states);
        let full_evals = full.rounds * 400;
        let evals = wl.evaluations.unwrap();
        assert!(
            evals < full_evals,
            "worklist {evals} evals vs full-scan {full_evals}"
        );
    }

    #[test]
    fn chain_frontier_is_narrow() {
        let g = chain(100);
        let cfg = RunConfig::default();
        let id = Permutation::identity(100);
        let wl = worklist_core(&g, &Sssp::new(0), &id, &cfg);
        assert!(wl.converged);
        // Identity order on a chain: all work done in round 1 plus
        // reactivation checks — far below rounds * n.
        let evals = wl.evaluations.unwrap();
        assert!(evals <= 3 * 100, "evaluations {evals}");
    }

    #[test]
    fn order_still_matters() {
        let g = chain(60);
        let cfg = RunConfig::default();
        let fwd = Permutation::identity(60);
        let rev = fwd.reversed();
        let a = worklist_core(&g, &Sssp::new(0), &fwd, &cfg);
        let b = worklist_core(&g, &Sssp::new(0), &rev, &cfg);
        assert_eq!(a.final_states, b.final_states);
        assert!(a.rounds < b.rounds);
        assert!(a.evaluations.unwrap() < b.evaluations.unwrap());
    }
}
