//! Direction-optimizing execution support: per-round push/pull choice,
//! hybrid frontier bookkeeping shared by the sync/async/worklist
//! kernels, and the cache-blocked dense pull sweep.
//!
//! The kernels track which vertices *changed* in a round (a hybrid
//! [`Frontier`] over **order positions**, so in-order emission is a
//! bitmap sweep instead of a sort) and each round runs in one of three
//! shapes:
//!
//! - **full pull** — the historical dense sweep: gather every vertex in
//!   processing order. Chosen while the changed set is dense (more than
//!   `1/`[`DENSE_EVAL_DENOMINATOR`] of the vertices), where skip
//!   bookkeeping would cost more than it saves. On the synchronous
//!   engine this sweep is additionally *cache-blocked* (see
//!   [`BlockedSweep`]).
//! - **sparse pull** — gather only vertices whose inputs may have
//!   changed (the changed set and its out-neighborhoods), skipping
//!   inactive sources through the bitmap.
//! - **push** — scatter: each changed vertex relaxes its out-edges
//!   directly ([`crate::dispatch::ScatterContext::scatter`]), touching
//!   `Σ outdeg(changed)` edges instead of the in-degree mass of the
//!   whole affected neighborhood. Requires
//!   [`crate::IterativeAlgorithm::supports_push`].
//!
//! The per-round choice is the Beamer direction heuristic adapted to
//! value iteration: push when the frontier's out-degree mass is below
//! `|E| / `[`PUSH_ALPHA`] (the pull side pays the in-degree mass of the
//! frontier's entire out-neighborhood, which the edge total bounds).

use crate::algorithm::IterativeAlgorithm;
use crate::dispatch::GatherContext;
use gograph_graph::{CsrGraph, Frontier, Permutation, VertexId};

/// Which traversal directions an engine run may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DirectionPolicy {
    /// Choose per round with the Beamer-style mass heuristic (push only
    /// for algorithms that declare
    /// [`crate::IterativeAlgorithm::supports_push`]).
    #[default]
    Auto,
    /// Never push: gather-only, the historical engine behaviour.
    PullOnly,
    /// Always push (scatter). Requires an algorithm with
    /// [`crate::IterativeAlgorithm::supports_push`]; the strategies
    /// reject the combination otherwise, and the kernels fall back to
    /// pull if reached directly.
    PushOnly,
}

/// Default last-level-cache budget assumed by the blocked pull sweep
/// (overridable via [`crate::RunConfig::llc_bytes`]): 8 MiB, a common
/// desktop LLC slice.
pub const DEFAULT_LLC_BYTES: usize = 8 << 20;

/// A round whose frontier out-degree mass is below `|E| / PUSH_ALPHA`
/// runs push under [`DirectionPolicy::Auto`]. The pull side's cost —
/// the in-degree mass of the frontier's full out-neighborhood — is at
/// least the push cost (every frontier edge activates a target whose
/// *whole* in-list is gathered), so sequentially push wins essentially
/// whenever the frontier is not the entire vertex set; 1 encodes
/// exactly that, and the kernels' separate density check still routes
/// near-full rounds to the streaming-friendly dense pull sweep.
pub(crate) const PUSH_ALPHA: usize = 1;

/// A changed set covering more than `1/DENSE_EVAL_DENOMINATOR` of the
/// vertices makes the next sync/async round a full sweep: on power-law
/// graphs even a few percent of changed vertices activate most of the
/// vertex set, so a "sparse" round would gather nearly everything *and*
/// pay activation scatter plus scan bookkeeping on top. Sparse rounds
/// only start paying once the frontier is genuinely narrow (< ~3%).
pub(crate) const DENSE_EVAL_DENOMINATOR: usize = 32;

/// Density cutoff for algorithms **without** push support (the
/// accumulative sum-norm family): their per-round deltas keep nearly
/// every vertex bit-changing until the very end, so frontier machinery
/// rarely pays — sparse rounds engage only for truly tiny frontiers
/// (< ~0.1%), and the dense sweep's tracked phase exits after `n/1024`
/// changes, keeping the hot loop branch-free like the pre-direction
/// kernel.
pub(crate) const GENERAL_DENSE_DENOMINATOR: usize = 1024;

/// Σ out-degree over the changed set — the push-direction edge cost of
/// the next round (`changed` holds order positions).
pub(crate) fn push_mass(changed: &Frontier, order: &Permutation, out_degrees: &[u32]) -> usize {
    let mut mass = 0usize;
    changed.for_each(|pos| {
        mass += out_degrees[order.vertex_at(pos as usize) as usize] as usize;
    });
    mass
}

/// The per-round direction choice. `m_push` is the frontier out-degree
/// mass, `num_edges` the graph's edge total standing in for the pull
/// side's unexplored in-degree mass bound.
#[inline]
pub(crate) fn choose_push(
    policy: DirectionPolicy,
    supports_push: bool,
    m_push: usize,
    num_edges: usize,
) -> bool {
    match policy {
        DirectionPolicy::PullOnly => false,
        DirectionPolicy::PushOnly => supports_push,
        DirectionPolicy::Auto => supports_push && m_push * PUSH_ALPHA < num_edges,
    }
}

/// A consuming forward sweep over order positions, with **in-round
/// activation**: while the sweep is parked at position `p`, bits may be
/// set at positions `> p` and will be visited later in the *same*
/// sweep — exactly the asynchronous engines' behaviour of consuming a
/// positive edge's fresh value in the round it was produced (Theorem 1,
/// the property the GoGraph order maximizes). Activations at positions
/// `≤ p` are the caller's to divert into the next round's set.
///
/// Bits are consumed as they are visited, so a drained scan is ready
/// for reuse without clearing.
pub(crate) struct PositionScan {
    words: Vec<u64>,
}

impl PositionScan {
    pub(crate) fn new(universe: usize) -> Self {
        PositionScan {
            words: vec![0; universe.div_ceil(64)],
        }
    }

    /// Number of 64-bit words (the sweep's outer loop bound).
    #[inline]
    pub(crate) fn num_words(&self) -> usize {
        self.words.len()
    }

    /// Heap bytes held by the scan bitmap.
    pub(crate) fn memory_bytes(&self) -> usize {
        self.words.capacity() * std::mem::size_of::<u64>()
    }

    /// Schedules position `pos` (idempotent).
    #[inline]
    pub(crate) fn set(&mut self, pos: u32) {
        self.words[pos as usize / 64] |= 1 << (pos % 64);
    }

    /// Loads every member of a [`Frontier`] into the scan.
    pub(crate) fn load(&mut self, f: &Frontier) {
        f.for_each(|pos| self.set(pos));
    }

    /// Consumes and returns the lowest scheduled position within word
    /// `wi`, or `None` when the word is empty (advance `wi`). Calling
    /// in a `while wi < num_words()` loop yields positions in ascending
    /// order, including any set at `> current` mid-sweep.
    #[inline]
    pub(crate) fn take_lowest(&mut self, wi: usize) -> Option<u32> {
        let w = self.words[wi];
        if w == 0 {
            return None;
        }
        let b = w.trailing_zeros();
        self.words[wi] &= !(1u64 << b);
        // Compute in usize: `(wi * 64) as u32 + b` would silently wrap
        // for word indices past 2^26 — fail loudly instead.
        let pos = wi * 64 + b as usize;
        Some(u32::try_from(pos).expect("PositionScan position exceeds u32"))
    }
}

/// The per-source activation rule shared by the async and worklist
/// sparse sweeps: a changed vertex's later-positioned out-neighbors
/// join the current [`PositionScan`] (in-round consumption); if any
/// out-neighbor sits at or before the cursor, the change itself stays
/// `pending` — its value is complete (push-capable algebra) but not yet
/// fully propagated.
#[inline(always)]
pub(crate) fn activate_per_source(
    g: &CsrGraph,
    order: &Permutation,
    v: VertexId,
    pos: u32,
    scan: &mut PositionScan,
    pending: &mut Frontier,
) {
    let mut behind = false;
    g.for_each_out_neighbor(v, |w| {
        let pw = order.position(w);
        if pw > pos {
            scan.set(pw);
        } else {
            behind = true;
        }
    });
    if behind {
        pending.insert(pos);
    }
}

/// The per-target activation rule (the historical behaviour): a changed
/// vertex's later-positioned out-neighbors join the current sweep,
/// earlier ones go to `pending` for the next round. With
/// `include_self`, the vertex itself re-evaluates next round too — what
/// makes the async engine's sparse rounds exact for *any* pure
/// algorithm; the worklist keeps its historical no-self activation.
#[inline(always)]
pub(crate) fn activate_per_target(
    g: &CsrGraph,
    order: &Permutation,
    v: VertexId,
    pos: u32,
    scan: &mut PositionScan,
    pending: &mut Frontier,
    include_self: bool,
) {
    g.for_each_out_neighbor(v, |w| {
        let pw = order.position(w);
        if pw > pos {
            scan.set(pw);
        } else {
            pending.insert(pw);
        }
    });
    if include_self {
        pending.insert(pos);
    }
}

/// The cache-blocked dense pull sweep (synchronous engine only — the
/// accumulate-then-apply shape is Jacobi).
///
/// When the processing order is the identity (the relabeled deployment
/// configuration: the GoGraph order is baked into the vertex ids), each
/// vertex's in-source list ascends in *order positions* too, so it
/// splits into contiguous spans per source block. A full pull round then
/// visits blocks outermost: within one block pass every state read
/// falls inside one LLC-sized id range, so the reordered layout's
/// locality is bounded by construction instead of by luck, at the cost
/// of streaming per-block span metadata and revisiting destination
/// accumulators once per contributing block.
///
/// Per-destination contributions still fold in ascending source order
/// (blocks ascend, spans ascend within a vertex), i.e. **exactly the
/// order the unblocked sweep folds** — so the blocked sweep is
/// bit-identical for every algorithm, including sum-norm gathers: the
/// per-block accumulators only regroup *when* a partial fold happens,
/// never in what order.
pub(crate) struct BlockedSweep {
    /// Per block `b`: `(v, start, end)` spans — the slice
    /// `in_sources[start..end]` of `v`'s in-edges whose sources fall in
    /// block `b`'s id range.
    spans: Vec<Vec<(VertexId, u32, u32)>>,
}

impl BlockedSweep {
    /// Positions per block for a given LLC budget: half the budget in
    /// 8-byte states, leaving the other half for the destination
    /// accumulators and streamed structure.
    pub(crate) fn block_positions(llc_bytes: usize) -> usize {
        (llc_bytes / 2 / std::mem::size_of::<f64>()).max(1)
    }

    /// Builds the span partition (shared with the cache simulator via
    /// [`CsrGraph::in_source_block_spans`], so the simulated access
    /// pattern can never drift from the executed one), or `None` when
    /// blocking cannot help: fewer than two blocks, an edge stream
    /// too large for the u32 span indices, or compressed storage (whose
    /// rows are byte blocks with no flat index ranges to span; the
    /// dense sweep falls back to the unblocked path there).
    pub(crate) fn build(g: &CsrGraph, block_positions: usize) -> Option<Self> {
        let num_blocks = g.num_vertices().div_ceil(block_positions.max(1));
        if num_blocks < 2 || g.num_edges() > u32::MAX as usize || g.is_compressed() {
            return None;
        }
        Some(BlockedSweep {
            spans: g.in_source_block_spans(block_positions),
        })
    }

    /// Heap bytes held by the span table (~12 bytes per span, between
    /// `n` and `|E|` spans).
    pub(crate) fn memory_bytes(&self) -> usize {
        self.spans
            .iter()
            .map(|b| b.capacity() * std::mem::size_of::<(VertexId, u32, u32)>())
            .sum::<usize>()
            + self.spans.capacity() * std::mem::size_of::<Vec<(VertexId, u32, u32)>>()
    }

    /// One blocked accumulation pass: folds every in-edge contribution
    /// into `acc` (which the caller pre-fills with the gather identity),
    /// block by block.
    #[inline]
    pub(crate) fn accumulate<A: IterativeAlgorithm + ?Sized>(
        &self,
        ctx: &GatherContext<'_>,
        alg: &A,
        states: &[f64],
        acc: &mut [f64],
    ) {
        for block in &self.spans {
            for &(v, s, e) in block {
                acc[v as usize] =
                    ctx.gather_range(alg, acc[v as usize], s as usize, e as usize, |u| states[u]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::Sssp;
    use gograph_graph::CsrGraph;

    #[test]
    fn direction_choice_honors_policy_and_masses() {
        // Auto: push only when supported and the frontier does not own
        // the whole edge set.
        assert!(choose_push(DirectionPolicy::Auto, true, 10, 100));
        assert!(choose_push(DirectionPolicy::Auto, true, 60, 100));
        assert!(!choose_push(DirectionPolicy::Auto, true, 100, 100));
        assert!(!choose_push(DirectionPolicy::Auto, false, 10, 100));
        assert!(!choose_push(DirectionPolicy::PullOnly, true, 0, 100));
        assert!(choose_push(DirectionPolicy::PushOnly, true, 99, 100));
        assert!(!choose_push(DirectionPolicy::PushOnly, false, 0, 100));
    }

    #[test]
    fn push_mass_sums_out_degrees_through_the_order() {
        let g = CsrGraph::from_edges(4, [(0u32, 1u32), (0, 2), (0, 3), (2, 3)]);
        // Order [3, 2, 1, 0]: position p holds vertex 3 - p.
        let order = gograph_graph::Permutation::from_order(vec![3, 2, 1, 0]);
        let mut changed = Frontier::new(4);
        changed.insert(3); // position 3 = vertex 0, out-degree 3
        changed.insert(1); // position 1 = vertex 2, out-degree 1
        assert_eq!(push_mass(&changed, &order, g.out_degrees()), 4);
    }

    #[test]
    fn blocked_sweep_matches_unblocked_gather() {
        let g = CsrGraph::from_edges(
            6,
            [
                (0u32, 5u32, 2.0f64),
                (1, 5, 1.0),
                (4, 5, 3.0),
                (0, 2, 1.0),
                (3, 2, 4.0),
                (5, 0, 1.0),
            ],
        );
        let ctx = GatherContext::new(&g);
        let alg = Sssp::new(0);
        let states = vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        let blocked = BlockedSweep::build(&g, 2).expect("3 blocks");
        let mut acc = vec![alg.gather_identity(); 6];
        blocked.accumulate(&ctx, &alg, &states, &mut acc);
        for v in g.vertices() {
            assert_eq!(acc[v as usize], ctx.gather(&alg, v, &states), "vertex {v}");
        }
        // One block (or zero vertices) declines to build.
        assert!(BlockedSweep::build(&g, 6).is_none());
        assert!(BlockedSweep::build(&g, 100).is_none());
    }

    #[test]
    fn position_scan_consumes_in_round_activations_ahead_only() {
        let mut scan = PositionScan::new(200);
        for p in [5u32, 130, 70] {
            scan.set(p);
        }
        let mut visited = Vec::new();
        let mut wi = 0;
        while wi < scan.num_words() {
            match scan.take_lowest(wi) {
                None => wi += 1,
                Some(pos) => {
                    visited.push(pos);
                    if pos == 5 {
                        scan.set(6); // same word, ahead: consumed this sweep
                        scan.set(199); // later word: consumed this sweep
                    }
                }
            }
        }
        assert_eq!(visited, vec![5, 6, 70, 130, 199]);
        // Drained scan is empty and reusable.
        let mut wi = 0;
        let mut rest = 0;
        while wi < scan.num_words() {
            match scan.take_lowest(wi) {
                None => wi += 1,
                Some(_) => rest += 1,
            }
        }
        assert_eq!(rest, 0);
    }

    #[test]
    fn block_positions_track_llc_budget() {
        assert_eq!(BlockedSweep::block_positions(16), 1);
        assert_eq!(BlockedSweep::block_positions(1 << 20), 1 << 16);
    }
}
