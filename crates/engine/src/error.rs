//! Error type for the engine's [`crate::Pipeline`] and
//! [`crate::ExecutionStrategy`] entry points.
//!
//! The legacy free functions (`run`, `run_relabeled`, ...) panicked on
//! invalid input; the unified API surfaces the same conditions as
//! values so callers embedding the engine (services, CLIs) can recover.

use std::fmt;

/// Everything that can go wrong assembling or executing a pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The processing order's length does not match the graph.
    OrderLengthMismatch {
        /// Length of the supplied order.
        order_len: usize,
        /// Vertex count of the graph.
        num_vertices: usize,
    },
    /// The selected mode needs an algorithm that was never supplied.
    MissingAlgorithm {
        /// The execution mode's name.
        mode: &'static str,
        /// What kind of algorithm the mode needs
        /// (`"gather"` or `"delta"`).
        expected: &'static str,
    },
    /// An algorithm was supplied, but of the wrong kind for the mode
    /// (e.g. a gather algorithm with `Mode::Delta`).
    IncompatibleAlgorithm {
        /// The execution mode's name.
        mode: &'static str,
        /// The kind of algorithm that was provided.
        provided: &'static str,
    },
    /// A numeric configuration value is out of range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Why the value was rejected.
        message: String,
    },
    /// `require_convergence` was set and the round cap was hit first.
    DidNotConverge {
        /// Rounds executed before giving up.
        rounds: usize,
    },
    /// A warm start was supplied to a strategy that cannot consume one.
    WarmStartUnsupported {
        /// The execution mode's name.
        mode: &'static str,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::OrderLengthMismatch {
                order_len,
                num_vertices,
            } => write!(
                f,
                "processing order has length {order_len} but the graph has \
                 {num_vertices} vertices"
            ),
            EngineError::MissingAlgorithm { mode, expected } => write!(
                f,
                "mode {mode:?} needs a {expected} algorithm but none was supplied"
            ),
            EngineError::IncompatibleAlgorithm { mode, provided } => {
                write!(f, "mode {mode:?} cannot execute a {provided} algorithm")
            }
            EngineError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter {name}: {message}")
            }
            EngineError::DidNotConverge { rounds } => {
                write!(f, "did not converge within {rounds} rounds")
            }
            EngineError::WarmStartUnsupported { mode } => {
                write!(f, "mode {mode:?} does not support warm-started execution")
            }
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = EngineError::OrderLengthMismatch {
            order_len: 3,
            num_vertices: 5,
        };
        assert!(e.to_string().contains('3'));
        assert!(e.to_string().contains('5'));
        let e = EngineError::MissingAlgorithm {
            mode: "delta-rr",
            expected: "delta",
        };
        assert!(e.to_string().contains("delta-rr"));
        let e = EngineError::DidNotConverge { rounds: 17 };
        assert!(e.to_string().contains("17"));
    }
}
