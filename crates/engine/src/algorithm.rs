//! The [`IterativeAlgorithm`] abstraction: a monotonic vertex update
//! function `F(·)` (paper §II–III) in gather/apply (fold) form, plus
//! initialization and convergence metadata.
//!
//! In each round the engine folds a vertex's in-neighbor states into an
//! accumulator (`gather`) and combines it with the current state
//! (`apply`). In synchronous mode the neighbor states come from the
//! previous round (Eq. 1); in asynchronous mode, neighbors earlier in the
//! processing order have already been updated this round (Eq. 2).
//! Monotonicity (Eq. 3) is what makes consuming fresher states both safe
//! and faster (Lemma 1 / Theorem 1).

use gograph_graph::{CsrGraph, VertexId, Weight};

/// How distance-to-convergence is aggregated over vertices
/// (paper §III: `max` for SSSP-style, `sum` for PageRank-style).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConvergenceNorm {
    /// `max_v |x*_v − x_v|` — distance-like algorithms.
    Max,
    /// `Σ_v |x*_v − x_v|` — mass-propagation algorithms.
    Sum,
}

/// Direction in which vertex states move monotonically during iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Monotonicity {
    /// States only decrease toward the fixpoint (SSSP, BFS, CC).
    Decreasing,
    /// States only increase toward the fixpoint (PageRank-from-zero, PHP,
    /// SSWP, Katz, Adsorption).
    Increasing,
}

/// A monotonic iterative graph algorithm in gather/apply form.
///
/// Implementations must be pure functions of their inputs so that the
/// synchronous and asynchronous engines reach the same fixpoint.
pub trait IterativeAlgorithm: Send + Sync {
    /// Algorithm name used in benchmark tables.
    fn name(&self) -> &'static str;

    /// Initial state of vertex `v`.
    fn init(&self, g: &CsrGraph, v: VertexId) -> f64;

    /// Identity element of the gather fold (e.g. `0.0` for sums,
    /// `+inf` for mins).
    fn gather_identity(&self) -> f64;

    /// Folds one in-neighbor contribution into the accumulator.
    /// `neighbor_state` is the neighbor's state (already updated this
    /// round for positive in-edges in async mode), `edge_weight` the
    /// weight of the edge `u -> v`, and `neighbor_out_degree` the
    /// neighbor's out-degree (PageRank-family normalization).
    fn gather(
        &self,
        acc: f64,
        neighbor_state: f64,
        edge_weight: Weight,
        neighbor_out_degree: usize,
    ) -> f64;

    /// Combines the gathered accumulator with the vertex's current state
    /// into its new state — the paper's `F(·)`.
    fn apply(&self, g: &CsrGraph, v: VertexId, current: f64, acc: f64) -> f64;

    /// Monotonic direction of the state trajectory.
    fn monotonicity(&self) -> Monotonicity;

    /// Norm used for distance-to-convergence traces (Fig. 7).
    fn norm(&self) -> ConvergenceNorm;

    /// Convergence threshold on the per-round state delta
    /// (paper §V-A: 1e-6 for PageRank/PHP; exact stability for
    /// SSSP/BFS/CC, encoded as 0.0).
    fn epsilon(&self) -> f64;

    /// Identifies this algorithm as one of the built-ins so the engines
    /// can run a statically dispatched (monomorphized) kernel instead of
    /// paying a vtable call per edge. The default `None` — what any
    /// user-supplied algorithm gets — selects the `dyn`-dispatch fallback
    /// kernel, which computes the same result.
    ///
    /// **Wrappers must keep the default.** A `Some` answer makes the
    /// engine run the returned by-value copy *instead of* `self`, so a
    /// wrapper that overrides any behavior (`epsilon`, `apply`, ...) but
    /// forwards this method would silently discard its overrides. Only a
    /// fully transparent delegator may forward it.
    fn monomorphized(&self) -> Option<crate::dispatch::AlgorithmKind> {
        None
    }

    /// Whether [`IterativeAlgorithm::gather`] reads its `edge_weight`
    /// argument. An algorithm whose gather is weight-free (PageRank-family
    /// degree normalization, BFS hop counts, CC label propagation) returns
    /// `false`, letting kernels skip the weight stream in the per-edge
    /// loop; its `gather` is then invoked with a placeholder weight. The
    /// default `true` is always safe.
    fn uses_edge_weights(&self) -> bool {
        true
    }

    /// Whether the engines may run this algorithm in the **push**
    /// (scatter) direction: instead of gathering a vertex's full
    /// in-neighborhood, an active neighbor `u` relaxes each out-edge
    /// `(u, v)` directly via
    /// `apply(g, v, x_v, gather(gather_identity(), x_u, w, |OUT(u)|))`.
    ///
    /// Returning `true` asserts that `apply` *distributes over the
    /// gather fold*: for any accumulator values `a`, `b` and state `c`,
    /// `apply(g, v, c, a ⊕ b) == apply(g, v, apply(g, v, c, a), b)`
    /// where `⊕` is the commutative, idempotent fold `gather`
    /// implements (min/max-style selections — SSSP, BFS, CC, SSWP —
    /// qualify; accumulative folds like PageRank's degree-normalized
    /// sum do **not**: a partial sum folded through `apply` would be
    /// double-scaled). Under that contract a sequence of single-edge
    /// relaxations reaches exactly the fixpoint the pull-direction
    /// gather reaches. The default `false` keeps every engine in the
    /// pull direction, which is always sound.
    fn supports_push(&self) -> bool {
        false
    }
}

/// Convenience: computes the full new state of `v` from scratch using
/// the given state array (the synchronous semantics). Shared by tests
/// and reference implementations.
pub fn evaluate_vertex<A: IterativeAlgorithm + ?Sized>(
    alg: &A,
    g: &CsrGraph,
    v: VertexId,
    states: &[f64],
) -> f64 {
    let mut acc = alg.gather_identity();
    for (u, w) in g.in_edges(v) {
        acc = alg.gather(acc, states[u as usize], w, g.out_degree(u));
    }
    alg.apply(g, v, states[v as usize], acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gograph_graph::CsrGraph;

    /// Minimal min-plus algorithm to exercise `evaluate_vertex`.
    struct MinPlus;
    impl IterativeAlgorithm for MinPlus {
        fn name(&self) -> &'static str {
            "minplus"
        }
        fn init(&self, _g: &CsrGraph, v: VertexId) -> f64 {
            if v == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        }
        fn gather_identity(&self) -> f64 {
            f64::INFINITY
        }
        fn gather(&self, acc: f64, s: f64, w: Weight, _d: usize) -> f64 {
            acc.min(s + w)
        }
        fn apply(&self, _g: &CsrGraph, _v: VertexId, cur: f64, acc: f64) -> f64 {
            cur.min(acc)
        }
        fn monotonicity(&self) -> Monotonicity {
            Monotonicity::Decreasing
        }
        fn norm(&self) -> ConvergenceNorm {
            ConvergenceNorm::Max
        }
        fn epsilon(&self) -> f64 {
            0.0
        }
    }

    #[test]
    fn evaluate_vertex_folds_in_neighbors() {
        let g = CsrGraph::from_edges(3, [(0u32, 2u32, 5.0f64), (1, 2, 1.0)]);
        let states = vec![0.0, 2.0, f64::INFINITY];
        let v = evaluate_vertex(&MinPlus, &g, 2, &states);
        assert_eq!(v, 3.0); // min(0+5, 2+1)
    }

    #[test]
    fn evaluate_vertex_no_in_neighbors_keeps_state() {
        let g = CsrGraph::from_edges(2, [(0u32, 1u32, 1.0f64)]);
        let states = vec![0.0, f64::INFINITY];
        assert_eq!(evaluate_vertex(&MinPlus, &g, 0, &states), 0.0);
    }
}
