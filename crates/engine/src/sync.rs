//! Synchronous (Jacobi / round-robin) engine — the paper's Eq. 1.
//!
//! Every vertex is updated from its neighbors' states of the *previous*
//! round, which requires double-buffered state (the memory overhead
//! Fig. 11 attributes to the synchronous baseline).

use crate::algorithm::IterativeAlgorithm;
use crate::convergence::{trace_point, DeltaAccumulator, RunStats};
use crate::dispatch::{dispatch_gather, GatherContext};
use crate::runner::RunConfig;
use gograph_graph::{CsrGraph, Permutation};
use std::time::Instant;

/// Runs `alg` on `g` synchronously, visiting vertices in `order` each
/// round (the visit order cannot change the result in this mode — only
/// memory access locality). Built-in algorithms are routed to a
/// statically dispatched instantiation of [`sync_kernel`]; user-supplied
/// ones run the same kernel through `dyn` dispatch.
pub fn run_sync(
    g: &CsrGraph,
    alg: &dyn IterativeAlgorithm,
    order: &Permutation,
    cfg: &RunConfig,
) -> RunStats {
    dispatch_gather!(alg, a => sync_kernel(g, a, order, cfg))
}

/// The synchronous round loop, generic over the algorithm so `gather` /
/// `apply` inline with a concrete `A`.
pub fn sync_kernel<A: IterativeAlgorithm + ?Sized>(
    g: &CsrGraph,
    alg: &A,
    order: &Permutation,
    cfg: &RunConfig,
) -> RunStats {
    let init: Vec<f64> = (0..g.num_vertices() as u32)
        .map(|v| alg.init(g, v))
        .collect();
    sync_kernel_warm(g, alg, order, cfg, init)
}

/// [`sync_kernel`] started from caller-supplied states instead of
/// `alg.init` — the warm-start entry the streaming subsystem uses to
/// resume from a previously converged state.
///
/// # Panics
/// Panics if `states.len() != g.num_vertices()` — callers go through
/// [`crate::ExecutionStrategy::run_warm`], which validates first.
pub fn sync_kernel_warm<A: IterativeAlgorithm + ?Sized>(
    g: &CsrGraph,
    alg: &A,
    order: &Permutation,
    cfg: &RunConfig,
    states: Vec<f64>,
) -> RunStats {
    let n = g.num_vertices();
    assert_eq!(order.len(), n, "order length must match vertex count");
    assert_eq!(states.len(), n, "state length must match vertex count");
    let ctx = GatherContext::new(g);
    let mut prev = states;
    let mut next: Vec<f64> = prev.clone();
    let eps = alg.epsilon();
    let start = Instant::now();
    let mut trace = Vec::new();
    if cfg.record_trace {
        trace.push(trace_point(0, start.elapsed(), f64::INFINITY, &prev));
    }

    let mut rounds = 0usize;
    let mut converged = false;
    while rounds < cfg.max_rounds {
        rounds += 1;
        let mut acc_delta = DeltaAccumulator::new(alg.norm());
        for &v in order.order() {
            let acc = ctx.gather(alg, v, &prev);
            let new = alg.apply(g, v, prev[v as usize], acc);
            acc_delta.record(prev[v as usize], new);
            next[v as usize] = new;
        }
        std::mem::swap(&mut prev, &mut next);
        if cfg.record_trace {
            trace.push(trace_point(
                rounds,
                start.elapsed(),
                acc_delta.value(),
                &prev,
            ));
        }
        if acc_delta.value() <= eps {
            converged = true;
            break;
        }
    }

    RunStats {
        rounds,
        runtime: start.elapsed(),
        converged,
        final_states: prev,
        trace,
        // Double-buffered state: the sync engine's extra footprint.
        state_memory_bytes: 2 * n * std::mem::size_of::<f64>(),
        evaluations: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{PageRank, Sssp};
    use gograph_graph::generators::regular::{chain, cycle};

    #[test]
    fn sssp_on_chain_takes_n_minus_1_rounds_plus_fixpoint_check() {
        let g = chain(6);
        let stats = run_sync(
            &g,
            &Sssp::new(0),
            &Permutation::identity(6),
            &RunConfig::default(),
        );
        assert!(stats.converged);
        // Distance i reaches vertex i in round i; one extra round detects
        // stability... but with identity order each round relaxes the next
        // hop, so 5 rounds propagate + 1 to confirm.
        assert_eq!(stats.final_states, vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!(stats.rounds >= 5);
    }

    #[test]
    fn sync_result_is_order_independent() {
        let g = cycle(8);
        let a = run_sync(
            &g,
            &Sssp::new(0),
            &Permutation::identity(8),
            &RunConfig::default(),
        );
        let rev = Permutation::identity(8).reversed();
        let b = run_sync(&g, &Sssp::new(0), &rev, &RunConfig::default());
        assert_eq!(a.final_states, b.final_states);
        assert_eq!(a.rounds, b.rounds);
    }

    #[test]
    fn pagerank_converges_on_cycle() {
        let g = cycle(5);
        let stats = run_sync(
            &g,
            &PageRank::default(),
            &Permutation::identity(5),
            &RunConfig::default(),
        );
        assert!(stats.converged);
        for &x in &stats.final_states {
            assert!((x - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn trace_records_rounds() {
        let g = chain(4);
        let cfg = RunConfig {
            record_trace: true,
            ..Default::default()
        };
        let stats = run_sync(&g, &Sssp::new(0), &Permutation::identity(4), &cfg);
        assert_eq!(stats.trace.len(), stats.rounds + 1);
        assert_eq!(stats.trace[0].round, 0);
        // finite sum grows as vertices are reached... and the last round's
        // delta is 0 (stability confirmation).
        assert_eq!(stats.trace.last().unwrap().delta, 0.0);
    }

    #[test]
    fn round_cap_respected() {
        let g = chain(100);
        let cfg = RunConfig {
            max_rounds: 3,
            ..Default::default()
        };
        let stats = run_sync(&g, &Sssp::new(0), &Permutation::identity(100), &cfg);
        assert!(!stats.converged);
        assert_eq!(stats.rounds, 3);
    }
}
