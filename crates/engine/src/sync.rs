//! Synchronous (Jacobi / round-robin) engine — the paper's Eq. 1.
//!
//! Every vertex is updated from its neighbors' states of the *previous*
//! round, which requires double-buffered state (the memory overhead
//! Fig. 11 attributes to the synchronous baseline).
//!
//! The round loop is direction-optimized (see [`crate::direction`]):
//! once the per-round changed set turns sparse, rounds either gather
//! only the affected vertices (sparse pull) or scatter the changed
//! vertices' out-edges (push, for
//! [`IterativeAlgorithm::supports_push`] algorithms), and dense rounds
//! under an identity order run the cache-blocked sweep. Every shape
//! reproduces the historical full sweep's states exactly: a vertex is
//! skipped only when its state and every in-neighbor state are
//! unchanged since the previous round, which makes its re-evaluation a
//! fixed point of the same pure function.

use crate::algorithm::IterativeAlgorithm;
use crate::convergence::{trace_point, DeltaAccumulator, RunStats};
use crate::direction::{
    choose_push, push_mass, BlockedSweep, DENSE_EVAL_DENOMINATOR, GENERAL_DENSE_DENOMINATOR,
};
use crate::dispatch::{dispatch_gather, GatherContext, ScatterContext};
use crate::runner::RunConfig;
use gograph_graph::{CsrGraph, Frontier, Permutation};
use std::time::Instant;

/// Runs `alg` on `g` synchronously, visiting vertices in `order` each
/// round (the visit order cannot change the result in this mode — only
/// memory access locality). Built-in algorithms are routed to a
/// statically dispatched instantiation of [`sync_kernel`]; user-supplied
/// ones run the same kernel through `dyn` dispatch.
pub fn run_sync(
    g: &CsrGraph,
    alg: &dyn IterativeAlgorithm,
    order: &Permutation,
    cfg: &RunConfig,
) -> RunStats {
    dispatch_gather!(alg, a => sync_kernel(g, a, order, cfg))
}

/// The synchronous round loop, generic over the algorithm so `gather` /
/// `apply` inline with a concrete `A`.
pub fn sync_kernel<A: IterativeAlgorithm + ?Sized>(
    g: &CsrGraph,
    alg: &A,
    order: &Permutation,
    cfg: &RunConfig,
) -> RunStats {
    let init: Vec<f64> = (0..g.num_vertices() as u32)
        .map(|v| alg.init(g, v))
        .collect();
    sync_kernel_warm(g, alg, order, cfg, init)
}

/// [`sync_kernel`] started from caller-supplied states instead of
/// `alg.init` — the warm-start entry the streaming subsystem uses to
/// resume from a previously converged state.
///
/// # Panics
/// Panics if `states.len() != g.num_vertices()` — callers go through
/// [`crate::ExecutionStrategy::run_warm`], which validates first.
pub fn sync_kernel_warm<A: IterativeAlgorithm + ?Sized>(
    g: &CsrGraph,
    alg: &A,
    order: &Permutation,
    cfg: &RunConfig,
    states: Vec<f64>,
) -> RunStats {
    let n = g.num_vertices();
    assert_eq!(order.len(), n, "order length must match vertex count");
    assert_eq!(states.len(), n, "state length must match vertex count");
    let ctx = GatherContext::new(g);
    let sctx = ScatterContext::new(g);
    let num_edges = g.num_edges();
    // `states` is the committed (previous-round) view; `scratch` holds
    // the in-flight round's outputs for exactly the vertices it
    // evaluates, then commit copies the changes back — so both buffers
    // agree outside the evaluated set and sparse rounds never pay an
    // O(n) swap-and-copy.
    let mut states = states;
    let mut scratch: Vec<f64> = states.clone();
    let supports_push = alg.supports_push();
    let force_push = supports_push && cfg.direction == crate::direction::DirectionPolicy::PushOnly;
    let dense_denom =
        if supports_push && cfg.direction != crate::direction::DirectionPolicy::PullOnly {
            DENSE_EVAL_DENOMINATOR
        } else {
            GENERAL_DENSE_DENOMINATOR
        };
    let eps = alg.epsilon();
    let start = Instant::now();
    let mut trace = Vec::new();
    if cfg.record_trace {
        trace.push(trace_point(0, start.elapsed(), f64::INFINITY, &states));
    }

    // Positions (not vertex ids) whose state changed last round / this
    // round; `None` = everything (the cold first round). `changed_count`
    // is the true change count — dense sweeps stop materializing
    // members once the count alone forces the next round dense, so the
    // set may be partial and only the count is then consulted.
    let mut changed: Option<Frontier> = None;
    let mut changed_count = 0usize;
    let mut next_changed = Frontier::new(n);
    // Reused scratch sets for sparse rounds.
    let mut affected = Frontier::new(n);
    let mut touched = Frontier::new(n);
    // Cache-blocked dense sweep (identity order only), built on first
    // use; `acc` is its per-destination accumulator array.
    let mut blocked: Option<Option<BlockedSweep>> = None;
    let mut acc_buf: Vec<f64> = Vec::new();

    let mut rounds = 0usize;
    let mut converged = false;
    let mut push_rounds = 0usize;
    while rounds < cfg.max_rounds {
        rounds += 1;
        let mut acc_delta = DeltaAccumulator::new(alg.norm());
        next_changed.clear();
        let mut next_count = 0usize;

        // Near-full changed sets go back to the dense streaming sweep
        // even for push-capable algorithms; a forced PushOnly policy
        // overrides (a full-universe push then scatters every edge).
        let dense = match &changed {
            None => true,
            Some(_) => changed_count * dense_denom > n,
        };
        let push = match &changed {
            None => force_push,
            Some(c) => {
                (force_push || !dense)
                    && choose_push(
                        cfg.direction,
                        supports_push,
                        push_mass(c, order, ctx.out_degrees()),
                        num_edges,
                    )
            }
        };

        if push {
            // Push round: scatter each changed vertex's previous-round
            // state over its out-edges into `scratch` (first touch
            // copies the committed value), then commit the touched set.
            push_rounds += 1;
            touched.clear();
            let mut relax = |pos: usize| {
                let u = order.vertex_at(pos);
                let su = states[u as usize];
                sctx.scatter(alg, u, su, |v, cand| {
                    if touched.insert(order.position(v)) {
                        scratch[v as usize] = states[v as usize];
                    }
                    scratch[v as usize] = alg.apply(g, v, scratch[v as usize], cand);
                });
            };
            match &changed {
                None => (0..n).for_each(&mut relax),
                Some(c) => c.for_each_ascending(|p| relax(p as usize)),
            }
            touched.for_each_ascending(|p| {
                let v = order.vertex_at(p as usize) as usize;
                let (old, new) = (states[v], scratch[v]);
                acc_delta.record(old, new);
                if new != old {
                    states[v] = new;
                    next_count += 1;
                    next_changed.insert(p);
                }
            });
        } else if dense {
            // Full pull sweep — cache-blocked when the order is the
            // identity and the state array overflows the LLC budget.
            if blocked.is_none() {
                blocked = Some(if order.is_identity() {
                    BlockedSweep::build(g, BlockedSweep::block_positions(cfg.llc_bytes))
                } else {
                    None
                });
            }
            if let Some(Some(bs)) = &blocked {
                acc_buf.clear();
                acc_buf.resize(n, alg.gather_identity());
                bs.accumulate(&ctx, alg, &states, &mut acc_buf);
                for v in 0..n {
                    scratch[v] = alg.apply(g, v as u32, states[v], acc_buf[v]);
                }
            } else {
                for &v in order.order() {
                    let acc = ctx.gather(alg, v, &states);
                    scratch[v as usize] = alg.apply(g, v, states[v as usize], acc);
                }
            }
            // Member tracking stops once the count alone pins the next
            // round dense. (PushOnly never reaches a dense pull round:
            // force_push routes every round to the push arm.)
            let mut tracking = true;
            for pos in 0..n {
                let v = order.vertex_at(pos) as usize;
                let (old, new) = (states[v], scratch[v]);
                acc_delta.record(old, new);
                if new != old {
                    states[v] = new;
                    next_count += 1;
                    if tracking {
                        next_changed.insert(pos as u32);
                        if next_count * dense_denom > n {
                            tracking = false;
                        }
                    }
                }
            }
        } else {
            // Sparse pull: re-evaluate the changed set and its
            // out-neighborhoods; everything else is a fixed point of
            // the previous round's inputs.
            let c = changed.as_ref().expect("sparse round has a changed set");
            affected.clear();
            c.for_each(|p| {
                affected.insert(p);
                g.for_each_out_neighbor(order.vertex_at(p as usize), |w| {
                    affected.insert(order.position(w));
                });
            });
            affected.for_each_ascending(|p| {
                let v = order.vertex_at(p as usize);
                let acc = ctx.gather(alg, v, &states);
                scratch[v as usize] = alg.apply(g, v, states[v as usize], acc);
            });
            affected.for_each_ascending(|p| {
                let v = order.vertex_at(p as usize) as usize;
                let (old, new) = (states[v], scratch[v]);
                acc_delta.record(old, new);
                if new != old {
                    states[v] = new;
                    next_count += 1;
                    next_changed.insert(p);
                }
            });
        }

        if cfg.record_trace {
            trace.push(trace_point(
                rounds,
                start.elapsed(),
                acc_delta.value(),
                &states,
            ));
        }
        if acc_delta.value() <= eps {
            converged = true;
            break;
        }
        match &mut changed {
            None => changed = Some(std::mem::replace(&mut next_changed, Frontier::new(n))),
            Some(c) => std::mem::swap(c, &mut next_changed),
        }
        changed_count = next_count;
    }

    RunStats {
        rounds,
        runtime: start.elapsed(),
        converged,
        final_states: states,
        trace,
        // Double-buffered state (the sync engine's extra footprint),
        // plus the frontier sets, the blocked sweep's span table and
        // its accumulator array when built.
        state_memory_bytes: 2 * n * std::mem::size_of::<f64>()
            + changed.as_ref().map_or(0, |c| c.memory_bytes())
            + next_changed.memory_bytes()
            + affected.memory_bytes()
            + touched.memory_bytes()
            + acc_buf.capacity() * std::mem::size_of::<f64>()
            + blocked
                .as_ref()
                .and_then(|b| b.as_ref())
                .map_or(0, |b| b.memory_bytes()),
        evaluations: None,
        push_rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{PageRank, Sssp};
    use gograph_graph::generators::regular::{chain, cycle};

    #[test]
    fn sssp_on_chain_takes_n_minus_1_rounds_plus_fixpoint_check() {
        let g = chain(6);
        let stats = run_sync(
            &g,
            &Sssp::new(0),
            &Permutation::identity(6),
            &RunConfig::default(),
        );
        assert!(stats.converged);
        // Distance i reaches vertex i in round i; one extra round detects
        // stability... but with identity order each round relaxes the next
        // hop, so 5 rounds propagate + 1 to confirm.
        assert_eq!(stats.final_states, vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!(stats.rounds >= 5);
    }

    #[test]
    fn sync_result_is_order_independent() {
        let g = cycle(8);
        let a = run_sync(
            &g,
            &Sssp::new(0),
            &Permutation::identity(8),
            &RunConfig::default(),
        );
        let rev = Permutation::identity(8).reversed();
        let b = run_sync(&g, &Sssp::new(0), &rev, &RunConfig::default());
        assert_eq!(a.final_states, b.final_states);
        assert_eq!(a.rounds, b.rounds);
    }

    #[test]
    fn pagerank_converges_on_cycle() {
        let g = cycle(5);
        let stats = run_sync(
            &g,
            &PageRank::default(),
            &Permutation::identity(5),
            &RunConfig::default(),
        );
        assert!(stats.converged);
        for &x in &stats.final_states {
            assert!((x - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn trace_records_rounds() {
        let g = chain(4);
        let cfg = RunConfig {
            record_trace: true,
            ..Default::default()
        };
        let stats = run_sync(&g, &Sssp::new(0), &Permutation::identity(4), &cfg);
        assert_eq!(stats.trace.len(), stats.rounds + 1);
        assert_eq!(stats.trace[0].round, 0);
        // finite sum grows as vertices are reached... and the last round's
        // delta is 0 (stability confirmation).
        assert_eq!(stats.trace.last().unwrap().delta, 0.0);
    }

    #[test]
    fn round_cap_respected() {
        let g = chain(100);
        let cfg = RunConfig {
            max_rounds: 3,
            ..Default::default()
        };
        let stats = run_sync(&g, &Sssp::new(0), &Permutation::identity(100), &cfg);
        assert!(!stats.converged);
        assert_eq!(stats.rounds, 3);
    }
}
