//! The [`ExecutionStrategy`] trait: one dispatch point unifying the
//! sync, async, block-parallel, worklist and delta engines.
//!
//! Every engine family consumes the same inputs — a graph, an algorithm,
//! a processing order and a [`RunConfig`] — and produces [`RunStats`].
//! The strategies validate those inputs and return [`EngineError`]
//! instead of panicking, which is what lets [`crate::Pipeline`] expose a
//! single fallible entry point over the whole family.

use crate::algorithm::IterativeAlgorithm;
use crate::convergence::RunStats;
use crate::delta::{
    delta_priority_core, delta_priority_kernel_warm, delta_round_robin_core,
    delta_round_robin_kernel_warm, DeltaAlgorithm, DeltaSchedule,
};
use crate::dispatch::{dispatch_delta, dispatch_gather};
use crate::error::EngineError;
use crate::runner::{Mode, RunConfig};
use crate::worklist::{worklist_core, worklist_kernel_warm};
use crate::{
    asynch::{async_kernel_warm, run_async},
    parallel::{parallel_kernel_warm, run_parallel},
    sync::{run_sync, sync_kernel_warm},
};
use gograph_graph::{CsrGraph, Frontier, Permutation, VertexId};

/// A borrowed algorithm of either family. The gather family
/// ([`IterativeAlgorithm`]) recomputes a vertex from all in-neighbors;
/// the delta family ([`DeltaAlgorithm`]) accumulates unconsumed change.
#[derive(Clone, Copy)]
pub enum AlgorithmRef<'a> {
    /// A gather-apply algorithm (sync / async / parallel / worklist).
    Gather(&'a dyn IterativeAlgorithm),
    /// A delta-accumulative algorithm (Maiter / PrIter engines).
    Delta(&'a dyn DeltaAlgorithm),
}

impl AlgorithmRef<'_> {
    /// `"gather"` or `"delta"` — used in error reporting.
    pub fn kind(&self) -> &'static str {
        match self {
            AlgorithmRef::Gather(_) => "gather",
            AlgorithmRef::Delta(_) => "delta",
        }
    }

    /// The wrapped algorithm's display name.
    pub fn name(&self) -> &'static str {
        match self {
            AlgorithmRef::Gather(a) => a.name(),
            AlgorithmRef::Delta(a) => a.name(),
        }
    }
}

/// Caller-supplied starting point for a [`ExecutionStrategy::run_warm`]
/// execution — the carrier of previously converged state when a graph
/// evolves (see [`crate::StreamingPipeline`]).
///
/// Soundness is the *caller's* responsibility: for a monotonically
/// decreasing gather algorithm the states must be element-wise upper
/// bounds of the new fixpoint (e.g. the old converged states after an
/// insert-only batch, with every vertex that could depend on a deleted
/// edge reset to `init`), and for an increasing one lower bounds. The
/// engines iterate from whatever they are given.
#[derive(Debug, Clone)]
pub struct WarmStart {
    /// Initial per-vertex states (length = vertex count).
    pub states: Vec<f64>,
    /// Vertices whose inputs changed and that must be re-evaluated
    /// first, as a hybrid [`Frontier`] set. Consumed by the worklist
    /// engine (activation spreads from here), the block-parallel engine
    /// (first round pulls exactly this set, then activation spreads),
    /// and the delta engines (pending deltas are seeded here); the
    /// remaining full-scan engines re-evaluate everything regardless.
    /// `None` means every vertex.
    pub frontier: Option<Frontier>,
    /// Pending per-vertex deltas for the delta-family engines (length =
    /// vertex count). `None` derives frontier deltas by gathering each
    /// frontier vertex's candidates from its in-edges — sound for
    /// idempotent `⊕` (min/max-style) algorithms, where a settled
    /// neighbor state acts as a consumable delta; sum-style (`⊕ = +`)
    /// algorithms must supply explicit deltas instead.
    pub deltas: Option<Vec<f64>>,
}

impl WarmStart {
    /// A warm start from converged states, re-evaluating everything.
    pub fn from_states(states: Vec<f64>) -> Self {
        WarmStart {
            states,
            frontier: None,
            deltas: None,
        }
    }

    /// Restricts initial re-evaluation to the listed vertices
    /// (duplicates are deduplicated into a [`Frontier`]).
    pub fn with_frontier(mut self, frontier: Vec<VertexId>) -> Self {
        let universe = frontier.iter().map(|&v| v as usize + 1).max().unwrap_or(0);
        self.frontier = Some(Frontier::from_members(universe, frontier));
        self
    }

    /// Restricts initial re-evaluation to an already-built [`Frontier`]
    /// (the zero-copy path the streaming subsystem uses).
    pub fn with_frontier_set(mut self, frontier: Frontier) -> Self {
        self.frontier = Some(frontier);
        self
    }

    /// Supplies explicit pending deltas for the delta-family engines.
    pub fn with_deltas(mut self, deltas: Vec<f64>) -> Self {
        self.deltas = Some(deltas);
        self
    }
}

/// One execution engine behind a uniform, fallible interface.
pub trait ExecutionStrategy {
    /// Strategy name (matches [`Mode::name`]).
    fn name(&self) -> &'static str;

    /// Runs `alg` on `g` visiting vertices in `order` under `cfg`.
    fn run(
        &self,
        g: &CsrGraph,
        alg: AlgorithmRef<'_>,
        order: &Permutation,
        cfg: &RunConfig,
    ) -> Result<RunStats, EngineError>;

    /// Runs `alg` on `g` starting from a [`WarmStart`] instead of the
    /// algorithm's initial state. The default rejects warm execution
    /// ([`EngineError::WarmStartUnsupported`]); every built-in strategy
    /// overrides it.
    fn run_warm(
        &self,
        _g: &CsrGraph,
        _alg: AlgorithmRef<'_>,
        _order: &Permutation,
        _cfg: &RunConfig,
        _warm: WarmStart,
    ) -> Result<RunStats, EngineError> {
        Err(EngineError::WarmStartUnsupported { mode: self.name() })
    }
}

/// Shared validation: the order must cover the graph exactly.
fn check_order(g: &CsrGraph, order: &Permutation) -> Result<(), EngineError> {
    if order.len() != g.num_vertices() {
        return Err(EngineError::OrderLengthMismatch {
            order_len: order.len(),
            num_vertices: g.num_vertices(),
        });
    }
    Ok(())
}

/// Shared warm-start validation: state/delta lengths and frontier range.
fn check_warm(g: &CsrGraph, warm: &WarmStart) -> Result<(), EngineError> {
    let n = g.num_vertices();
    if warm.states.len() != n {
        return Err(EngineError::InvalidParameter {
            name: "warm_start.states",
            message: format!(
                "length {} does not match vertex count {n}",
                warm.states.len()
            ),
        });
    }
    if let Some(deltas) = &warm.deltas {
        if deltas.len() != n {
            return Err(EngineError::InvalidParameter {
                name: "warm_start.deltas",
                message: format!("length {} does not match vertex count {n}", deltas.len()),
            });
        }
    }
    if let Some(frontier) = &warm.frontier {
        let mut out_of_range = None;
        frontier.for_each(|v| {
            if v as usize >= n && out_of_range.is_none() {
                out_of_range = Some(v);
            }
        });
        if let Some(v) = out_of_range {
            return Err(EngineError::InvalidParameter {
                name: "warm_start.frontier",
                message: format!("vertex {v} out of range for {n} vertices"),
            });
        }
    }
    Ok(())
}

/// Gather-family strategies have no notion of pending deltas; passing
/// them is a caller mix-up worth surfacing.
fn reject_deltas(strategy: &dyn ExecutionStrategy, warm: &WarmStart) -> Result<(), EngineError> {
    if warm.deltas.is_some() {
        return Err(EngineError::InvalidParameter {
            name: "warm_start.deltas",
            message: format!(
                "mode {:?} runs gather algorithms; pending deltas only apply to delta modes",
                strategy.name()
            ),
        });
    }
    Ok(())
}

/// [`crate::DirectionPolicy::PushOnly`] demands an algorithm whose
/// `apply` distributes over its gather fold
/// ([`IterativeAlgorithm::supports_push`]); anything else cannot run
/// scatter-only and is rejected up front instead of silently pulling.
fn check_push_only(cfg: &RunConfig, alg: &dyn IterativeAlgorithm) -> Result<(), EngineError> {
    if cfg.direction == crate::direction::DirectionPolicy::PushOnly && !alg.supports_push() {
        return Err(EngineError::InvalidParameter {
            name: "direction",
            message: format!(
                "DirectionPolicy::PushOnly requires an algorithm with supports_push(); \
                 {} gathers accumulatively and can only run pull",
                alg.name()
            ),
        });
    }
    Ok(())
}

fn require_gather<'a>(
    strategy: &dyn ExecutionStrategy,
    alg: AlgorithmRef<'a>,
) -> Result<&'a dyn IterativeAlgorithm, EngineError> {
    match alg {
        AlgorithmRef::Gather(a) => Ok(a),
        AlgorithmRef::Delta(_) => Err(EngineError::IncompatibleAlgorithm {
            mode: strategy.name(),
            provided: "delta",
        }),
    }
}

fn require_delta<'a>(
    strategy: &dyn ExecutionStrategy,
    alg: AlgorithmRef<'a>,
) -> Result<&'a dyn DeltaAlgorithm, EngineError> {
    match alg {
        AlgorithmRef::Delta(a) => Ok(a),
        AlgorithmRef::Gather(_) => Err(EngineError::IncompatibleAlgorithm {
            mode: strategy.name(),
            provided: "gather",
        }),
    }
}

/// Synchronous (Jacobi) execution — [`crate::sync::run_sync`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SyncStrategy;

impl ExecutionStrategy for SyncStrategy {
    fn name(&self) -> &'static str {
        "sync"
    }

    fn run(
        &self,
        g: &CsrGraph,
        alg: AlgorithmRef<'_>,
        order: &Permutation,
        cfg: &RunConfig,
    ) -> Result<RunStats, EngineError> {
        check_order(g, order)?;
        let alg = require_gather(self, alg)?;
        check_push_only(cfg, alg)?;
        Ok(run_sync(g, alg, order, cfg))
    }

    fn run_warm(
        &self,
        g: &CsrGraph,
        alg: AlgorithmRef<'_>,
        order: &Permutation,
        cfg: &RunConfig,
        warm: WarmStart,
    ) -> Result<RunStats, EngineError> {
        check_order(g, order)?;
        check_warm(g, &warm)?;
        reject_deltas(self, &warm)?;
        let alg = require_gather(self, alg)?;
        check_push_only(cfg, alg)?;
        Ok(dispatch_gather!(alg, a => sync_kernel_warm(g, a, order, cfg, warm.states)))
    }
}

/// Asynchronous (Gauss–Seidel) execution — [`crate::asynch::run_async`].
#[derive(Debug, Clone, Copy, Default)]
pub struct AsyncStrategy;

impl ExecutionStrategy for AsyncStrategy {
    fn name(&self) -> &'static str {
        "async"
    }

    fn run(
        &self,
        g: &CsrGraph,
        alg: AlgorithmRef<'_>,
        order: &Permutation,
        cfg: &RunConfig,
    ) -> Result<RunStats, EngineError> {
        check_order(g, order)?;
        let alg = require_gather(self, alg)?;
        check_push_only(cfg, alg)?;
        Ok(run_async(g, alg, order, cfg))
    }

    fn run_warm(
        &self,
        g: &CsrGraph,
        alg: AlgorithmRef<'_>,
        order: &Permutation,
        cfg: &RunConfig,
        warm: WarmStart,
    ) -> Result<RunStats, EngineError> {
        check_order(g, order)?;
        check_warm(g, &warm)?;
        reject_deltas(self, &warm)?;
        let alg = require_gather(self, alg)?;
        check_push_only(cfg, alg)?;
        Ok(dispatch_gather!(alg, a => async_kernel_warm(g, a, order, cfg, warm.states)))
    }
}

/// Block-parallel asynchronous execution —
/// [`crate::parallel::run_parallel`]. Direction-optimized like the
/// sequential engines (`parallelism(n)` × [`DirectionPolicy`] compose),
/// so `PushOnly` validation matches the async strategy at every block
/// count, and a [`WarmStart::with_frontier`] seed flows into the kernel
/// as the first round's exact pull set.
#[derive(Debug, Clone, Copy)]
pub struct ParallelStrategy {
    /// Number of order blocks executed concurrently per round. Clamped
    /// to `1..=n` like the underlying engine always has (so
    /// `Parallel(0)` degenerates to one block, never an error).
    pub blocks: usize,
}

impl ExecutionStrategy for ParallelStrategy {
    fn name(&self) -> &'static str {
        "parallel"
    }

    fn run(
        &self,
        g: &CsrGraph,
        alg: AlgorithmRef<'_>,
        order: &Permutation,
        cfg: &RunConfig,
    ) -> Result<RunStats, EngineError> {
        check_order(g, order)?;
        let alg = require_gather(self, alg)?;
        check_push_only(cfg, alg)?;
        Ok(run_parallel(g, alg, order, self.blocks, cfg))
    }

    fn run_warm(
        &self,
        g: &CsrGraph,
        alg: AlgorithmRef<'_>,
        order: &Permutation,
        cfg: &RunConfig,
        warm: WarmStart,
    ) -> Result<RunStats, EngineError> {
        check_order(g, order)?;
        check_warm(g, &warm)?;
        reject_deltas(self, &warm)?;
        let alg = require_gather(self, alg)?;
        check_push_only(cfg, alg)?;
        let blocks = self.blocks;
        let WarmStart {
            states, frontier, ..
        } = warm;
        Ok(dispatch_gather!(
            alg,
            a => parallel_kernel_warm(g, a, order, blocks, cfg, states, frontier.as_ref())
        ))
    }
}

/// Active-frontier worklist execution — the engine of
/// [`crate::worklist`]. The returned stats carry
/// [`RunStats::evaluations`].
#[derive(Debug, Clone, Copy, Default)]
pub struct WorklistStrategy;

impl ExecutionStrategy for WorklistStrategy {
    fn name(&self) -> &'static str {
        "worklist"
    }

    fn run(
        &self,
        g: &CsrGraph,
        alg: AlgorithmRef<'_>,
        order: &Permutation,
        cfg: &RunConfig,
    ) -> Result<RunStats, EngineError> {
        check_order(g, order)?;
        let alg = require_gather(self, alg)?;
        check_push_only(cfg, alg)?;
        Ok(worklist_core(g, alg, order, cfg))
    }

    fn run_warm(
        &self,
        g: &CsrGraph,
        alg: AlgorithmRef<'_>,
        order: &Permutation,
        cfg: &RunConfig,
        warm: WarmStart,
    ) -> Result<RunStats, EngineError> {
        check_order(g, order)?;
        check_warm(g, &warm)?;
        reject_deltas(self, &warm)?;
        let alg = require_gather(self, alg)?;
        check_push_only(cfg, alg)?;
        let WarmStart {
            states, frontier, ..
        } = warm;
        Ok(dispatch_gather!(
            alg,
            a => worklist_kernel_warm(g, a, order, cfg, states, frontier.as_ref())
        ))
    }
}

/// Delta-accumulative execution (Maiter round-robin or PrIter
/// prioritized) — the engines of [`crate::delta`].
#[derive(Debug, Clone, Copy)]
pub struct DeltaStrategy {
    /// Which delta scheduling discipline to run.
    pub schedule: DeltaSchedule,
}

impl ExecutionStrategy for DeltaStrategy {
    fn name(&self) -> &'static str {
        match self.schedule {
            DeltaSchedule::RoundRobin => "delta-rr",
            DeltaSchedule::Priority { .. } => "delta-priority",
        }
    }

    fn run(
        &self,
        g: &CsrGraph,
        alg: AlgorithmRef<'_>,
        order: &Permutation,
        cfg: &RunConfig,
    ) -> Result<RunStats, EngineError> {
        let alg = require_delta(self, alg)?;
        match self.schedule {
            DeltaSchedule::RoundRobin => {
                check_order(g, order)?;
                Ok(delta_round_robin_core(g, alg, order, cfg))
            }
            DeltaSchedule::Priority { batch_fraction } => {
                if !(batch_fraction > 0.0 && batch_fraction <= 1.0) {
                    return Err(EngineError::InvalidParameter {
                        name: "batch_fraction",
                        message: format!("must be in (0, 1], got {batch_fraction}"),
                    });
                }
                // The priority engine schedules by |delta|, not by
                // position, so the order is intentionally unused.
                Ok(delta_priority_core(g, alg, batch_fraction, cfg))
            }
        }
    }

    fn run_warm(
        &self,
        g: &CsrGraph,
        alg: AlgorithmRef<'_>,
        order: &Permutation,
        cfg: &RunConfig,
        warm: WarmStart,
    ) -> Result<RunStats, EngineError> {
        let alg = require_delta(self, alg)?;
        check_warm(g, &warm)?;
        let WarmStart {
            states,
            frontier,
            deltas,
        } = warm;
        let deltas = match deltas {
            Some(d) => d,
            // Derive pending deltas at the frontier: each frontier
            // vertex gathers the candidates its in-neighbors' *settled*
            // states offer (a settled state consumed as a delta). Sound
            // only when `⊕` is idempotent (min/max-style): for an
            // accumulative `⊕` the candidates would double-count mass
            // already folded into the states, so those algorithms must
            // pass explicit deltas.
            None => {
                if !alg.combine_is_idempotent() {
                    return Err(EngineError::InvalidParameter {
                        name: "warm_start.deltas",
                        message: format!(
                            "{} does not declare an idempotent ⊕ \
                             (DeltaAlgorithm::combine_is_idempotent): frontier delta \
                             derivation would double-count accumulated mass — supply \
                             explicit pending deltas",
                            alg.name()
                        ),
                    });
                }
                let n = g.num_vertices();
                let mut derived = vec![alg.identity(); n];
                let derive = |d: &mut Vec<f64>, v: VertexId| {
                    // Re-offer the vertex's base contribution (the
                    // algorithm's source term — e.g. the SSSP source's
                    // distance 0): a frontier vertex whose state was
                    // reset must be able to recover it without waiting
                    // on any neighbor.
                    let mut acc = alg.combine(alg.identity(), alg.init_delta(g, v));
                    for (u, w) in g.in_edges(v) {
                        let settled = states[u as usize];
                        if settled.is_finite() {
                            acc = alg.combine(acc, alg.propagate(g, u, v, w, settled));
                        }
                    }
                    d[v as usize] = acc;
                };
                match &frontier {
                    Some(f) => f.for_each_ascending(|v| derive(&mut derived, v)),
                    None => (0..n as VertexId).for_each(|v| derive(&mut derived, v)),
                }
                derived
            }
        };
        match self.schedule {
            DeltaSchedule::RoundRobin => {
                check_order(g, order)?;
                Ok(dispatch_delta!(
                    alg,
                    a => delta_round_robin_kernel_warm(g, a, order, cfg, states, deltas)
                ))
            }
            DeltaSchedule::Priority { batch_fraction } => {
                if !(batch_fraction > 0.0 && batch_fraction <= 1.0) {
                    return Err(EngineError::InvalidParameter {
                        name: "batch_fraction",
                        message: format!("must be in (0, 1], got {batch_fraction}"),
                    });
                }
                Ok(dispatch_delta!(
                    alg,
                    a => delta_priority_kernel_warm(g, a, batch_fraction, cfg, states, deltas)
                ))
            }
        }
    }
}

/// The strategy implementing a [`Mode`].
pub fn strategy_for(mode: Mode) -> Box<dyn ExecutionStrategy> {
    match mode {
        Mode::Sync => Box::new(SyncStrategy),
        Mode::Async => Box::new(AsyncStrategy),
        Mode::Parallel(blocks) => Box::new(ParallelStrategy { blocks }),
        Mode::Worklist => Box::new(WorklistStrategy),
        Mode::Delta(schedule) => Box::new(DeltaStrategy { schedule }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::Sssp;
    use crate::delta::DeltaSssp;
    use gograph_graph::generators::regular::chain;

    #[test]
    fn every_mode_resolves_to_its_strategy() {
        for (mode, name) in [
            (Mode::Sync, "sync"),
            (Mode::Async, "async"),
            (Mode::Parallel(4), "parallel"),
            (Mode::Worklist, "worklist"),
            (Mode::Delta(DeltaSchedule::RoundRobin), "delta-rr"),
            (
                Mode::Delta(DeltaSchedule::Priority {
                    batch_fraction: 0.1,
                }),
                "delta-priority",
            ),
        ] {
            assert_eq!(strategy_for(mode).name(), name);
            assert_eq!(mode.name(), name);
        }
    }

    #[test]
    fn order_mismatch_is_an_error_not_a_panic() {
        let g = chain(10);
        let bad = Permutation::identity(7);
        let alg = Sssp::new(0);
        let err = strategy_for(Mode::Async)
            .run(&g, AlgorithmRef::Gather(&alg), &bad, &RunConfig::default())
            .unwrap_err();
        assert_eq!(
            err,
            EngineError::OrderLengthMismatch {
                order_len: 7,
                num_vertices: 10
            }
        );
    }

    #[test]
    fn wrong_algorithm_family_is_rejected() {
        let g = chain(5);
        let id = Permutation::identity(5);
        let gather = Sssp::new(0);
        let delta = DeltaSssp { source: 0 };
        let cfg = RunConfig::default();
        let err = strategy_for(Mode::Delta(DeltaSchedule::RoundRobin))
            .run(&g, AlgorithmRef::Gather(&gather), &id, &cfg)
            .unwrap_err();
        assert!(matches!(
            err,
            EngineError::IncompatibleAlgorithm {
                provided: "gather",
                ..
            }
        ));
        let err = strategy_for(Mode::Async)
            .run(&g, AlgorithmRef::Delta(&delta), &id, &cfg)
            .unwrap_err();
        assert!(matches!(
            err,
            EngineError::IncompatibleAlgorithm {
                provided: "delta",
                ..
            }
        ));
    }

    #[test]
    fn zero_blocks_clamps_like_the_legacy_engine() {
        // Parallel(0) has always meant "one block" (run_parallel clamps);
        // the strategy layer must preserve that, not reject it.
        let g = chain(6);
        let id = Permutation::identity(6);
        let alg = Sssp::new(0);
        let stats = strategy_for(Mode::Parallel(0))
            .run(&g, AlgorithmRef::Gather(&alg), &id, &RunConfig::default())
            .unwrap();
        assert!(stats.converged);
        assert_eq!(stats.final_states[5], 5.0);
    }

    #[test]
    fn bad_batch_fraction_rejected() {
        let g = chain(5);
        let id = Permutation::identity(5);
        let delta = DeltaSssp { source: 0 };
        for bad in [0.0, -0.5, 1.5, f64::NAN] {
            let err = strategy_for(Mode::Delta(DeltaSchedule::Priority {
                batch_fraction: bad,
            }))
            .run(&g, AlgorithmRef::Delta(&delta), &id, &RunConfig::default())
            .unwrap_err();
            assert!(matches!(
                err,
                EngineError::InvalidParameter {
                    name: "batch_fraction",
                    ..
                }
            ));
        }
    }

    #[test]
    fn warm_start_from_fixpoint_confirms_immediately() {
        let g = chain(30);
        let id = Permutation::identity(30);
        let cfg = RunConfig::default();
        let alg = Sssp::new(0);
        let cold = strategy_for(Mode::Async)
            .run(&g, AlgorithmRef::Gather(&alg), &id, &cfg)
            .unwrap();
        for mode in [Mode::Sync, Mode::Async, Mode::Parallel(3), Mode::Worklist] {
            let warm = strategy_for(mode)
                .run_warm(
                    &g,
                    AlgorithmRef::Gather(&alg),
                    &id,
                    &cfg,
                    WarmStart::from_states(cold.final_states.clone()),
                )
                .unwrap();
            assert!(warm.converged, "{}", mode.name());
            assert_eq!(warm.rounds, 1, "{}", mode.name());
            assert_eq!(warm.final_states, cold.final_states, "{}", mode.name());
        }
        // Delta: settled states with nothing pending confirm in one round.
        let dalg = DeltaSssp { source: 0 };
        let warm = strategy_for(Mode::Delta(DeltaSchedule::RoundRobin))
            .run_warm(
                &g,
                AlgorithmRef::Delta(&dalg),
                &id,
                &cfg,
                WarmStart::from_states(cold.final_states.clone()).with_frontier(vec![]),
            )
            .unwrap();
        assert!(warm.converged);
        assert_eq!(warm.rounds, 1);
        assert_eq!(warm.final_states, cold.final_states);
    }

    #[test]
    fn warm_start_validation_errors() {
        let g = chain(10);
        let id = Permutation::identity(10);
        let cfg = RunConfig::default();
        let alg = Sssp::new(0);
        // Wrong state length.
        let err = strategy_for(Mode::Async)
            .run_warm(
                &g,
                AlgorithmRef::Gather(&alg),
                &id,
                &cfg,
                WarmStart::from_states(vec![0.0; 4]),
            )
            .unwrap_err();
        assert!(matches!(
            err,
            EngineError::InvalidParameter {
                name: "warm_start.states",
                ..
            }
        ));
        // Out-of-range frontier vertex.
        let err = strategy_for(Mode::Worklist)
            .run_warm(
                &g,
                AlgorithmRef::Gather(&alg),
                &id,
                &cfg,
                WarmStart::from_states(vec![0.0; 10]).with_frontier(vec![99]),
            )
            .unwrap_err();
        assert!(matches!(
            err,
            EngineError::InvalidParameter {
                name: "warm_start.frontier",
                ..
            }
        ));
        // Deltas handed to a gather strategy.
        let err = strategy_for(Mode::Sync)
            .run_warm(
                &g,
                AlgorithmRef::Gather(&alg),
                &id,
                &cfg,
                WarmStart::from_states(vec![0.0; 10]).with_deltas(vec![0.0; 10]),
            )
            .unwrap_err();
        assert!(matches!(
            err,
            EngineError::InvalidParameter {
                name: "warm_start.deltas",
                ..
            }
        ));
        // Sum-style delta algorithm without explicit deltas.
        let dpr = crate::delta::DeltaPageRank::default();
        let err = strategy_for(Mode::Delta(DeltaSchedule::RoundRobin))
            .run_warm(
                &g,
                AlgorithmRef::Delta(&dpr),
                &id,
                &cfg,
                WarmStart::from_states(vec![0.0; 10]).with_frontier(vec![0]),
            )
            .unwrap_err();
        assert!(matches!(
            err,
            EngineError::InvalidParameter {
                name: "warm_start.deltas",
                ..
            }
        ));
        // A strategy without an override rejects warm execution.
        struct NoWarm;
        impl ExecutionStrategy for NoWarm {
            fn name(&self) -> &'static str {
                "no-warm"
            }
            fn run(
                &self,
                _g: &CsrGraph,
                _alg: AlgorithmRef<'_>,
                _order: &Permutation,
                _cfg: &RunConfig,
            ) -> Result<RunStats, EngineError> {
                unreachable!()
            }
        }
        let err = NoWarm
            .run_warm(
                &g,
                AlgorithmRef::Gather(&alg),
                &id,
                &cfg,
                WarmStart::from_states(vec![0.0; 10]),
            )
            .unwrap_err();
        assert_eq!(err, EngineError::WarmStartUnsupported { mode: "no-warm" });
    }

    #[test]
    fn warm_delta_derivation_relaxes_a_shortcut() {
        // Converged SSSP chain states, then a shortcut 0 -> 5 appears:
        // seeding only vertex 5 must re-derive and propagate the
        // improvement to the tail.
        let g0 = chain(10);
        let id = Permutation::identity(10);
        let cfg = RunConfig::default();
        let dalg = DeltaSssp { source: 0 };
        let cold = strategy_for(Mode::Delta(DeltaSchedule::RoundRobin))
            .run(&g0, AlgorithmRef::Delta(&dalg), &id, &cfg)
            .unwrap();
        let mut edges: Vec<(u32, u32, f64)> =
            g0.edges().map(|e| (e.src, e.dst, e.weight)).collect();
        edges.push((0, 5, 1.0));
        let g1 = CsrGraph::from_edges(10, edges);
        for schedule in [
            DeltaSchedule::RoundRobin,
            DeltaSchedule::Priority {
                batch_fraction: 0.3,
            },
        ] {
            let warm = strategy_for(Mode::Delta(schedule))
                .run_warm(
                    &g1,
                    AlgorithmRef::Delta(&dalg),
                    &id,
                    &cfg,
                    WarmStart::from_states(cold.final_states.clone()).with_frontier(vec![5]),
                )
                .unwrap();
            assert!(warm.converged);
            assert_eq!(warm.final_states[5], 1.0);
            assert_eq!(warm.final_states[9], 5.0);
        }
    }

    #[test]
    fn strategies_reach_the_same_sssp_fixpoint() {
        let g = chain(12);
        let id = Permutation::identity(12);
        let cfg = RunConfig::default();
        let gather = Sssp::new(0);
        let delta = DeltaSssp { source: 0 };
        let reference = strategy_for(Mode::Sync)
            .run(&g, AlgorithmRef::Gather(&gather), &id, &cfg)
            .unwrap();
        for mode in [Mode::Async, Mode::Parallel(3), Mode::Worklist] {
            let got = strategy_for(mode)
                .run(&g, AlgorithmRef::Gather(&gather), &id, &cfg)
                .unwrap();
            assert_eq!(got.final_states, reference.final_states, "{}", mode.name());
        }
        let got = strategy_for(Mode::Delta(DeltaSchedule::RoundRobin))
            .run(&g, AlgorithmRef::Delta(&delta), &id, &cfg)
            .unwrap();
        assert_eq!(got.final_states, reference.final_states);
    }
}
