//! The [`ExecutionStrategy`] trait: one dispatch point unifying the
//! sync, async, block-parallel, worklist and delta engines.
//!
//! Every engine family consumes the same inputs — a graph, an algorithm,
//! a processing order and a [`RunConfig`] — and produces [`RunStats`].
//! The strategies validate those inputs and return [`EngineError`]
//! instead of panicking, which is what lets [`crate::Pipeline`] expose a
//! single fallible entry point over the whole family.

use crate::algorithm::IterativeAlgorithm;
use crate::convergence::RunStats;
use crate::delta::{delta_priority_core, delta_round_robin_core, DeltaAlgorithm, DeltaSchedule};
use crate::error::EngineError;
use crate::runner::{Mode, RunConfig};
use crate::worklist::worklist_core;
use crate::{asynch::run_async, parallel::run_parallel, sync::run_sync};
use gograph_graph::{CsrGraph, Permutation};

/// A borrowed algorithm of either family. The gather family
/// ([`IterativeAlgorithm`]) recomputes a vertex from all in-neighbors;
/// the delta family ([`DeltaAlgorithm`]) accumulates unconsumed change.
#[derive(Clone, Copy)]
pub enum AlgorithmRef<'a> {
    /// A gather-apply algorithm (sync / async / parallel / worklist).
    Gather(&'a dyn IterativeAlgorithm),
    /// A delta-accumulative algorithm (Maiter / PrIter engines).
    Delta(&'a dyn DeltaAlgorithm),
}

impl AlgorithmRef<'_> {
    /// `"gather"` or `"delta"` — used in error reporting.
    pub fn kind(&self) -> &'static str {
        match self {
            AlgorithmRef::Gather(_) => "gather",
            AlgorithmRef::Delta(_) => "delta",
        }
    }

    /// The wrapped algorithm's display name.
    pub fn name(&self) -> &'static str {
        match self {
            AlgorithmRef::Gather(a) => a.name(),
            AlgorithmRef::Delta(a) => a.name(),
        }
    }
}

/// One execution engine behind a uniform, fallible interface.
pub trait ExecutionStrategy {
    /// Strategy name (matches [`Mode::name`]).
    fn name(&self) -> &'static str;

    /// Runs `alg` on `g` visiting vertices in `order` under `cfg`.
    fn run(
        &self,
        g: &CsrGraph,
        alg: AlgorithmRef<'_>,
        order: &Permutation,
        cfg: &RunConfig,
    ) -> Result<RunStats, EngineError>;
}

/// Shared validation: the order must cover the graph exactly.
fn check_order(g: &CsrGraph, order: &Permutation) -> Result<(), EngineError> {
    if order.len() != g.num_vertices() {
        return Err(EngineError::OrderLengthMismatch {
            order_len: order.len(),
            num_vertices: g.num_vertices(),
        });
    }
    Ok(())
}

fn require_gather<'a>(
    strategy: &dyn ExecutionStrategy,
    alg: AlgorithmRef<'a>,
) -> Result<&'a dyn IterativeAlgorithm, EngineError> {
    match alg {
        AlgorithmRef::Gather(a) => Ok(a),
        AlgorithmRef::Delta(_) => Err(EngineError::IncompatibleAlgorithm {
            mode: strategy.name(),
            provided: "delta",
        }),
    }
}

fn require_delta<'a>(
    strategy: &dyn ExecutionStrategy,
    alg: AlgorithmRef<'a>,
) -> Result<&'a dyn DeltaAlgorithm, EngineError> {
    match alg {
        AlgorithmRef::Delta(a) => Ok(a),
        AlgorithmRef::Gather(_) => Err(EngineError::IncompatibleAlgorithm {
            mode: strategy.name(),
            provided: "gather",
        }),
    }
}

/// Synchronous (Jacobi) execution — [`crate::sync::run_sync`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SyncStrategy;

impl ExecutionStrategy for SyncStrategy {
    fn name(&self) -> &'static str {
        "sync"
    }

    fn run(
        &self,
        g: &CsrGraph,
        alg: AlgorithmRef<'_>,
        order: &Permutation,
        cfg: &RunConfig,
    ) -> Result<RunStats, EngineError> {
        check_order(g, order)?;
        Ok(run_sync(g, require_gather(self, alg)?, order, cfg))
    }
}

/// Asynchronous (Gauss–Seidel) execution — [`crate::asynch::run_async`].
#[derive(Debug, Clone, Copy, Default)]
pub struct AsyncStrategy;

impl ExecutionStrategy for AsyncStrategy {
    fn name(&self) -> &'static str {
        "async"
    }

    fn run(
        &self,
        g: &CsrGraph,
        alg: AlgorithmRef<'_>,
        order: &Permutation,
        cfg: &RunConfig,
    ) -> Result<RunStats, EngineError> {
        check_order(g, order)?;
        Ok(run_async(g, require_gather(self, alg)?, order, cfg))
    }
}

/// Block-parallel asynchronous execution —
/// [`crate::parallel::run_parallel`].
#[derive(Debug, Clone, Copy)]
pub struct ParallelStrategy {
    /// Number of order blocks executed concurrently per round. Clamped
    /// to `1..=n` like the underlying engine always has (so
    /// `Parallel(0)` degenerates to one block, never an error).
    pub blocks: usize,
}

impl ExecutionStrategy for ParallelStrategy {
    fn name(&self) -> &'static str {
        "parallel"
    }

    fn run(
        &self,
        g: &CsrGraph,
        alg: AlgorithmRef<'_>,
        order: &Permutation,
        cfg: &RunConfig,
    ) -> Result<RunStats, EngineError> {
        check_order(g, order)?;
        Ok(run_parallel(
            g,
            require_gather(self, alg)?,
            order,
            self.blocks,
            cfg,
        ))
    }
}

/// Active-frontier worklist execution — the engine of
/// [`crate::worklist`]. The returned stats carry
/// [`RunStats::evaluations`].
#[derive(Debug, Clone, Copy, Default)]
pub struct WorklistStrategy;

impl ExecutionStrategy for WorklistStrategy {
    fn name(&self) -> &'static str {
        "worklist"
    }

    fn run(
        &self,
        g: &CsrGraph,
        alg: AlgorithmRef<'_>,
        order: &Permutation,
        cfg: &RunConfig,
    ) -> Result<RunStats, EngineError> {
        check_order(g, order)?;
        Ok(worklist_core(g, require_gather(self, alg)?, order, cfg))
    }
}

/// Delta-accumulative execution (Maiter round-robin or PrIter
/// prioritized) — the engines of [`crate::delta`].
#[derive(Debug, Clone, Copy)]
pub struct DeltaStrategy {
    /// Which delta scheduling discipline to run.
    pub schedule: DeltaSchedule,
}

impl ExecutionStrategy for DeltaStrategy {
    fn name(&self) -> &'static str {
        match self.schedule {
            DeltaSchedule::RoundRobin => "delta-rr",
            DeltaSchedule::Priority { .. } => "delta-priority",
        }
    }

    fn run(
        &self,
        g: &CsrGraph,
        alg: AlgorithmRef<'_>,
        order: &Permutation,
        cfg: &RunConfig,
    ) -> Result<RunStats, EngineError> {
        let alg = require_delta(self, alg)?;
        match self.schedule {
            DeltaSchedule::RoundRobin => {
                check_order(g, order)?;
                Ok(delta_round_robin_core(g, alg, order, cfg))
            }
            DeltaSchedule::Priority { batch_fraction } => {
                if !(batch_fraction > 0.0 && batch_fraction <= 1.0) {
                    return Err(EngineError::InvalidParameter {
                        name: "batch_fraction",
                        message: format!("must be in (0, 1], got {batch_fraction}"),
                    });
                }
                // The priority engine schedules by |delta|, not by
                // position, so the order is intentionally unused.
                Ok(delta_priority_core(g, alg, batch_fraction, cfg))
            }
        }
    }
}

/// The strategy implementing a [`Mode`].
pub fn strategy_for(mode: Mode) -> Box<dyn ExecutionStrategy> {
    match mode {
        Mode::Sync => Box::new(SyncStrategy),
        Mode::Async => Box::new(AsyncStrategy),
        Mode::Parallel(blocks) => Box::new(ParallelStrategy { blocks }),
        Mode::Worklist => Box::new(WorklistStrategy),
        Mode::Delta(schedule) => Box::new(DeltaStrategy { schedule }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::Sssp;
    use crate::delta::DeltaSssp;
    use gograph_graph::generators::regular::chain;

    #[test]
    fn every_mode_resolves_to_its_strategy() {
        for (mode, name) in [
            (Mode::Sync, "sync"),
            (Mode::Async, "async"),
            (Mode::Parallel(4), "parallel"),
            (Mode::Worklist, "worklist"),
            (Mode::Delta(DeltaSchedule::RoundRobin), "delta-rr"),
            (
                Mode::Delta(DeltaSchedule::Priority {
                    batch_fraction: 0.1,
                }),
                "delta-priority",
            ),
        ] {
            assert_eq!(strategy_for(mode).name(), name);
            assert_eq!(mode.name(), name);
        }
    }

    #[test]
    fn order_mismatch_is_an_error_not_a_panic() {
        let g = chain(10);
        let bad = Permutation::identity(7);
        let alg = Sssp::new(0);
        let err = strategy_for(Mode::Async)
            .run(&g, AlgorithmRef::Gather(&alg), &bad, &RunConfig::default())
            .unwrap_err();
        assert_eq!(
            err,
            EngineError::OrderLengthMismatch {
                order_len: 7,
                num_vertices: 10
            }
        );
    }

    #[test]
    fn wrong_algorithm_family_is_rejected() {
        let g = chain(5);
        let id = Permutation::identity(5);
        let gather = Sssp::new(0);
        let delta = DeltaSssp { source: 0 };
        let cfg = RunConfig::default();
        let err = strategy_for(Mode::Delta(DeltaSchedule::RoundRobin))
            .run(&g, AlgorithmRef::Gather(&gather), &id, &cfg)
            .unwrap_err();
        assert!(matches!(
            err,
            EngineError::IncompatibleAlgorithm {
                provided: "gather",
                ..
            }
        ));
        let err = strategy_for(Mode::Async)
            .run(&g, AlgorithmRef::Delta(&delta), &id, &cfg)
            .unwrap_err();
        assert!(matches!(
            err,
            EngineError::IncompatibleAlgorithm {
                provided: "delta",
                ..
            }
        ));
    }

    #[test]
    fn zero_blocks_clamps_like_the_legacy_engine() {
        // Parallel(0) has always meant "one block" (run_parallel clamps);
        // the strategy layer must preserve that, not reject it.
        let g = chain(6);
        let id = Permutation::identity(6);
        let alg = Sssp::new(0);
        let stats = strategy_for(Mode::Parallel(0))
            .run(&g, AlgorithmRef::Gather(&alg), &id, &RunConfig::default())
            .unwrap();
        assert!(stats.converged);
        assert_eq!(stats.final_states[5], 5.0);
    }

    #[test]
    fn bad_batch_fraction_rejected() {
        let g = chain(5);
        let id = Permutation::identity(5);
        let delta = DeltaSssp { source: 0 };
        for bad in [0.0, -0.5, 1.5, f64::NAN] {
            let err = strategy_for(Mode::Delta(DeltaSchedule::Priority {
                batch_fraction: bad,
            }))
            .run(&g, AlgorithmRef::Delta(&delta), &id, &RunConfig::default())
            .unwrap_err();
            assert!(matches!(
                err,
                EngineError::InvalidParameter {
                    name: "batch_fraction",
                    ..
                }
            ));
        }
    }

    #[test]
    fn strategies_reach_the_same_sssp_fixpoint() {
        let g = chain(12);
        let id = Permutation::identity(12);
        let cfg = RunConfig::default();
        let gather = Sssp::new(0);
        let delta = DeltaSssp { source: 0 };
        let reference = strategy_for(Mode::Sync)
            .run(&g, AlgorithmRef::Gather(&gather), &id, &cfg)
            .unwrap();
        for mode in [Mode::Async, Mode::Parallel(3), Mode::Worklist] {
            let got = strategy_for(mode)
                .run(&g, AlgorithmRef::Gather(&gather), &id, &cfg)
                .unwrap();
            assert_eq!(got.final_states, reference.final_states, "{}", mode.name());
        }
        let got = strategy_for(Mode::Delta(DeltaSchedule::RoundRobin))
            .run(&g, AlgorithmRef::Delta(&delta), &id, &cfg)
            .unwrap();
        assert_eq!(got.final_states, reference.final_states);
    }
}
