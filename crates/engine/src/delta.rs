//! Delta-based accumulative iteration (Maiter, paper ref. \[14\]) and
//! prioritized scheduling (PrIter, ref. \[52\]) — the asynchronous-engine
//! family the paper's related work (§VI) positions GoGraph against.
//!
//! Instead of recomputing each vertex from all in-neighbors, a vertex
//! holds a state `x_v` and an unconsumed *delta* `Δ_v`; processing `v`
//! folds the delta into the state (`x_v = x_v ⊕ Δ_v`) and pushes
//! `g_{v→w}(Δ_v)` into each out-neighbor's delta. The scheduling freedom
//! is where the variants differ:
//!
//! - [`run_delta_round_robin`] scans a fixed processing order each round
//!   (so GoGraph's reordering helps exactly as in the gather engine);
//! - [`run_delta_priority`] processes the highest-|delta| vertices first
//!   (PrIter), trading scheduling overhead for fewer updates.

use crate::convergence::{trace_point, RunStats};
use crate::direction::{
    choose_push, push_mass, DirectionPolicy, PositionScan, DENSE_EVAL_DENOMINATOR,
};
use crate::runner::RunConfig;
use gograph_graph::{CsrGraph, Frontier, Permutation, VertexId, Weight};
use std::time::Instant;

/// Scheduling discipline of the delta-accumulative engine family,
/// selected through [`crate::Mode::Delta`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeltaSchedule {
    /// Maiter-style: scan the processing order each round.
    RoundRobin,
    /// PrIter-style: process the highest-impact pending deltas first, in
    /// batches of the given fraction of vertices.
    Priority {
        /// Fraction of vertices per batch, in `(0, 1]`.
        batch_fraction: f64,
    },
}

/// A delta-accumulative algorithm: `x ⊕ Δ` with edge propagation
/// `g_{u→w}`.
pub trait DeltaAlgorithm: Send + Sync {
    /// Algorithm name for tables.
    fn name(&self) -> &'static str;

    /// Initial state `x⁰_v`.
    fn init_state(&self, g: &CsrGraph, v: VertexId) -> f64;

    /// Initial delta `Δ⁰_v`.
    fn init_delta(&self, g: &CsrGraph, v: VertexId) -> f64;

    /// Identity of `⊕` (0 for sum-style, `+inf` for min-style).
    fn identity(&self) -> f64;

    /// The accumulation `a ⊕ b`.
    fn combine(&self, a: f64, b: f64) -> f64;

    /// Edge propagation `g_{u→w}(Δ)`: the delta contribution sent along
    /// `u -> w` when `u` consumed delta `Δ`.
    fn propagate(&self, g: &CsrGraph, u: VertexId, w: VertexId, weight: Weight, delta: f64) -> f64;

    /// Whether a pending delta would still change the state enough to be
    /// worth processing (the convergence test).
    fn significant(&self, state: f64, delta: f64) -> bool;

    /// Whether `⊕` is **idempotent** (`a ⊕ a == a`, as for `min`/`max`)
    /// rather than accumulative (as for `+`). Warm-started streaming
    /// ([`crate::StreamingPipeline`]) relies on this to decide whether
    /// pending deltas may be re-derived from settled neighbor states —
    /// sound only when folding a value twice is harmless. The default
    /// `false` is always safe: non-idempotent algorithms are restarted
    /// per batch instead of warm-started. Min/max-style algorithms
    /// should override to `true` to unlock warm-started streaming.
    fn combine_is_idempotent(&self) -> bool {
        false
    }

    /// Identifies this algorithm as one of the built-ins so the delta
    /// engines can run a statically dispatched kernel — the delta-family
    /// counterpart of [`crate::IterativeAlgorithm::monomorphized`].
    /// Default `None`: the `dyn`-dispatch fallback kernel.
    ///
    /// **Wrappers must keep the default**: a `Some` answer makes the
    /// engine run the returned by-value copy instead of `self`, dropping
    /// any overridden behavior (see the gather-family doc for details).
    fn monomorphized(&self) -> Option<crate::dispatch::DeltaAlgorithmKind> {
        None
    }
}

/// Delta-accumulative PageRank: `x ⊕ Δ = x + Δ`,
/// `g(Δ) = d·Δ/|OUT(u)|`, `Δ⁰ = 1 − d`. Converges to the same fixpoint
/// as the gather formulation.
#[derive(Debug, Clone, Copy)]
pub struct DeltaPageRank {
    /// Damping factor.
    pub damping: f64,
    /// Significance threshold on deltas.
    pub epsilon: f64,
}

impl Default for DeltaPageRank {
    fn default() -> Self {
        DeltaPageRank {
            damping: 0.85,
            epsilon: 1e-9,
        }
    }
}

impl DeltaAlgorithm for DeltaPageRank {
    fn name(&self) -> &'static str {
        "delta-pagerank"
    }
    fn init_state(&self, _g: &CsrGraph, _v: VertexId) -> f64 {
        0.0
    }
    fn init_delta(&self, _g: &CsrGraph, _v: VertexId) -> f64 {
        1.0 - self.damping
    }
    fn identity(&self) -> f64 {
        0.0
    }
    #[inline]
    fn combine(&self, a: f64, b: f64) -> f64 {
        a + b
    }
    #[inline]
    fn propagate(
        &self,
        g: &CsrGraph,
        u: VertexId,
        _w: VertexId,
        _weight: Weight,
        delta: f64,
    ) -> f64 {
        let d = g.out_degree(u);
        if d == 0 {
            0.0
        } else {
            self.damping * delta / d as f64
        }
    }
    #[inline]
    fn significant(&self, _state: f64, delta: f64) -> bool {
        delta > self.epsilon
    }

    fn monomorphized(&self) -> Option<crate::dispatch::DeltaAlgorithmKind> {
        Some(crate::dispatch::DeltaAlgorithmKind::PageRank(*self))
    }
}

/// Delta-accumulative SSSP: `x ⊕ Δ = min(x, Δ)`, `g(Δ) = Δ + w(u, v)`,
/// `Δ⁰_src = 0`.
#[derive(Debug, Clone, Copy)]
pub struct DeltaSssp {
    /// Source vertex.
    pub source: VertexId,
}

impl DeltaAlgorithm for DeltaSssp {
    fn name(&self) -> &'static str {
        "delta-sssp"
    }
    fn init_state(&self, _g: &CsrGraph, _v: VertexId) -> f64 {
        f64::INFINITY
    }
    fn init_delta(&self, _g: &CsrGraph, v: VertexId) -> f64 {
        if v == self.source {
            0.0
        } else {
            f64::INFINITY
        }
    }
    fn identity(&self) -> f64 {
        f64::INFINITY
    }
    #[inline]
    fn combine(&self, a: f64, b: f64) -> f64 {
        a.min(b)
    }
    #[inline]
    fn propagate(
        &self,
        _g: &CsrGraph,
        _u: VertexId,
        _w: VertexId,
        weight: Weight,
        delta: f64,
    ) -> f64 {
        delta + weight
    }
    #[inline]
    fn significant(&self, state: f64, delta: f64) -> bool {
        delta < state
    }

    fn combine_is_idempotent(&self) -> bool {
        true // min is idempotent
    }

    fn monomorphized(&self) -> Option<crate::dispatch::DeltaAlgorithmKind> {
        Some(crate::dispatch::DeltaAlgorithmKind::Sssp(*self))
    }
}

/// Round-robin delta engine: each round scans the processing order,
/// consuming significant deltas and propagating to out-neighbors.
/// A round with no significant delta terminates the run.
///
/// # Panics
/// Panics on invalid input — use [`crate::Pipeline`] with
/// `Mode::Delta(DeltaSchedule::RoundRobin)` for fallible execution.
#[deprecated(
    since = "0.2.0",
    note = "use gograph_engine::Pipeline with Mode::Delta(DeltaSchedule::RoundRobin)"
)]
pub fn run_delta_round_robin(
    g: &CsrGraph,
    alg: &dyn DeltaAlgorithm,
    order: &Permutation,
    cfg: &RunConfig,
) -> RunStats {
    crate::pipeline::Pipeline::on(g)
        .delta_algorithm_ref(alg)
        .mode(crate::runner::Mode::Delta(DeltaSchedule::RoundRobin))
        .order_ref(order)
        .config(*cfg)
        .execute()
        .expect("legacy run_delta_round_robin(): invalid configuration")
        .stats
}

/// The round-robin delta engine proper.
pub(crate) fn delta_round_robin_core(
    g: &CsrGraph,
    alg: &dyn DeltaAlgorithm,
    order: &Permutation,
    cfg: &RunConfig,
) -> RunStats {
    crate::dispatch::dispatch_delta!(alg, a => delta_round_robin_kernel(g, a, order, cfg))
}

/// The round-robin delta round loop, generic over the algorithm so
/// `combine` / `propagate` / `significant` inline with a concrete `D`.
pub fn delta_round_robin_kernel<D: DeltaAlgorithm + ?Sized>(
    g: &CsrGraph,
    alg: &D,
    order: &Permutation,
    cfg: &RunConfig,
) -> RunStats {
    let state: Vec<f64> = (0..g.num_vertices() as u32)
        .map(|v| alg.init_state(g, v))
        .collect();
    let delta: Vec<f64> = (0..g.num_vertices() as u32)
        .map(|v| alg.init_delta(g, v))
        .collect();
    delta_round_robin_kernel_warm(g, alg, order, cfg, state, delta)
}

/// [`delta_round_robin_kernel`] started from caller-supplied states and
/// pending deltas instead of `init_state` / `init_delta` — the
/// warm-start entry for streaming: settled states are carried over and
/// only the deltas seeded at the update frontier are still pending, so
/// convergence is reached in as many rounds as the changes propagate.
///
/// The round loop is direction-optimized with the gather engines'
/// shared [`choose_push`] heuristic: while the pending-significance set
/// is dense the round is the historical full order scan; once it turns
/// narrow, a [`PositionScan`] sparse sweep visits only pending
/// positions (with the same in-round consumption of forward
/// contributions). The two shapes are **trajectory-identical** — the
/// sparse sweep visits a superset of the significant positions in the
/// same ascending order, and an insignificant visit is a no-op in both
/// — so states, rounds, and convergence never depend on which shape
/// ran. `RunStats::push_rounds` counts the rounds that actually
/// scattered (consumed at least one significant delta).
///
/// # Panics
/// Panics if `state.len()` or `delta.len()` differ from
/// `g.num_vertices()` — callers go through
/// [`crate::ExecutionStrategy::run_warm`], which validates first.
pub fn delta_round_robin_kernel_warm<D: DeltaAlgorithm + ?Sized>(
    g: &CsrGraph,
    alg: &D,
    order: &Permutation,
    cfg: &RunConfig,
    mut state: Vec<f64>,
    mut delta: Vec<f64>,
) -> RunStats {
    let n = g.num_vertices();
    assert_eq!(order.len(), n);
    assert_eq!(state.len(), n, "state length must match vertex count");
    assert_eq!(delta.len(), n, "delta length must match vertex count");
    let start = Instant::now();
    let out_degrees = g.out_degrees();
    let num_edges = g.num_edges();
    let force_push = cfg.direction == DirectionPolicy::PushOnly;
    let mut trace = Vec::new();
    if cfg.record_trace {
        trace.push(trace_point(0, start.elapsed(), f64::INFINITY, &state));
    }

    // Pending-significance set over order positions, exact at round
    // boundaries: rebuilt by an O(n) scan after each full-scan round
    // (cheap next to the O(n + m) scan itself), maintained incrementally
    // through sparse rounds. Significance is monotone in the delta (a
    // combine can only keep or gain it), so insert-on-contribution never
    // misses a member.
    let mut pending = Frontier::new(n);
    let mut next_pending = Frontier::new(n);
    let mut scan = PositionScan::new(n);
    let rebuild = |state: &[f64], delta: &[f64], pending: &mut Frontier| {
        pending.clear();
        for pos in 0..n {
            let vi = order.vertex_at(pos) as usize;
            if alg.significant(state[vi], delta[vi]) {
                pending.insert(pos as u32);
            }
        }
    };
    rebuild(&state, &delta, &mut pending);

    let mut rounds = 0usize;
    let mut push_rounds = 0usize;
    let mut converged = false;
    while rounds < cfg.max_rounds {
        rounds += 1;
        let mut activity = 0usize;
        // The shared per-round direction choice: `sparse` plays the role
        // of push (scatter only the pending set), the full scan is the
        // delta family's dense-gather fallback. PullOnly pins the full
        // scan, PushOnly the sparse sweep.
        let sparse = force_push
            || (pending.len() * DENSE_EVAL_DENOMINATOR <= n
                && choose_push(
                    cfg.direction,
                    true,
                    push_mass(&pending, order, out_degrees),
                    num_edges,
                ));
        if sparse {
            scan.load(&pending);
            next_pending.clear();
            let mut wi = 0usize;
            while wi < scan.num_words() {
                let Some(pos) = scan.take_lowest(wi) else {
                    wi += 1;
                    continue;
                };
                let v = order.vertex_at(pos as usize);
                let m = delta[v as usize];
                if !alg.significant(state[v as usize], m) {
                    continue;
                }
                activity += 1;
                delta[v as usize] = alg.identity();
                state[v as usize] = alg.combine(state[v as usize], m);
                for (w, weight) in g.out_edges(v) {
                    let contrib = alg.propagate(g, v, w, weight, m);
                    delta[w as usize] = alg.combine(delta[w as usize], contrib);
                    if alg.significant(state[w as usize], delta[w as usize]) {
                        let pw = order.position(w);
                        if pw > pos {
                            // Ahead of the cursor: consumed this round,
                            // exactly as the full scan would.
                            scan.set(pw);
                        } else {
                            next_pending.insert(pw);
                        }
                    }
                }
            }
            std::mem::swap(&mut pending, &mut next_pending);
        } else {
            for &v in order.order() {
                let m = delta[v as usize];
                if !alg.significant(state[v as usize], m) {
                    continue;
                }
                activity += 1;
                delta[v as usize] = alg.identity();
                state[v as usize] = alg.combine(state[v as usize], m);
                for (w, weight) in g.out_edges(v) {
                    let contrib = alg.propagate(g, v, w, weight, m);
                    delta[w as usize] = alg.combine(delta[w as usize], contrib);
                }
            }
            rebuild(&state, &delta, &mut pending);
        }
        if activity > 0 {
            push_rounds += 1;
        }
        if cfg.record_trace {
            trace.push(trace_point(
                rounds,
                start.elapsed(),
                activity as f64,
                &state,
            ));
        }
        if activity == 0 {
            converged = true;
            break;
        }
    }

    RunStats {
        rounds,
        runtime: start.elapsed(),
        converged,
        final_states: state,
        trace,
        // state + delta arrays, plus the pending-set machinery.
        state_memory_bytes: 2 * n * std::mem::size_of::<f64>()
            + pending.memory_bytes()
            + next_pending.memory_bytes()
            + scan.memory_bytes(),
        evaluations: None,
        push_rounds,
    }
}

/// PrIter-style prioritized delta engine: repeatedly extracts the batch
/// of vertices with the largest pending |delta| impact and processes
/// them. `rounds` in the returned stats counts processed batches.
///
/// Out-of-range `batch_fraction` values are clamped into `(0, 1]`, as
/// this function always has (the batch size clamps to `1..=n`); the
/// [`crate::Pipeline`] API rejects them as
/// [`crate::EngineError::InvalidParameter`] instead.
#[deprecated(
    since = "0.2.0",
    note = "use gograph_engine::Pipeline with Mode::Delta(DeltaSchedule::Priority { .. })"
)]
pub fn run_delta_priority(
    g: &CsrGraph,
    alg: &dyn DeltaAlgorithm,
    batch_fraction: f64,
    cfg: &RunConfig,
) -> RunStats {
    // Reproduce the seed's clamp: any non-positive/NaN fraction meant a
    // batch of 1, anything above 1.0 meant the whole vertex set.
    let batch_fraction = if batch_fraction > 0.0 {
        batch_fraction.min(1.0)
    } else {
        f64::MIN_POSITIVE
    };
    crate::pipeline::Pipeline::on(g)
        .delta_algorithm_ref(alg)
        .mode(crate::runner::Mode::Delta(DeltaSchedule::Priority {
            batch_fraction,
        }))
        .config(*cfg)
        .execute()
        .expect("legacy run_delta_priority(): invalid configuration")
        .stats
}

/// The prioritized delta engine proper.
pub(crate) fn delta_priority_core(
    g: &CsrGraph,
    alg: &dyn DeltaAlgorithm,
    batch_fraction: f64,
    cfg: &RunConfig,
) -> RunStats {
    crate::dispatch::dispatch_delta!(alg, a => delta_priority_kernel(g, a, batch_fraction, cfg))
}

/// The prioritized delta loop, generic over the algorithm so the
/// per-edge `propagate` / `combine` inline with a concrete `D`.
pub fn delta_priority_kernel<D: DeltaAlgorithm + ?Sized>(
    g: &CsrGraph,
    alg: &D,
    batch_fraction: f64,
    cfg: &RunConfig,
) -> RunStats {
    let state: Vec<f64> = (0..g.num_vertices() as u32)
        .map(|v| alg.init_state(g, v))
        .collect();
    let delta: Vec<f64> = (0..g.num_vertices() as u32)
        .map(|v| alg.init_delta(g, v))
        .collect();
    delta_priority_kernel_warm(g, alg, batch_fraction, cfg, state, delta)
}

/// [`delta_priority_kernel`] started from caller-supplied states and
/// pending deltas — the prioritized counterpart of
/// [`delta_round_robin_kernel_warm`].
///
/// The sort-and-truncate batch selection only pays while the active set
/// is narrow; on dense rounds (pending out-degree mass at or above the
/// edge total under the shared [`choose_push`] heuristic) the whole
/// active set processes in vertex order instead — a gather-style dense
/// fallback that cuts the priority-queue pressure of sorting nearly
/// every vertex just to drop most of them. `DirectionPolicy::PushOnly`
/// pins the historical always-prioritize behaviour; `PullOnly` never
/// sorts. `RunStats::push_rounds` counts rounds that processed a batch.
///
/// # Panics
/// Panics if `state.len()` or `delta.len()` differ from
/// `g.num_vertices()` — callers go through
/// [`crate::ExecutionStrategy::run_warm`], which validates first.
pub fn delta_priority_kernel_warm<D: DeltaAlgorithm + ?Sized>(
    g: &CsrGraph,
    alg: &D,
    batch_fraction: f64,
    cfg: &RunConfig,
    mut state: Vec<f64>,
    mut delta: Vec<f64>,
) -> RunStats {
    let n = g.num_vertices();
    assert_eq!(state.len(), n, "state length must match vertex count");
    assert_eq!(delta.len(), n, "delta length must match vertex count");
    let start = Instant::now();
    let out_degrees = g.out_degrees();
    let num_edges = g.num_edges();
    let batch = ((n as f64 * batch_fraction).ceil() as usize).clamp(1, n.max(1));
    let mut trace = Vec::new();
    if cfg.record_trace {
        trace.push(trace_point(0, start.elapsed(), f64::INFINITY, &state));
    }

    let mut rounds = 0usize;
    let mut push_rounds = 0usize;
    let mut converged = false;
    let mut active: Vec<VertexId> = Vec::with_capacity(batch);
    while rounds < cfg.max_rounds {
        rounds += 1;
        // Select the top-|batch| significant vertices by delta magnitude
        // (distance-style algorithms prioritize the *smallest* pending
        // value instead — encoded by priority_key below).
        active.clear();
        for v in 0..n as u32 {
            if alg.significant(state[v as usize], delta[v as usize]) {
                active.push(v);
            }
        }
        if active.is_empty() {
            converged = true;
            break;
        }
        push_rounds += 1;
        if active.len() > batch {
            let mass: usize = active
                .iter()
                .map(|&v| out_degrees[v as usize] as usize)
                .sum();
            // Dense fallback: once the batch would drop only a minority
            // of the pending mass, sorting costs more than the work it
            // defers — process the whole active set in vertex order.
            if choose_push(cfg.direction, true, mass, num_edges) {
                active.sort_by(|&a, &b| {
                    priority_key(alg, state[b as usize], delta[b as usize])
                        .partial_cmp(&priority_key(alg, state[a as usize], delta[a as usize]))
                        .unwrap()
                });
                active.truncate(batch);
            }
        }
        for &v in &active {
            let m = delta[v as usize];
            delta[v as usize] = alg.identity();
            state[v as usize] = alg.combine(state[v as usize], m);
            for (w, weight) in g.out_edges(v) {
                let contrib = alg.propagate(g, v, w, weight, m);
                delta[w as usize] = alg.combine(delta[w as usize], contrib);
            }
        }
        if cfg.record_trace {
            trace.push(trace_point(
                rounds,
                start.elapsed(),
                active.len() as f64,
                &state,
            ));
        }
    }

    RunStats {
        rounds,
        runtime: start.elapsed(),
        converged,
        final_states: state,
        trace,
        state_memory_bytes: 2 * n * std::mem::size_of::<f64>()
            + active.capacity() * std::mem::size_of::<VertexId>(),
        evaluations: None,
        push_rounds,
    }
}

/// Priority of a pending delta: larger = process sooner. Sum-style
/// algorithms favour the largest delta; min-style favour the smallest
/// pending value (closest to the source — Dijkstra-like).
fn priority_key<D: DeltaAlgorithm + ?Sized>(alg: &D, state: f64, delta: f64) -> f64 {
    if alg.identity() == 0.0 {
        delta
    } else {
        let _ = state;
        -delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{PageRank, Sssp};
    use crate::asynch::run_async;
    use gograph_graph::generators::regular::chain;
    use gograph_graph::generators::{
        planted_partition, with_random_weights, PlantedPartitionConfig,
    };

    fn test_graph() -> CsrGraph {
        with_random_weights(
            &planted_partition(PlantedPartitionConfig {
                num_vertices: 300,
                num_edges: 2400,
                communities: 8,
                p_intra: 0.8,
                gamma: 2.4,
                seed: 31,
            }),
            1.0,
            5.0,
            7,
        )
    }

    #[test]
    fn delta_pagerank_matches_gather_engine() {
        let g = test_graph();
        let cfg = RunConfig::default();
        let id = Permutation::identity(300);
        let gather = run_async(&g, &PageRank::default(), &id, &cfg);
        let delta = delta_round_robin_core(&g, &DeltaPageRank::default(), &id, &cfg);
        assert!(delta.converged);
        for (a, b) in gather.final_states.iter().zip(&delta.final_states) {
            assert!((a - b).abs() < 1e-4, "gather {a} vs delta {b}");
        }
    }

    #[test]
    fn delta_sssp_matches_gather_engine() {
        let g = test_graph();
        let cfg = RunConfig::default();
        let id = Permutation::identity(300);
        let gather = run_async(&g, &Sssp::new(0), &id, &cfg);
        let delta = delta_round_robin_core(&g, &DeltaSssp { source: 0 }, &id, &cfg);
        assert!(delta.converged);
        assert_eq!(gather.final_states, delta.final_states);
    }

    #[test]
    fn priority_engine_same_fixpoint() {
        let g = test_graph();
        let cfg = RunConfig::default();
        let id = Permutation::identity(300);
        let rr = delta_round_robin_core(&g, &DeltaSssp { source: 0 }, &id, &cfg);
        let pr = delta_priority_core(&g, &DeltaSssp { source: 0 }, 0.1, &cfg);
        assert!(pr.converged);
        assert_eq!(rr.final_states, pr.final_states);
    }

    #[test]
    fn priority_pagerank_converges_to_same_mass() {
        let g = test_graph();
        let cfg = RunConfig::default();
        let id = Permutation::identity(300);
        let rr = delta_round_robin_core(&g, &DeltaPageRank::default(), &id, &cfg);
        let pr = delta_priority_core(&g, &DeltaPageRank::default(), 0.05, &cfg);
        assert!(pr.converged);
        let sum_rr: f64 = rr.final_states.iter().sum();
        let sum_pr: f64 = pr.final_states.iter().sum();
        assert!((sum_rr - sum_pr).abs() < 1e-3, "{sum_rr} vs {sum_pr}");
    }

    #[test]
    fn order_matters_for_delta_round_robin() {
        // Chain: forward order converges in 2 rounds, reverse needs ~n.
        let g = chain(30);
        let cfg = RunConfig::default();
        let alg = DeltaSssp { source: 0 };
        let fwd = delta_round_robin_core(&g, &alg, &Permutation::identity(30), &cfg);
        let rev = delta_round_robin_core(&g, &alg, &Permutation::identity(30).reversed(), &cfg);
        assert!(
            fwd.rounds < rev.rounds,
            "fwd {} !< rev {}",
            fwd.rounds,
            rev.rounds
        );
        assert_eq!(fwd.final_states, rev.final_states);
    }

    #[test]
    #[allow(deprecated)]
    fn legacy_priority_wrapper_clamps_batch_fraction_like_the_seed() {
        // The original engine clamped the batch to 1..=n for any input
        // fraction; the compatibility wrapper must keep accepting the
        // values the strict Pipeline API rejects.
        let g = chain(12);
        let cfg = RunConfig::default();
        let alg = DeltaSssp { source: 0 };
        let reference = delta_priority_core(&g, &alg, 0.5, &cfg);
        for bad in [0.0, -1.0, 2.5, f64::NAN] {
            let stats = run_delta_priority(&g, &alg, bad, &cfg);
            assert!(stats.converged, "batch_fraction {bad} should still run");
            assert_eq!(stats.final_states, reference.final_states);
        }
    }

    #[test]
    fn dangling_vertices_swallow_delta_mass() {
        let g = CsrGraph::from_edges(2, [(0u32, 1u32)]);
        let cfg = RunConfig::default();
        let stats = delta_round_robin_core(
            &g,
            &DeltaPageRank::default(),
            &Permutation::identity(2),
            &cfg,
        );
        assert!(stats.converged);
        // x0 = 0.15; x1 = 0.15 + 0.85 * 0.15.
        assert!((stats.final_states[0] - 0.15).abs() < 1e-6);
        assert!((stats.final_states[1] - (0.15 + 0.85 * 0.15)).abs() < 1e-6);
    }
}
