//! Execution modes and the legacy free-function entry points.
//!
//! The mode enum is the value-level selector consumed by
//! [`crate::strategy::strategy_for`]; the free functions predate the
//! [`Pipeline`] API and survive as thin deprecated delegates so existing
//! callers keep working while they migrate.

use crate::algorithm::IterativeAlgorithm;
use crate::convergence::RunStats;
use crate::delta::DeltaSchedule;
use crate::direction::DirectionPolicy;
use crate::pipeline::Pipeline;
use gograph_graph::{CsrGraph, Permutation};

/// Engine execution mode — one variant per [`crate::ExecutionStrategy`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mode {
    /// Synchronous (Jacobi, Eq. 1) — double-buffered.
    Sync,
    /// Asynchronous (Gauss–Seidel, Eq. 2) — in-place, order-sensitive.
    Async,
    /// Block-parallel asynchronous with the given block count.
    Parallel(usize),
    /// Active-frontier worklist (Galois/GraphLab-style scheduling).
    Worklist,
    /// Delta-accumulative iteration under the given schedule
    /// (Maiter round-robin or PrIter prioritized).
    Delta(DeltaSchedule),
}

impl Mode {
    /// The mode's display name (matches its strategy's name).
    pub fn name(&self) -> &'static str {
        match self {
            Mode::Sync => "sync",
            Mode::Async => "async",
            Mode::Parallel(_) => "parallel",
            Mode::Worklist => "worklist",
            Mode::Delta(DeltaSchedule::RoundRobin) => "delta-rr",
            Mode::Delta(DeltaSchedule::Priority { .. }) => "delta-priority",
        }
    }
}

/// Run configuration shared by every engine.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Safety cap on rounds.
    pub max_rounds: usize,
    /// Record a per-round [`crate::convergence::TracePoint`].
    pub record_trace: bool,
    /// Traversal-direction policy (default [`DirectionPolicy::Auto`]:
    /// Beamer-style per-round choice). Honoured by every engine: the
    /// sequential sync/async/worklist kernels, the block-parallel engine
    /// at every block count, and the delta engines (where push = the
    /// sparse pending sweep or prioritized batch, pull = the dense
    /// full-scan fallback).
    pub direction: DirectionPolicy,
    /// Last-level-cache budget the synchronous engine's blocked dense
    /// pull sweep sizes its order-position blocks to (default
    /// [`crate::direction::DEFAULT_LLC_BYTES`] = 8 MiB). Runs whose
    /// state array already fits the budget skip blocking entirely.
    pub llc_bytes: usize,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            max_rounds: 10_000,
            record_trace: false,
            direction: DirectionPolicy::Auto,
            llc_bytes: crate::direction::DEFAULT_LLC_BYTES,
        }
    }
}

/// Runs `alg` on `g` visiting vertices in `order` under `mode`.
///
/// # Panics
/// Panics on invalid input (mismatched order length, wrong algorithm
/// family for the mode) — use [`Pipeline`] for fallible execution.
#[deprecated(since = "0.2.0", note = "use gograph_engine::Pipeline")]
pub fn run(
    g: &CsrGraph,
    alg: &dyn IterativeAlgorithm,
    mode: Mode,
    order: &Permutation,
    cfg: &RunConfig,
) -> RunStats {
    Pipeline::on(g)
        .algorithm_ref(alg)
        .mode(mode)
        .order_ref(order)
        .config(*cfg)
        .execute()
        .expect("legacy run(): invalid configuration")
        .stats
}

/// A run whose graph has been physically relabeled so that the processing
/// order is the sequential scan `0..n` — the deployment configuration the
/// paper benchmarks (reordering happens offline, then every engine pass
/// enjoys the improved layout).
///
/// Returns the relabeled graph together with the stats; vertex `v`'s
/// final state lives at index `order.position(v)` of `final_states`.
///
/// # Panics
/// Panics on invalid input — use [`Pipeline`] with `.relabel(true)` for
/// fallible execution.
#[deprecated(
    since = "0.2.0",
    note = "use gograph_engine::Pipeline with .relabel(true)"
)]
pub fn run_relabeled(
    g: &CsrGraph,
    alg: &dyn IterativeAlgorithm,
    mode: Mode,
    order: &Permutation,
    cfg: &RunConfig,
) -> (CsrGraph, RunStats) {
    let r = Pipeline::on(g)
        .algorithm_ref(alg)
        .mode(mode)
        .order_ref(order)
        .relabel(true)
        .config(*cfg)
        .execute()
        .expect("legacy run_relabeled(): invalid configuration");
    (
        r.relabeled.expect("relabel(true) produces a graph"),
        r.stats,
    )
}

/// Total memory footprint of a run: CSR arrays + engine state
/// (Fig. 11's comparison).
pub fn total_memory_bytes(g: &CsrGraph, stats: &RunStats) -> usize {
    g.memory_bytes() + stats.state_memory_bytes
}

// The tests below exercise the *legacy* wrappers on purpose: they are the
// compatibility contract the deprecation keeps alive.
#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::algorithms::Sssp;
    use gograph_graph::generators::regular::chain;

    #[test]
    fn mode_dispatch() {
        let g = chain(10);
        let id = Permutation::identity(10);
        let cfg = RunConfig::default();
        let alg = Sssp::new(0);
        let s = run(&g, &alg, Mode::Sync, &id, &cfg);
        let a = run(&g, &alg, Mode::Async, &id, &cfg);
        let p = run(&g, &alg, Mode::Parallel(2), &id, &cfg);
        let w = run(&g, &alg, Mode::Worklist, &id, &cfg);
        assert_eq!(s.final_states, a.final_states);
        assert_eq!(s.final_states, p.final_states);
        assert_eq!(s.final_states, w.final_states);
        assert!(a.rounds <= s.rounds);
    }

    #[test]
    fn relabeled_run_equivalent_modulo_permutation() {
        let g = chain(10);
        // Reverse the labels; relabeled graph is the chain 9 <- ... <- 0,
        // i.e. new id of old v is 9 - v. Source old-0 becomes new-9.
        let order = Permutation::identity(10).reversed();
        let cfg = RunConfig::default();
        let alg = Sssp::new(9); // source in new labels
        let (rg, stats) = run_relabeled(&g, &alg, Mode::Async, &order, &cfg);
        assert_eq!(rg.num_edges(), 9);
        // old vertex v had distance v; it now lives at position 9 - v.
        for old_v in 0..10usize {
            let new_pos = order.position(old_v as u32) as usize;
            assert_eq!(stats.final_states[new_pos], old_v as f64);
        }
    }

    #[test]
    fn memory_accounting_includes_graph() {
        let g = chain(10);
        let cfg = RunConfig::default();
        let stats = run(
            &g,
            &Sssp::new(0),
            Mode::Async,
            &Permutation::identity(10),
            &cfg,
        );
        assert!(total_memory_bytes(&g, &stats) > stats.state_memory_bytes);
    }
}
