//! High-level run orchestration: execution mode selection, physical
//! relabeling (the paper relabels the graph so the processing order is a
//! sequential scan — that is where the cache wins of Figs. 9–10 come
//! from), and total memory accounting for Fig. 11.

use crate::algorithm::IterativeAlgorithm;
use crate::asynch::run_async;
use crate::convergence::RunStats;
use crate::parallel::run_parallel;
use crate::sync::run_sync;
use gograph_graph::{CsrGraph, Permutation};

/// Engine execution mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Synchronous (Jacobi, Eq. 1) — double-buffered.
    Sync,
    /// Asynchronous (Gauss–Seidel, Eq. 2) — in-place, order-sensitive.
    Async,
    /// Block-parallel asynchronous with the given block count.
    Parallel(usize),
}

/// Run configuration shared by every engine.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Safety cap on rounds.
    pub max_rounds: usize,
    /// Record a per-round [`crate::convergence::TracePoint`].
    pub record_trace: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            max_rounds: 10_000,
            record_trace: false,
        }
    }
}

/// Runs `alg` on `g` visiting vertices in `order` under `mode`.
pub fn run(
    g: &CsrGraph,
    alg: &dyn IterativeAlgorithm,
    mode: Mode,
    order: &Permutation,
    cfg: &RunConfig,
) -> RunStats {
    match mode {
        Mode::Sync => run_sync(g, alg, order, cfg),
        Mode::Async => run_async(g, alg, order, cfg),
        Mode::Parallel(blocks) => run_parallel(g, alg, order, blocks, cfg),
    }
}

/// A run whose graph has been physically relabeled so that the processing
/// order is the sequential scan `0..n` — the deployment configuration the
/// paper benchmarks (reordering happens offline, then every engine pass
/// enjoys the improved layout).
///
/// Returns the relabeled graph together with the stats; vertex `v`'s
/// final state lives at index `order.position(v)` of `final_states`.
pub fn run_relabeled(
    g: &CsrGraph,
    alg: &dyn IterativeAlgorithm,
    mode: Mode,
    order: &Permutation,
    cfg: &RunConfig,
) -> (CsrGraph, RunStats) {
    let relabeled = g.relabeled(order);
    let id = Permutation::identity(g.num_vertices());
    let stats = run(&relabeled, alg, mode, &id, cfg);
    (relabeled, stats)
}

/// Total memory footprint of a run: CSR arrays + engine state
/// (Fig. 11's comparison).
pub fn total_memory_bytes(g: &CsrGraph, stats: &RunStats) -> usize {
    g.memory_bytes() + stats.state_memory_bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::Sssp;
    use gograph_graph::generators::regular::chain;

    #[test]
    fn mode_dispatch() {
        let g = chain(10);
        let id = Permutation::identity(10);
        let cfg = RunConfig::default();
        let alg = Sssp::new(0);
        let s = run(&g, &alg, Mode::Sync, &id, &cfg);
        let a = run(&g, &alg, Mode::Async, &id, &cfg);
        let p = run(&g, &alg, Mode::Parallel(2), &id, &cfg);
        assert_eq!(s.final_states, a.final_states);
        assert_eq!(s.final_states, p.final_states);
        assert!(a.rounds <= s.rounds);
    }

    #[test]
    fn relabeled_run_equivalent_modulo_permutation() {
        let g = chain(10);
        // Reverse the labels; relabeled graph is the chain 9 <- ... <- 0,
        // i.e. new id of old v is 9 - v. Source old-0 becomes new-9.
        let order = Permutation::identity(10).reversed();
        let cfg = RunConfig::default();
        let alg = Sssp::new(9); // source in new labels
        let (rg, stats) = run_relabeled(&g, &alg, Mode::Async, &order, &cfg);
        assert_eq!(rg.num_edges(), 9);
        // old vertex v had distance v; it now lives at position 9 - v.
        for old_v in 0..10usize {
            let new_pos = order.position(old_v as u32) as usize;
            assert_eq!(stats.final_states[new_pos], old_v as f64);
        }
    }

    #[test]
    fn memory_accounting_includes_graph() {
        let g = chain(10);
        let cfg = RunConfig::default();
        let stats = run(&g, &Sssp::new(0), Mode::Async, &Permutation::identity(10), &cfg);
        assert!(total_memory_bytes(&g, &stats) > stats.state_memory_bytes);
    }
}
