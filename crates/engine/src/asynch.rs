//! Asynchronous (Gauss–Seidel) engine — the paper's Eq. 2.
//!
//! A single state array is updated in place while scanning the processing
//! order, so a vertex whose in-neighbor appears *earlier* in the order
//! (a positive edge) consumes that neighbor's state from the **current**
//! round. This is exactly the mechanism GoGraph's reordering maximizes:
//! more positive edges ⇒ fresher inputs ⇒ fewer rounds (Theorem 1).

use crate::algorithm::IterativeAlgorithm;
use crate::convergence::{trace_point, DeltaAccumulator, RunStats};
use crate::direction::{
    activate_per_source, activate_per_target, choose_push, push_mass, DirectionPolicy,
    PositionScan, DENSE_EVAL_DENOMINATOR, GENERAL_DENSE_DENOMINATOR,
};
use crate::dispatch::{dispatch_gather, GatherContext, ScatterContext};
use crate::runner::RunConfig;
use gograph_graph::{CsrGraph, Frontier, Permutation};
use std::time::Instant;

/// Runs `alg` on `g` asynchronously, visiting vertices in `order` each
/// round. Unlike the synchronous engine, the visit order changes the
/// number of rounds (not the fixpoint).
///
/// ```
/// use gograph_engine::{run_async, Sssp, RunConfig};
/// use gograph_graph::generators::regular::chain;
/// use gograph_graph::Permutation;
///
/// let g = chain(50);
/// // Every chain edge is positive under the identity order: one
/// // propagation round + one confirmation round.
/// let stats = run_async(&g, &Sssp::new(0), &Permutation::identity(50),
///                       &RunConfig::default());
/// assert_eq!(stats.rounds, 2);
/// assert_eq!(stats.final_states[49], 49.0);
/// ```
pub fn run_async(
    g: &CsrGraph,
    alg: &dyn IterativeAlgorithm,
    order: &Permutation,
    cfg: &RunConfig,
) -> RunStats {
    dispatch_gather!(alg, a => async_kernel(g, a, order, cfg))
}

/// The asynchronous round loop, generic over the algorithm so `gather` /
/// `apply` inline with a concrete `A`. In-place reads: earlier-ordered
/// neighbors are already fresh (Eq. 2's x^k), later ones still carry
/// x^{k-1}.
pub fn async_kernel<A: IterativeAlgorithm + ?Sized>(
    g: &CsrGraph,
    alg: &A,
    order: &Permutation,
    cfg: &RunConfig,
) -> RunStats {
    let init: Vec<f64> = (0..g.num_vertices() as u32)
        .map(|v| alg.init(g, v))
        .collect();
    async_kernel_warm(g, alg, order, cfg, init)
}

/// One dense full in-place sweep — the historical hot loop, kept in
/// its own (deliberately un-inlined) function so the per-edge gather
/// optimizes as a tight region instead of sharing a frame with the
/// sparse/push machinery. Returns the change count; member tracking in
/// `out_set` stops once the count alone pins the next round dense.
/// (PushOnly never reaches a dense pull round: `force_push` routes
/// every round to the push arm.)
#[inline(never)]
#[allow(clippy::too_many_arguments)]
// Phase 2 indexes `order_arr` on purpose: the IDENTITY instantiation
// must not materialize the iterator at all.
#[allow(clippy::needless_range_loop)]
fn dense_async_round<const IDENTITY: bool, A: IterativeAlgorithm + ?Sized>(
    g: &CsrGraph,
    ctx: &GatherContext<'_>,
    alg: &A,
    order: &Permutation,
    states: &mut [f64],
    out_set: &mut Frontier,
    dense_denom: usize,
    acc_delta: &mut DeltaAccumulator,
) -> usize {
    let n = states.len();
    let mut count = 0usize;
    // Local accumulator: no through-pointer traffic in the hot loop.
    let mut delta = *acc_delta;
    let order_arr = order.order();
    // Phase 1: track changed members until the count alone pins the
    // next round dense — at which point neither the set nor an exact
    // count is needed any more.
    let mut pos = 0usize;
    while pos < n {
        let v = if IDENTITY { pos as u32 } else { order_arr[pos] };
        let acc = ctx.gather(alg, v, states);
        let old = states[v as usize];
        let new = alg.apply(g, v, old, acc);
        delta.record(old, new);
        if new != old {
            states[v as usize] = new;
            count += 1;
            out_set.insert(pos as u32);
        }
        pos += 1;
        if count * dense_denom > n {
            break;
        }
    }
    // Phase 2: the remaining sweep is the branch-free historical loop
    // (unconditional store, no bookkeeping). The sentinel return keeps
    // the next-round density decision correct.
    if pos < n {
        for p in pos..n {
            let v = if IDENTITY { p as u32 } else { order_arr[p] };
            let acc = ctx.gather(alg, v, states);
            let old = states[v as usize];
            let new = alg.apply(g, v, old, acc);
            delta.record(old, new);
            states[v as usize] = new;
        }
        count = n;
    }
    *acc_delta = delta;
    count
}

/// [`async_kernel`] started from caller-supplied states instead of
/// `alg.init` — the warm-start entry the streaming subsystem uses to
/// resume from a previously converged state. A run whose warm states are
/// already at the fixpoint converges in a single confirmation round.
///
/// The round loop is direction-optimized (see [`crate::direction`]):
/// while the changed set stays dense every round is the historical
/// in-place full sweep; once it turns sparse, rounds either gather only
/// the vertices whose inputs changed — a forward [`PositionScan`] that
/// still consumes in-round activations at later positions, so the pull
/// path is **round-for-round identical** to the historical full sweep
/// for any pure algorithm — or, for
/// [`IterativeAlgorithm::supports_push`] algorithms under
/// [`DirectionPolicy::Auto`], scatter pending changes directly over
/// out-edges (same in-round consumption, relaxation instead of
/// gather). Push rounds reach the same fixpoint bit-identically
/// (chaotic iteration of the same monotone relaxations).
///
/// # Panics
/// Panics if `states.len() != g.num_vertices()` — callers go through
/// [`crate::ExecutionStrategy::run_warm`], which validates first.
pub fn async_kernel_warm<A: IterativeAlgorithm + ?Sized>(
    g: &CsrGraph,
    alg: &A,
    order: &Permutation,
    cfg: &RunConfig,
    mut states: Vec<f64>,
) -> RunStats {
    let n = g.num_vertices();
    assert_eq!(order.len(), n, "order length must match vertex count");
    assert_eq!(states.len(), n, "state length must match vertex count");
    let ctx = GatherContext::new(g);
    let sctx = ScatterContext::new(g);
    let num_edges = g.num_edges();
    // Push-capable mode switches the sparse bookkeeping from
    // per-target ("who must re-gather") to per-source ("whose change is
    // unpropagated"); under PullOnly even push-capable algorithms use
    // the per-target plan, which reproduces the historical rounds
    // exactly.
    let push_ok = alg.supports_push() && cfg.direction != DirectionPolicy::PullOnly;
    let force_push = alg.supports_push() && cfg.direction == DirectionPolicy::PushOnly;
    // Frontier machinery engages far later for accumulative algorithms
    // (see GENERAL_DENSE_DENOMINATOR).
    let dense_denom = if push_ok {
        DENSE_EVAL_DENOMINATOR
    } else {
        GENERAL_DENSE_DENOMINATOR
    };
    let eps = alg.epsilon();
    let start = Instant::now();
    let mut trace = Vec::new();
    if cfg.record_trace {
        trace.push(trace_point(0, start.elapsed(), f64::INFINITY, &states));
    }

    /// What `work_set` holds going into a round.
    #[derive(Clone, Copy, PartialEq)]
    enum Work {
        /// Nothing yet — run a full sweep (cold start / warm restart).
        Dense,
        /// Positions that changed in a full sweep; the round planner
        /// expands them into a pull scan or push sources lazily.
        Changed,
        /// Exact pull set: changed positions and their unconsumed
        /// out-neighbor activations (per-target plan, `!push_ok`).
        Pending,
        /// Changed positions whose new value has unpropagated out-edges
        /// (per-source plan, `push_ok`).
        Sources,
    }
    let mut work = Work::Dense;
    let mut work_set = Frontier::new(n);
    // Changes produced by `work_set`'s round; `out_count` is the true
    // change count — dense sweeps stop materializing members once the
    // count alone already forces the next round dense (`work_set` is
    // then partial and only the count may be consulted).
    let mut work_count = 0usize;
    let mut out_set = Frontier::new(n);
    let mut scan = PositionScan::new(n);
    // Push-round delta accounting: first-change old values.
    let mut touched = Frontier::new(n);
    let mut touch_log: Vec<(u32, f64)> = Vec::new();

    let mut rounds = 0usize;
    let mut converged = false;
    let mut push_rounds = 0usize;
    while rounds < cfg.max_rounds {
        rounds += 1;
        let mut acc_delta = DeltaAccumulator::new(alg.norm());
        out_set.clear();
        let out_count;

        // Plan the round. Near-full changed sets go back to the dense
        // streaming sweep even for push-capable algorithms — scattering
        // almost every edge plus touch bookkeeping loses to the
        // sequential pull; a forced PushOnly policy overrides.
        let dense = match work {
            Work::Dense => true,
            _ => work_count * dense_denom > n,
        };
        let push = match work {
            Work::Dense => force_push,
            Work::Pending => false,
            Work::Changed | Work::Sources => {
                (force_push || !dense)
                    && choose_push(
                        cfg.direction,
                        push_ok,
                        push_mass(&work_set, order, ctx.out_degrees()),
                        num_edges,
                    )
            }
        };

        if push {
            // Push round: pending changes relax their out-edges in
            // place; an improved vertex at a later position joins the
            // sweep and scatters its own improvement this round.
            push_rounds += 1;
            touched.clear();
            touch_log.clear();
            match work {
                Work::Dense => (0..n as u32).for_each(|p| scan.set(p)),
                _ => scan.load(&work_set),
            }
            let mut wi = 0usize;
            while wi < scan.num_words() {
                let Some(pos) = scan.take_lowest(wi) else {
                    wi += 1;
                    continue;
                };
                let u = order.vertex_at(pos as usize);
                let su = states[u as usize];
                sctx.scatter(alg, u, su, |v, cand| {
                    let old = states[v as usize];
                    let new = alg.apply(g, v, old, cand);
                    if new != old {
                        states[v as usize] = new;
                        let pv = order.position(v);
                        if touched.insert(pv) {
                            touch_log.push((v, old));
                        }
                        if pv > pos {
                            // Joins this sweep: the improvement is
                            // propagated in-round.
                            scan.set(pv);
                        } else {
                            // Behind the cursor: stays pending.
                            out_set.insert(pv);
                        }
                    }
                });
            }
            for &(v, old) in &touch_log {
                acc_delta.record(old, states[v as usize]);
            }
            out_count = out_set.len();
            work = Work::Sources;
        } else if dense {
            out_count = if order.is_identity() {
                dense_async_round::<true, A>(
                    g,
                    &ctx,
                    alg,
                    order,
                    &mut states,
                    &mut out_set,
                    dense_denom,
                    &mut acc_delta,
                )
            } else {
                dense_async_round::<false, A>(
                    g,
                    &ctx,
                    alg,
                    order,
                    &mut states,
                    &mut out_set,
                    dense_denom,
                    &mut acc_delta,
                )
            };
            work = Work::Changed;
        } else {
            // Sparse pull with in-round consumption: evaluate scheduled
            // positions in ascending order; a change activates later
            // out-neighbors into this same sweep and earlier ones into
            // the next round.
            match work {
                Work::Changed => {
                    // Lazy expansion of a full sweep's changed set.
                    work_set.for_each(|p| {
                        if !push_ok {
                            scan.set(p); // self re-evaluation (per-target plan)
                        }
                        g.for_each_out_neighbor(order.vertex_at(p as usize), |w| {
                            scan.set(order.position(w));
                        });
                    });
                }
                Work::Sources => {
                    work_set.for_each(|p| {
                        g.for_each_out_neighbor(order.vertex_at(p as usize), |w| {
                            scan.set(order.position(w));
                        });
                    });
                }
                _ => scan.load(&work_set),
            }
            let mut wi = 0usize;
            while wi < scan.num_words() {
                let Some(pos) = scan.take_lowest(wi) else {
                    wi += 1;
                    continue;
                };
                let v = order.vertex_at(pos as usize);
                let acc = ctx.gather(alg, v, &states);
                let old = states[v as usize];
                let new = alg.apply(g, v, old, acc);
                acc_delta.record(old, new);
                if new != old {
                    states[v as usize] = new;
                    if push_ok {
                        activate_per_source(g, order, v, pos, &mut scan, &mut out_set);
                    } else {
                        activate_per_target(g, order, v, pos, &mut scan, &mut out_set, true);
                    }
                }
            }
            out_count = out_set.len();
            work = if push_ok {
                Work::Sources
            } else {
                Work::Pending
            };
        }

        if cfg.record_trace {
            trace.push(trace_point(
                rounds,
                start.elapsed(),
                acc_delta.value(),
                &states,
            ));
        }
        if acc_delta.value() <= eps {
            converged = true;
            break;
        }
        std::mem::swap(&mut work_set, &mut out_set);
        work_count = out_count;
    }

    RunStats {
        rounds,
        runtime: start.elapsed(),
        converged,
        final_states: states,
        trace,
        // Single state array (the async memory advantage of Fig. 11)
        // plus the direction machinery's frontier sets and sweep bitmap.
        state_memory_bytes: n * std::mem::size_of::<f64>()
            + work_set.memory_bytes()
            + out_set.memory_bytes()
            + touched.memory_bytes()
            + scan.memory_bytes(),
        evaluations: None,
        push_rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{PageRank, Sssp};
    use crate::sync::run_sync;
    use gograph_graph::generators::regular::chain;
    use gograph_graph::generators::{
        planted_partition, with_random_weights, PlantedPartitionConfig,
    };

    #[test]
    fn chain_converges_in_two_rounds_with_good_order() {
        // Identity order on a chain: every edge is positive, so one round
        // fully propagates + 1 confirmation round.
        let g = chain(50);
        let stats = run_async(
            &g,
            &Sssp::new(0),
            &Permutation::identity(50),
            &RunConfig::default(),
        );
        assert!(stats.converged);
        assert_eq!(stats.rounds, 2);
        assert_eq!(stats.final_states[49], 49.0);
    }

    #[test]
    fn chain_with_reversed_order_is_slow() {
        // Reversed order: every edge negative — async degenerates to
        // sync-like propagation, one hop per round.
        let g = chain(20);
        let rev = Permutation::identity(20).reversed();
        let stats = run_async(&g, &Sssp::new(0), &rev, &RunConfig::default());
        assert!(stats.converged);
        assert!(stats.rounds >= 19, "rounds = {}", stats.rounds);
    }

    #[test]
    fn async_fixpoint_matches_sync() {
        let g = with_random_weights(
            &planted_partition(PlantedPartitionConfig {
                num_vertices: 200,
                num_edges: 1500,
                communities: 4,
                p_intra: 0.8,
                gamma: 2.5,
                seed: 5,
            }),
            1.0,
            10.0,
            7,
        );
        let cfg = RunConfig::default();
        let id = Permutation::identity(200);
        let alg = Sssp::new(0);
        let s = run_sync(&g, &alg, &id, &cfg);
        let a = run_async(&g, &alg, &id, &cfg);
        assert_eq!(s.final_states, a.final_states);
        assert!(
            a.rounds <= s.rounds,
            "async {} vs sync {}",
            a.rounds,
            s.rounds
        );
    }

    #[test]
    fn pagerank_async_close_to_sync_fixpoint() {
        let g = planted_partition(PlantedPartitionConfig {
            num_vertices: 150,
            num_edges: 1200,
            ..Default::default()
        });
        let cfg = RunConfig::default();
        let id = Permutation::identity(150);
        let pr = PageRank::default();
        let s = run_sync(&g, &pr, &id, &cfg);
        let a = run_async(&g, &pr, &id, &cfg);
        assert!(s.converged && a.converged);
        for (x, y) in s.final_states.iter().zip(&a.final_states) {
            assert!((x - y).abs() < 1e-3, "sync {x} vs async {y}");
        }
        assert!(a.rounds <= s.rounds);
    }

    #[test]
    fn async_memory_is_below_sync() {
        // Sync double-buffers its state array; async keeps one. Both
        // now also report their frontier structures, so the relation is
        // an inequality rather than an exact 2x.
        let g = chain(10);
        let cfg = RunConfig::default();
        let id = Permutation::identity(10);
        let s = run_sync(&g, &Sssp::new(0), &id, &cfg);
        let a = run_async(&g, &Sssp::new(0), &id, &cfg);
        assert!(
            s.state_memory_bytes > a.state_memory_bytes,
            "sync {} vs async {}",
            s.state_memory_bytes,
            a.state_memory_bytes
        );
        // The double-buffer portion itself is exactly 2x one state
        // array.
        assert!(s.state_memory_bytes >= 2 * 10 * std::mem::size_of::<f64>());
    }
}
