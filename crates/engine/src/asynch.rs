//! Asynchronous (Gauss–Seidel) engine — the paper's Eq. 2.
//!
//! A single state array is updated in place while scanning the processing
//! order, so a vertex whose in-neighbor appears *earlier* in the order
//! (a positive edge) consumes that neighbor's state from the **current**
//! round. This is exactly the mechanism GoGraph's reordering maximizes:
//! more positive edges ⇒ fresher inputs ⇒ fewer rounds (Theorem 1).

use crate::algorithm::IterativeAlgorithm;
use crate::convergence::{trace_point, DeltaAccumulator, RunStats};
use crate::dispatch::{dispatch_gather, GatherContext};
use crate::runner::RunConfig;
use gograph_graph::{CsrGraph, Permutation};
use std::time::Instant;

/// Runs `alg` on `g` asynchronously, visiting vertices in `order` each
/// round. Unlike the synchronous engine, the visit order changes the
/// number of rounds (not the fixpoint).
///
/// ```
/// use gograph_engine::{run_async, Sssp, RunConfig};
/// use gograph_graph::generators::regular::chain;
/// use gograph_graph::Permutation;
///
/// let g = chain(50);
/// // Every chain edge is positive under the identity order: one
/// // propagation round + one confirmation round.
/// let stats = run_async(&g, &Sssp::new(0), &Permutation::identity(50),
///                       &RunConfig::default());
/// assert_eq!(stats.rounds, 2);
/// assert_eq!(stats.final_states[49], 49.0);
/// ```
pub fn run_async(
    g: &CsrGraph,
    alg: &dyn IterativeAlgorithm,
    order: &Permutation,
    cfg: &RunConfig,
) -> RunStats {
    dispatch_gather!(alg, a => async_kernel(g, a, order, cfg))
}

/// The asynchronous round loop, generic over the algorithm so `gather` /
/// `apply` inline with a concrete `A`. In-place reads: earlier-ordered
/// neighbors are already fresh (Eq. 2's x^k), later ones still carry
/// x^{k-1}.
pub fn async_kernel<A: IterativeAlgorithm + ?Sized>(
    g: &CsrGraph,
    alg: &A,
    order: &Permutation,
    cfg: &RunConfig,
) -> RunStats {
    let init: Vec<f64> = (0..g.num_vertices() as u32)
        .map(|v| alg.init(g, v))
        .collect();
    async_kernel_warm(g, alg, order, cfg, init)
}

/// [`async_kernel`] started from caller-supplied states instead of
/// `alg.init` — the warm-start entry the streaming subsystem uses to
/// resume from a previously converged state. A run whose warm states are
/// already at the fixpoint converges in a single confirmation round.
///
/// # Panics
/// Panics if `states.len() != g.num_vertices()` — callers go through
/// [`crate::ExecutionStrategy::run_warm`], which validates first.
pub fn async_kernel_warm<A: IterativeAlgorithm + ?Sized>(
    g: &CsrGraph,
    alg: &A,
    order: &Permutation,
    cfg: &RunConfig,
    mut states: Vec<f64>,
) -> RunStats {
    let n = g.num_vertices();
    assert_eq!(order.len(), n, "order length must match vertex count");
    assert_eq!(states.len(), n, "state length must match vertex count");
    let ctx = GatherContext::new(g);
    let eps = alg.epsilon();
    let start = Instant::now();
    let mut trace = Vec::new();
    if cfg.record_trace {
        trace.push(trace_point(0, start.elapsed(), f64::INFINITY, &states));
    }

    let mut rounds = 0usize;
    let mut converged = false;
    while rounds < cfg.max_rounds {
        rounds += 1;
        let mut acc_delta = DeltaAccumulator::new(alg.norm());
        for &v in order.order() {
            let acc = ctx.gather(alg, v, &states);
            let old = states[v as usize];
            let new = alg.apply(g, v, old, acc);
            acc_delta.record(old, new);
            states[v as usize] = new;
        }
        if cfg.record_trace {
            trace.push(trace_point(
                rounds,
                start.elapsed(),
                acc_delta.value(),
                &states,
            ));
        }
        if acc_delta.value() <= eps {
            converged = true;
            break;
        }
    }

    RunStats {
        rounds,
        runtime: start.elapsed(),
        converged,
        final_states: states,
        trace,
        // Single state array: the async memory advantage of Fig. 11.
        state_memory_bytes: n * std::mem::size_of::<f64>(),
        evaluations: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{PageRank, Sssp};
    use crate::sync::run_sync;
    use gograph_graph::generators::regular::chain;
    use gograph_graph::generators::{
        planted_partition, with_random_weights, PlantedPartitionConfig,
    };

    #[test]
    fn chain_converges_in_two_rounds_with_good_order() {
        // Identity order on a chain: every edge is positive, so one round
        // fully propagates + 1 confirmation round.
        let g = chain(50);
        let stats = run_async(
            &g,
            &Sssp::new(0),
            &Permutation::identity(50),
            &RunConfig::default(),
        );
        assert!(stats.converged);
        assert_eq!(stats.rounds, 2);
        assert_eq!(stats.final_states[49], 49.0);
    }

    #[test]
    fn chain_with_reversed_order_is_slow() {
        // Reversed order: every edge negative — async degenerates to
        // sync-like propagation, one hop per round.
        let g = chain(20);
        let rev = Permutation::identity(20).reversed();
        let stats = run_async(&g, &Sssp::new(0), &rev, &RunConfig::default());
        assert!(stats.converged);
        assert!(stats.rounds >= 19, "rounds = {}", stats.rounds);
    }

    #[test]
    fn async_fixpoint_matches_sync() {
        let g = with_random_weights(
            &planted_partition(PlantedPartitionConfig {
                num_vertices: 200,
                num_edges: 1500,
                communities: 4,
                p_intra: 0.8,
                gamma: 2.5,
                seed: 5,
            }),
            1.0,
            10.0,
            7,
        );
        let cfg = RunConfig::default();
        let id = Permutation::identity(200);
        let alg = Sssp::new(0);
        let s = run_sync(&g, &alg, &id, &cfg);
        let a = run_async(&g, &alg, &id, &cfg);
        assert_eq!(s.final_states, a.final_states);
        assert!(
            a.rounds <= s.rounds,
            "async {} vs sync {}",
            a.rounds,
            s.rounds
        );
    }

    #[test]
    fn pagerank_async_close_to_sync_fixpoint() {
        let g = planted_partition(PlantedPartitionConfig {
            num_vertices: 150,
            num_edges: 1200,
            ..Default::default()
        });
        let cfg = RunConfig::default();
        let id = Permutation::identity(150);
        let pr = PageRank::default();
        let s = run_sync(&g, &pr, &id, &cfg);
        let a = run_async(&g, &pr, &id, &cfg);
        assert!(s.converged && a.converged);
        for (x, y) in s.final_states.iter().zip(&a.final_states) {
            assert!((x - y).abs() < 1e-3, "sync {x} vs async {y}");
        }
        assert!(a.rounds <= s.rounds);
    }

    #[test]
    fn async_memory_is_half_of_sync() {
        let g = chain(10);
        let cfg = RunConfig::default();
        let id = Permutation::identity(10);
        let s = run_sync(&g, &Sssp::new(0), &id, &cfg);
        let a = run_async(&g, &Sssp::new(0), &id, &cfg);
        assert_eq!(s.state_memory_bytes, 2 * a.state_memory_bytes);
    }
}
