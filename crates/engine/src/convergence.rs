//! Convergence bookkeeping: per-round deltas, traces for the Fig. 7
//! convergence curves, and the run statistics every engine returns.

use crate::algorithm::ConvergenceNorm;
use std::time::Duration;

/// One recorded round of an iterative run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracePoint {
    /// Round number (1-based; round 0 is the initial state).
    pub round: usize,
    /// Wall-clock time elapsed since the run started.
    pub elapsed: Duration,
    /// Aggregated state delta of this round (per the algorithm's norm).
    pub delta: f64,
    /// Sum of all finite vertex states after this round (the quantity the
    /// paper's `dist_t = |Σ x* − Σ x_t|` curves are built from).
    pub finite_sum: f64,
    /// Number of vertices whose state is still non-finite (e.g. SSSP's
    /// unreached `+inf`).
    pub infinite_count: usize,
}

/// Statistics of one engine run.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Rounds executed (the paper's "number of iterations").
    pub rounds: usize,
    /// Wall-clock runtime of the iteration loop.
    pub runtime: Duration,
    /// Whether the convergence criterion was met within the round cap.
    pub converged: bool,
    /// Final vertex states.
    pub final_states: Vec<f64>,
    /// Per-round trace (empty unless tracing was enabled).
    pub trace: Vec<TracePoint>,
    /// Bytes of state the engine held (Fig. 11 memory accounting):
    /// one array for async, two for sync.
    pub state_memory_bytes: usize,
    /// Total vertex evaluations, for engines that skip work
    /// (`Some` for the worklist engine; full-scan engines report `None`
    /// — their count is always `rounds * n`).
    pub evaluations: Option<usize>,
    /// Rounds executed in the push (scatter) direction: scatter rounds
    /// for the direction-optimizing gather engines (sequential and
    /// block-parallel alike), sparse-sweep/batch rounds that actually
    /// consumed a delta for the delta engines. 0 for pull-only runs.
    pub push_rounds: usize,
}

impl RunStats {
    /// Sum of all finite final states.
    pub fn finite_sum(&self) -> f64 {
        self.final_states
            .iter()
            .copied()
            .filter(|x| x.is_finite())
            .sum()
    }

    /// Distance-to-convergence curve against a reference converged state
    /// sum: `dist_t = |Σ x* − Σ x_t|` (paper §V-C). Returns
    /// `(elapsed, dist)` pairs.
    pub fn distance_curve(&self, converged_sum: f64) -> Vec<(Duration, f64)> {
        self.trace
            .iter()
            .map(|p| (p.elapsed, (converged_sum - p.finite_sum).abs()))
            .collect()
    }
}

/// Accumulates per-round deltas under a [`ConvergenceNorm`].
#[derive(Debug, Clone, Copy)]
pub struct DeltaAccumulator {
    norm: ConvergenceNorm,
    value: f64,
}

impl DeltaAccumulator {
    /// A fresh accumulator for one round.
    pub fn new(norm: ConvergenceNorm) -> Self {
        DeltaAccumulator { norm, value: 0.0 }
    }

    /// Records a state change `old -> new`.
    #[inline]
    pub fn record(&mut self, old: f64, new: f64) {
        let d = state_delta(old, new);
        match self.norm {
            ConvergenceNorm::Max => self.value = self.value.max(d),
            ConvergenceNorm::Sum => self.value += d,
        }
    }

    /// The aggregated delta.
    pub fn value(&self) -> f64 {
        self.value
    }
}

/// |old − new| with the convention that two non-finite states are equal
/// (SSSP's `inf -> inf` is no change) and a transition from non-finite to
/// finite is an infinite (i.e. definitely above-epsilon) change.
#[inline]
pub fn state_delta(old: f64, new: f64) -> f64 {
    match (old.is_finite(), new.is_finite()) {
        (true, true) => (old - new).abs(),
        (false, false) => 0.0,
        _ => f64::INFINITY,
    }
}

/// Builds a [`TracePoint`] from a state array.
pub fn trace_point(round: usize, elapsed: Duration, delta: f64, states: &[f64]) -> TracePoint {
    let mut finite_sum = 0.0;
    let mut infinite_count = 0;
    for &x in states {
        if x.is_finite() {
            finite_sum += x;
        } else {
            infinite_count += 1;
        }
    }
    TracePoint {
        round,
        elapsed,
        delta,
        finite_sum,
        infinite_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_delta_handles_infinities() {
        assert_eq!(state_delta(f64::INFINITY, f64::INFINITY), 0.0);
        assert_eq!(state_delta(f64::INFINITY, 3.0), f64::INFINITY);
        assert_eq!(state_delta(1.0, 4.0), 3.0);
    }

    #[test]
    fn max_norm_takes_max() {
        let mut acc = DeltaAccumulator::new(ConvergenceNorm::Max);
        acc.record(0.0, 1.0);
        acc.record(0.0, 5.0);
        acc.record(0.0, 2.0);
        assert_eq!(acc.value(), 5.0);
    }

    #[test]
    fn sum_norm_adds() {
        let mut acc = DeltaAccumulator::new(ConvergenceNorm::Sum);
        acc.record(0.0, 1.0);
        acc.record(3.0, 1.0);
        assert_eq!(acc.value(), 3.0);
    }

    #[test]
    fn trace_point_splits_finite_and_infinite() {
        let p = trace_point(2, Duration::from_millis(5), 0.1, &[1.0, f64::INFINITY, 2.0]);
        assert_eq!(p.finite_sum, 3.0);
        assert_eq!(p.infinite_count, 1);
        assert_eq!(p.round, 2);
    }

    #[test]
    fn distance_curve_from_trace() {
        let stats = RunStats {
            rounds: 2,
            runtime: Duration::ZERO,
            converged: true,
            final_states: vec![1.0, 2.0],
            trace: vec![
                trace_point(1, Duration::from_millis(1), 1.0, &[0.5, 1.0]),
                trace_point(2, Duration::from_millis(2), 0.0, &[1.0, 2.0]),
            ],
            state_memory_bytes: 16,
            evaluations: None,
            push_rounds: 0,
        };
        let curve = stats.distance_curve(3.0);
        assert_eq!(curve[0].1, 1.5);
        assert_eq!(curve[1].1, 0.0);
        assert_eq!(stats.finite_sum(), 3.0);
    }
}
