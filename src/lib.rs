//! # gograph
//!
//! Reproduction of *Fast Iterative Graph Computing with Updated Neighbor
//! States* (ICDE 2024): the **GoGraph** vertex-reordering method, the
//! asynchronous iterative engine that exploits it, every baseline it is
//! compared against, and the substrates (partitioners, cache simulator,
//! synthetic datasets) needed to regenerate the paper's evaluation.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! - [`graph`] — CSR graphs, builders, generators, permutations, I/O,
//! - [`partition`] — Rabbit-partition / Louvain / Metis-like / Fennel,
//! - [`reorder`] — baseline orderings (DegSort, HubSort, HubCluster,
//!   Rabbit order, Gorder, ...),
//! - [`core`] — the GoGraph pipeline, metric function `M(·)` and the
//!   greedy optimal-position inserter,
//! - [`engine`] — sync / async / parallel iterative execution with
//!   PageRank, SSSP, BFS, PHP, CC, SSWP, Katz, Adsorption,
//! - [`cachesim`] — the trace-driven cache-miss simulator.
//!
//! ## Quickstart
//!
//! ```
//! use gograph::prelude::*;
//!
//! // A synthetic power-law community graph.
//! let g = planted_partition(PlantedPartitionConfig::default());
//!
//! // Reorder with GoGraph and run asynchronous PageRank on the
//! // physically relabeled graph.
//! let order = GoGraph::default().run(&g);
//! let relabeled = g.relabeled(&order);
//! let id = Permutation::identity(relabeled.num_vertices());
//! let stats = run(&relabeled, &PageRank::default(), Mode::Async, &id,
//!                 &RunConfig::default());
//! assert!(stats.converged);
//!
//! // Theorem 2: at least half the edges are positive under the order.
//! assert!(2 * metric(&g, &order) >= g.num_edges());
//! ```

pub use gograph_cachesim as cachesim;
pub use gograph_core as core;
pub use gograph_engine as engine;
pub use gograph_graph as graph;
pub use gograph_partition as partition;
pub use gograph_reorder as reorder;

/// Convenient glob-import of the most-used items.
pub mod prelude {
    pub use gograph_cachesim::{cache_misses_of_order, CacheHierarchy};
    pub use gograph_core::{
        check_theorem2, metric, metric_report, refine_adjacent_swaps, GoGraph,
        IncrementalGoGraph, PartitionerChoice,
    };
    pub use gograph_engine::{
        run, run_delta_priority, run_delta_round_robin, run_relabeled, run_worklist, Adsorption,
        Bfs, ConnectedComponents, DeltaPageRank, DeltaSssp, IterativeAlgorithm, Katz, Mode,
        PageRank, Php, RunConfig, RunStats, Sssp, Sswp,
    };
    pub use gograph_graph::generators::{
        barabasi_albert, erdos_renyi, planted_partition, rmat, shuffle_labels,
        with_random_weights, PlantedPartitionConfig, RmatConfig,
    };
    pub use gograph_graph::{CsrGraph, Direction, Edge, GraphBuilder, Permutation, VertexId};
    pub use gograph_partition::{
        Fennel, Louvain, MetisLike, Partitioner, Partitioning, RabbitPartition,
    };
    pub use gograph_reorder::{
        BfsOrder, DegSort, DefaultOrder, DfsOrder, Gorder, HubCluster, HubSort, RabbitOrder,
        RandomOrder, Reorderer,
    };
}
