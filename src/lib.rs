//! # gograph
//!
//! Reproduction of *Fast Iterative Graph Computing with Updated Neighbor
//! States* (ICDE 2024): the **GoGraph** vertex-reordering method, the
//! asynchronous iterative engine that exploits it, every baseline it is
//! compared against, and the substrates (partitioners, cache simulator,
//! synthetic datasets) needed to regenerate the paper's evaluation.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! - [`graph`] — CSR graphs, builders, generators, permutations, I/O,
//! - [`partition`] — Rabbit-partition / Louvain / Metis-like / Fennel,
//! - [`reorder`] — baseline orderings (DegSort, HubSort, HubCluster,
//!   Rabbit order, Gorder, ...),
//! - [`core`] — the GoGraph pipeline, metric function `M(·)` and the
//!   greedy optimal-position inserter,
//! - [`engine`] — the [`Pipeline`](engine::Pipeline) execution API over
//!   sync / async / parallel / worklist / delta strategies, with
//!   PageRank, SSSP, BFS, PHP, CC, SSWP, Katz, Adsorption,
//! - [`cachesim`] — the trace-driven cache-miss simulator.
//!
//! ## Quickstart
//!
//! The paper's whole method is one composable pipeline: compute an order
//! `R(G) -> O_V`, physically relabel the graph so the order becomes a
//! sequential scan, then iterate a monotonic algorithm asynchronously.
//!
//! ```
//! use gograph::prelude::*;
//!
//! // A synthetic power-law community graph.
//! let g = planted_partition(PlantedPartitionConfig::default());
//!
//! // Reorder with GoGraph, relabel, and run asynchronous PageRank —
//! // one fallible entry point instead of hand-wired stages.
//! let result = Pipeline::on(&g)
//!     .reorder(GoGraph::default())
//!     .relabel(true)
//!     .mode(Mode::Async)
//!     .algorithm(PageRank::default())
//!     .execute()
//!     .expect("valid pipeline");
//! assert!(result.stats.converged);
//!
//! // Theorem 2: at least half the edges are positive under the order.
//! assert!(2 * metric(&g, &result.order) >= g.num_edges());
//!
//! // Any reorderer slots in; any execution strategy, too.
//! let wl = Pipeline::on(&g)
//!     .reorder(DegSort::default())
//!     .mode(Mode::Worklist)
//!     .algorithm(PageRank::default())
//!     .execute()
//!     .unwrap();
//! assert!(wl.stats.evaluations.is_some());
//! ```

pub use gograph_cachesim as cachesim;
pub use gograph_core as core;
pub use gograph_engine as engine;
pub use gograph_graph as graph;
pub use gograph_partition as partition;
pub use gograph_reorder as reorder;

/// Convenient glob-import of the most-used items.
pub mod prelude {
    pub use gograph_cachesim::{cache_misses_of_order, CacheHierarchy};
    pub use gograph_core::{
        check_theorem2, metric, metric_report, order_members, partition_contributions,
        refine_adjacent_swaps, GoGraph, IncrementalGoGraph, ParallelGoGraph, PartitionContribution,
        PartitionedOrder, PartitionerChoice, UNPARTITIONED,
    };
    #[allow(deprecated)]
    pub use gograph_engine::{
        run, run_delta_priority, run_delta_round_robin, run_relabeled, run_worklist,
    };
    pub use gograph_engine::{
        split_batches, Adsorption, AlgorithmKind, AlgorithmRef, Bfs, ConnectedComponents,
        DeltaAlgorithm, DeltaAlgorithmKind, DeltaPageRank, DeltaSchedule, DeltaSssp,
        DirectionPolicy, DynOnly, DynOnlyDelta, EngineError, ExecutionStrategy, GatherContext,
        IterativeAlgorithm, Katz, Mode, PageRank, Php, Pipeline, PipelineResult, RunConfig,
        RunStats, ScatterContext, SplitBatchesError, Sssp, Sswp, StageTimings, StreamingPipeline,
        WarmStart,
    };
    pub use gograph_graph::generators::{
        barabasi_albert, erdos_renyi, planted_partition, rmat, shuffle_labels, with_random_weights,
        PlantedPartitionConfig, RmatConfig,
    };
    pub use gograph_graph::Frontier;
    pub use gograph_graph::{
        CsrGraph, Direction, Edge, EdgeUpdate, GraphBuilder, Permutation, VertexId,
    };
    pub use gograph_partition::{
        Fennel, Louvain, MetisLike, Partitioner, Partitioning, RabbitPartition,
    };
    pub use gograph_reorder::{
        BfsOrder, DefaultOrder, DegSort, DfsOrder, Gorder, HubCluster, HubSort, RabbitOrder,
        RandomOrder, Reorderer,
    };
}
