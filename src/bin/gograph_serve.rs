//! `gograph_serve` — boots the epoch-snapshot query service over a
//! generated community graph and serves the wire protocol until a
//! client sends Shutdown.
//!
//! ```text
//! gograph_serve [--listen 127.0.0.1:7421] [--scale tiny|standard]
//!               [--window-ms 2] [--warm cc,sssp:0,pagerank]
//!               [--durable-dir DIR] [--checkpoint-every N]
//!               [--delta-checkpoints]
//!               [--role primary|follower] [--peer ADDR]
//! ```
//!
//! `--scale` defaults to the `GOGRAPH_SCALE` environment variable
//! (`standard` when unset). With `--durable-dir`, admitted update
//! batches are WAL-logged before the ack and the server checkpoints
//! every N batches (delta-chained when `--delta-checkpoints` is set);
//! if the directory already holds durable state the server *recovers*
//! from it (checkpoint + WAL tail replay) instead of booting fresh,
//! printing `gograph-serve: recovered epoch <E> (replayed <K> batches)`.
//!
//! `--role follower --peer ADDR` boots a read replica instead: the
//! graph is shipped from the primary's checkpoint (no local generation,
//! no `--durable-dir`), a background puller replays the primary's WAL
//! through the same apply path, and queries are served with the usual
//! bounded-staleness contract against the last known primary seq.
//!
//! The ready line printed on stdout is stable:
//! `gograph-serve: listening on <addr> ...` — the CI smoke greps it.

use gograph_graph::generators::{planted_partition, shuffle_labels, PlantedPartitionConfig};
use gograph_serve::{
    bootstrap_follower, serve, AlgSpec, DurabilityConfig, ReplicationConfig, RoleSpec, ServeConfig,
    ServeCore, WarmSpec,
};
use std::time::Duration;

fn main() {
    let mut listen = "127.0.0.1:7421".to_string();
    let mut scale = std::env::var("GOGRAPH_SCALE").unwrap_or_else(|_| "standard".to_string());
    let mut window_ms: u64 = 2;
    let mut warm_arg = "cc,sssp:0".to_string();
    let mut durable_dir: Option<String> = None;
    let mut checkpoint_every: u64 = 16;
    let mut delta_checkpoints = false;
    let mut role = RoleSpec::Primary;
    let mut peer: Option<String> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| {
                eprintln!("missing value for {}", args[*i - 1]);
                std::process::exit(2);
            })
        };
        match args[i].as_str() {
            "--listen" => listen = value(&mut i),
            "--scale" => scale = value(&mut i),
            "--window-ms" => {
                window_ms = value(&mut i).parse().unwrap_or_else(|_| {
                    eprintln!("--window-ms wants an integer");
                    std::process::exit(2);
                })
            }
            "--warm" => warm_arg = value(&mut i),
            "--durable-dir" => durable_dir = Some(value(&mut i)),
            "--checkpoint-every" => {
                checkpoint_every = value(&mut i).parse().unwrap_or_else(|_| {
                    eprintln!("--checkpoint-every wants an integer");
                    std::process::exit(2);
                })
            }
            "--delta-checkpoints" => delta_checkpoints = true,
            "--role" => {
                let name = value(&mut i);
                role = RoleSpec::from_name(&name).unwrap_or_else(|| {
                    eprintln!("--role wants primary or follower, got {name:?}");
                    std::process::exit(2);
                })
            }
            "--peer" => peer = Some(value(&mut i)),
            "--help" | "-h" => {
                eprintln!(
                    "usage: gograph_serve [--listen ADDR] [--scale tiny|standard] \
                     [--window-ms N] [--warm cc,sssp:0,...] \
                     [--durable-dir DIR] [--checkpoint-every N] \
                     [--delta-checkpoints] [--role primary|follower] [--peer ADDR]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let warm = parse_warm(&warm_arg);

    if role == RoleSpec::Follower {
        let peer = peer.unwrap_or_else(|| {
            eprintln!("--role follower needs --peer ADDR (the primary to ship WAL from)");
            std::process::exit(2);
        });
        if durable_dir.is_some() {
            eprintln!("a follower keeps no durable state of its own; drop --durable-dir");
            std::process::exit(2);
        }
        let config = ServeConfig {
            warm,
            admission_window: Duration::from_millis(window_ms),
            ..ServeConfig::default()
        };
        let (core, puller) =
            bootstrap_follower(peer.as_str(), config, ReplicationConfig::default()).unwrap_or_else(
                |e| {
                    eprintln!("failed to bootstrap follower from {peer}: {e}");
                    std::process::exit(1);
                },
            );
        let boot = core.stats_snapshot();
        println!(
            "gograph-serve: follower synced to primary seq {} (epoch {})",
            boot.repl_primary_seq, boot.epoch
        );
        let handle = serve(listen.as_str(), core).unwrap_or_else(|e| {
            eprintln!("failed to bind {listen}: {e}");
            std::process::exit(1);
        });
        println!(
            "gograph-serve: listening on {} ({} vertices, {} edges, epoch {} ready)",
            handle.local_addr(),
            boot.num_vertices,
            boot.num_edges,
            boot.epoch
        );
        use std::io::Write;
        let _ = std::io::stdout().flush();
        let replica = gograph_serve::start_follower(puller);
        handle.wait();
        drop(replica);
        println!("gograph-serve: shutdown complete");
        return;
    }

    let (n, m) = match scale.as_str() {
        "tiny" | "small" | "test" => (400, 2_400),
        _ => (40_000, 240_000),
    };
    let graph = shuffle_labels(
        &planted_partition(PlantedPartitionConfig {
            num_vertices: n,
            num_edges: m,
            communities: (n / 100).max(4),
            p_intra: 0.8,
            gamma: 2.4,
            seed: 42,
        }),
        7,
    );

    let config = ServeConfig {
        warm,
        admission_window: Duration::from_millis(window_ms),
        durability: durable_dir.as_ref().map(|dir| DurabilityConfig {
            checkpoint_every_batches: checkpoint_every,
            delta_checkpoints,
            ..DurabilityConfig::new(dir)
        }),
        ..ServeConfig::default()
    };
    let (core, recovered) = ServeCore::recover_or_start(&graph, config).unwrap_or_else(|e| {
        eprintln!("failed to start service: {e}");
        std::process::exit(1);
    });
    let boot = core.stats_snapshot();
    if recovered {
        println!(
            "gograph-serve: recovered epoch {} (replayed {} batches)",
            boot.epoch, boot.wal_replayed
        );
    }

    let handle = serve(listen.as_str(), core).unwrap_or_else(|e| {
        eprintln!("failed to bind {listen}: {e}");
        std::process::exit(1);
    });
    println!(
        "gograph-serve: listening on {} ({} vertices, {} edges, epoch {} ready)",
        handle.local_addr(),
        boot.num_vertices,
        boot.num_edges,
        boot.epoch
    );
    // The ready line must be visible even through a pipe before the
    // (potentially long) serving phase.
    use std::io::Write;
    let _ = std::io::stdout().flush();

    handle.wait();
    println!("gograph-serve: shutdown complete");
}

fn parse_warm(arg: &str) -> Vec<WarmSpec> {
    let mut warm = Vec::new();
    for part in arg.split(',').filter(|p| !p.is_empty()) {
        let (name, source) = match part.split_once(':') {
            Some((name, src)) => (
                name,
                src.parse().unwrap_or_else(|_| {
                    eprintln!("bad warm source in {part:?}");
                    std::process::exit(2);
                }),
            ),
            None => (part, 0),
        };
        match AlgSpec::from_name(name) {
            Some(alg) => warm.push(WarmSpec::new(alg, source)),
            None => {
                eprintln!("unknown warm algorithm {name:?}");
                std::process::exit(2);
            }
        }
    }
    warm
}
