//! `gograph_loadgen` — closed-loop load harness for `gograph_serve`.
//!
//! Sweeps client counts × update rates against a running server. Each
//! cell runs for a fixed duration: C closed-loop client threads (each
//! waits for its reply before issuing the next query) plus one updater
//! thread streaming edge-update batches at the configured rate. Client
//! side latencies give p50/p99; the server's stats reply (before/after
//! deltas) gives epochs published, coalescing counts and engine
//! `RunStats` aggregates. Results land in a JSON report comparable to
//! `BENCH_PR2`–`PR5`.
//!
//! ```text
//! gograph_loadgen --addr 127.0.0.1:7421 [--clients 1,4,8]
//!                 [--update-rates 0,8] [--duration-secs 3]
//!                 [--batch-size 16] [--output BENCH_PR6.json]
//!                 [--shutdown] [--probe]
//! ```
//!
//! `--probe` skips the sweep: it runs one deterministic SSSP query
//! (source 0, first 64 vertices as targets) and prints the result as
//! one JSON line on stdout. The CI crash-recovery leg diffs a probe
//! taken before `kill -9` against one taken after restart — recovery
//! must reproduce the epoch bit-for-bit.
//!
//! `--fingerprint` prints the server's latest state-fingerprint probe
//! (seq, epoch, per-pipeline hashes) as one JSON line;
//! `--fingerprint-at SEQ` polls until the server can answer for that
//! exact seq. The CI replication leg `cmp`s a primary's fingerprint
//! line against the follower's at the same watermark — bit-identical
//! replay makes them byte-equal.

use gograph_graph::EdgeUpdate;
use gograph_serve::{AlgSpec, ModeSpec, ProbeVerdict, ServeClient};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct CellResult {
    clients: usize,
    update_rate: f64,
    duration: Duration,
    latencies_micros: Vec<u64>,
    queries: u64,
    client_rounds: u64,
    client_push_rounds: u64,
    max_state_bytes: u64,
    warm_replies: u64,
    coalesced_replies: u64,
    update_batches_sent: u64,
    stats_delta: gograph_serve::StatsSnapshot,
    epoch_end: u64,
}

fn main() {
    let mut addr = String::new();
    let mut clients_arg = "1,4,8".to_string();
    let mut rates_arg = "0,8".to_string();
    let mut duration_secs: f64 = 3.0;
    let mut batch_size: usize = 16;
    let mut output = "BENCH_PR6.json".to_string();
    let mut shutdown = false;
    let mut probe = false;
    let mut fingerprint = false;
    let mut fingerprint_at: Option<u64> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| {
                eprintln!("missing value for {}", args[*i - 1]);
                std::process::exit(2);
            })
        };
        match args[i].as_str() {
            "--addr" => addr = value(&mut i),
            "--clients" => clients_arg = value(&mut i),
            "--update-rates" => rates_arg = value(&mut i),
            "--duration-secs" => duration_secs = value(&mut i).parse().unwrap_or(3.0),
            "--batch-size" => batch_size = value(&mut i).parse().unwrap_or(16),
            "--output" => output = value(&mut i),
            "--shutdown" => shutdown = true,
            "--probe" => probe = true,
            "--fingerprint" => fingerprint = true,
            "--fingerprint-at" => {
                fingerprint_at = Some(value(&mut i).parse().unwrap_or_else(|_| {
                    eprintln!("--fingerprint-at wants a sequence number");
                    std::process::exit(2);
                }))
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: gograph_loadgen --addr HOST:PORT [--clients 1,4,8] \
                     [--update-rates 0,8] [--duration-secs 3] [--batch-size 16] \
                     [--output BENCH_PR6.json] [--shutdown] [--probe] \
                     [--fingerprint | --fingerprint-at SEQ]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if addr.is_empty() {
        eprintln!("--addr is required");
        std::process::exit(2);
    }

    let client_counts: Vec<usize> = clients_arg
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .filter(|&c| c > 0)
        .collect();
    let update_rates: Vec<f64> = rates_arg
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .filter(|&r: &f64| r >= 0.0)
        .collect();

    let mut control = ServeClient::connect(&addr).unwrap_or_else(|e| {
        eprintln!("cannot connect to {addr}: {e}");
        std::process::exit(1);
    });
    let initial = control.stats().expect("stats request");
    let num_vertices = initial.num_vertices as u32;

    if probe {
        run_probe(&mut control, num_vertices);
        return;
    }
    if fingerprint || fingerprint_at.is_some() {
        run_fingerprint_probe(&mut control, fingerprint_at);
        return;
    }
    eprintln!(
        "loadgen: server at {addr} has {} vertices / {} edges (epoch {})",
        initial.num_vertices, initial.num_edges, initial.epoch
    );

    let mut cells = Vec::new();
    for &clients in &client_counts {
        for &rate in &update_rates {
            let cell = run_cell(
                &addr,
                &mut control,
                clients,
                rate,
                Duration::from_secs_f64(duration_secs),
                batch_size,
                num_vertices,
            );
            eprintln!(
                "loadgen: clients={clients} rate={rate}/s -> {} queries ({:.0} q/s, p50 {}us p99 {}us, {} epochs)",
                cell.queries,
                cell.queries as f64 / cell.duration.as_secs_f64(),
                percentile(&cell.latencies_micros, 0.50),
                percentile(&cell.latencies_micros, 0.99),
                cell.stats_delta.epochs_published,
            );
            cells.push(cell);
        }
    }

    let report = render_report(&initial, &cells, batch_size);
    std::fs::write(&output, report).unwrap_or_else(|e| {
        eprintln!("cannot write {output}: {e}");
        std::process::exit(1);
    });
    eprintln!("loadgen: wrote {output}");

    if shutdown {
        let last = control.shutdown_server().expect("shutdown request");
        eprintln!(
            "loadgen: server shut down after {} queries / {} epochs",
            last.queries, last.epochs_published
        );
    }
}

/// One deterministic query, printed as one JSON line; comparing two
/// probes byte-for-byte is the CI's bit-identical-recovery check.
fn run_probe(control: &mut ServeClient, num_vertices: u32) {
    // Quiesce first: recovery replays every *acked* batch, so the probe
    // must observe the fully-applied epoch to be comparable across a
    // crash, not whatever the mutator happened to have reached.
    for _ in 0..600 {
        let s = control.stats().expect("probe stats");
        if s.batches_applied + s.mutator_errors >= s.batches_enqueued {
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    let targets: Vec<u32> = (0..num_vertices.min(64)).collect();
    let reply = control
        .query(AlgSpec::Sssp, ModeSpec::Async, false, &[0], &targets)
        .unwrap_or_else(|e| {
            eprintln!("probe query failed: {e}");
            std::process::exit(1);
        });
    let mut values = String::new();
    for (i, (v, x)) in reply.values.iter().enumerate() {
        // The value rides as a string: `{:?}` is the shortest f64 form
        // that parses back exactly (byte-stable across runs), and
        // quoting keeps non-finite states (`inf` for unreachable
        // vertices) valid JSON.
        let _ = write!(values, "{}[{v},\"{x:?}\"]", if i > 0 { "," } else { "" });
    }
    println!(
        "{{\"probe\":\"sssp:0\",\"epoch\":{},\"converged\":{},\"values\":[{}]}}",
        reply.epoch, reply.converged, values
    );
}

/// Prints one state-fingerprint probe as a JSON line. With `at_seq`,
/// polls until the server's probe history covers that seq (a follower
/// may still be replaying toward it); byte-comparing a primary's line
/// against a follower's at the same seq is the CI replication leg's
/// bit-identical-replay check.
fn run_fingerprint_probe(control: &mut ServeClient, at_seq: Option<u64>) {
    let mut last = (0u64, 0u64, ProbeVerdict::Unknown, Vec::new());
    for _ in 0..600 {
        // Let the mutator settle everything enqueued so a no-seq probe
        // reflects the final state, then ask.
        let s = control.stats().expect("fingerprint stats");
        let settled = s.batches_applied + s.mutator_errors >= s.batches_enqueued;
        last = control.probe(at_seq).unwrap_or_else(|e| {
            eprintln!("fingerprint probe failed: {e}");
            std::process::exit(1);
        });
        if last.2 != ProbeVerdict::Unknown && (at_seq.is_some() || settled) {
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    let (seq, epoch, verdict, fingerprints) = last;
    if verdict == ProbeVerdict::Unknown {
        eprintln!(
            "fingerprint probe: server cannot answer for seq {:?} (aged out or not reached)",
            at_seq
        );
        std::process::exit(1);
    }
    let mut fps = String::new();
    for (i, f) in fingerprints.iter().enumerate() {
        let _ = write!(fps, "{}\"{f:016x}\"", if i > 0 { "," } else { "" });
    }
    println!(
        "{{\"fingerprint_probe\":{{\"seq\":{seq},\"epoch\":{epoch},\"fingerprints\":[{fps}]}}}}"
    );
}

#[allow(clippy::too_many_arguments)]
fn run_cell(
    addr: &str,
    control: &mut ServeClient,
    clients: usize,
    update_rate: f64,
    duration: Duration,
    batch_size: usize,
    num_vertices: u32,
) -> CellResult {
    let before = control.stats().expect("stats before cell");
    let stop = Arc::new(AtomicBool::new(false));

    // Updater thread: open-loop batches at `update_rate` per second.
    let updater = {
        let stop = Arc::clone(&stop);
        let addr = addr.to_string();
        std::thread::spawn(move || {
            if update_rate <= 0.0 {
                return 0u64;
            }
            let mut c = ServeClient::connect(&addr).expect("updater connect");
            let mut rng = StdRng::seed_from_u64(0xfeed);
            let period = Duration::from_secs_f64(1.0 / update_rate);
            let mut sent = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let started = Instant::now();
                let mut batch = Vec::with_capacity(batch_size);
                for _ in 0..batch_size {
                    let src = rng.random_range(0..num_vertices);
                    let dst = rng.random_range(0..num_vertices);
                    if src != dst {
                        if rng.random_bool(0.85) {
                            batch.push(EdgeUpdate::insert_weighted(
                                src,
                                dst,
                                rng.random_range(1.0..10.0),
                            ));
                        } else {
                            batch.push(EdgeUpdate::remove(src, dst));
                        }
                    }
                }
                if !batch.is_empty() && c.send_updates(&batch).is_err() {
                    break;
                }
                sent += 1;
                let elapsed = started.elapsed();
                if elapsed < period {
                    std::thread::sleep(period - elapsed);
                }
            }
            sent
        })
    };

    // Closed-loop clients: one query in flight each.
    let mut workers = Vec::with_capacity(clients);
    for worker_id in 0..clients {
        let stop = Arc::clone(&stop);
        let addr = addr.to_string();
        workers.push(std::thread::spawn(move || {
            let mut c = ServeClient::connect(&addr).expect("client connect");
            let mut rng = StdRng::seed_from_u64(0xc11e47 + worker_id as u64);
            let mut latencies = Vec::with_capacity(4096);
            let mut rounds = 0u64;
            let mut push_rounds = 0u64;
            let mut state_bytes = 0u64;
            let mut warm_replies = 0u64;
            let mut coalesced = 0u64;
            while !stop.load(Ordering::Relaxed) {
                // Query mix: mostly the warm hot source (coalescible),
                // some cold sources, some global CC.
                let roll: f64 = rng.random();
                let (alg, sources): (AlgSpec, Vec<u32>) = if roll < 0.55 {
                    (AlgSpec::Sssp, vec![0])
                } else if roll < 0.80 {
                    (AlgSpec::Sssp, vec![rng.random_range(0..num_vertices)])
                } else if roll < 0.90 {
                    (AlgSpec::Bfs, vec![rng.random_range(0..num_vertices)])
                } else {
                    (AlgSpec::Cc, vec![])
                };
                let target = rng.random_range(0..num_vertices);
                let t = Instant::now();
                match c.query(alg, ModeSpec::Async, true, &sources, &[target]) {
                    Ok(reply) => {
                        latencies.push(t.elapsed().as_micros() as u64);
                        rounds += reply.rounds;
                        push_rounds += reply.push_rounds;
                        state_bytes = state_bytes.max(reply.state_bytes);
                        warm_replies += u64::from(reply.warm);
                        coalesced += u64::from(reply.admitted > 1);
                    }
                    Err(_) => break,
                }
            }
            (
                latencies,
                rounds,
                push_rounds,
                state_bytes,
                warm_replies,
                coalesced,
            )
        }));
    }

    std::thread::sleep(duration);
    stop.store(true, Ordering::Relaxed);

    let mut latencies = Vec::new();
    let mut rounds = 0u64;
    let mut push_rounds = 0u64;
    let mut max_state_bytes = 0u64;
    let mut warm_replies = 0u64;
    let mut coalesced_replies = 0u64;
    for w in workers {
        let (l, r, p, sb, wh, co) = w.join().expect("client thread");
        latencies.extend(l);
        rounds += r;
        push_rounds += p;
        max_state_bytes = max_state_bytes.max(sb);
        warm_replies += wh;
        coalesced_replies += co;
    }
    let update_batches_sent = updater.join().expect("updater thread");

    let after = control.stats().expect("stats after cell");
    let delta = diff_stats(&before, &after);
    CellResult {
        clients,
        update_rate,
        duration,
        queries: latencies.len() as u64,
        latencies_micros: {
            let mut l = latencies;
            l.sort_unstable();
            l
        },
        client_rounds: rounds,
        client_push_rounds: push_rounds,
        max_state_bytes,
        warm_replies,
        coalesced_replies,
        update_batches_sent,
        stats_delta: delta,
        epoch_end: after.epoch,
    }
}

fn diff_stats(
    a: &gograph_serve::StatsSnapshot,
    b: &gograph_serve::StatsSnapshot,
) -> gograph_serve::StatsSnapshot {
    gograph_serve::StatsSnapshot {
        epoch: b.epoch,
        epochs_published: b.epochs_published - a.epochs_published,
        num_vertices: b.num_vertices,
        num_edges: b.num_edges,
        num_partitions: b.num_partitions,
        queries: b.queries - a.queries,
        coalesced: b.coalesced - a.coalesced,
        warm_hits: b.warm_hits - a.warm_hits,
        cold_runs: b.cold_runs - a.cold_runs,
        query_rounds: b.query_rounds - a.query_rounds,
        query_push_rounds: b.query_push_rounds - a.query_push_rounds,
        last_state_bytes: b.last_state_bytes,
        batches_enqueued: b.batches_enqueued - a.batches_enqueued,
        batches_applied: b.batches_applied - a.batches_applied,
        updates_applied: b.updates_applied - a.updates_applied,
        mutator_rounds: b.mutator_rounds - a.mutator_rounds,
        mutator_errors: b.mutator_errors - a.mutator_errors,
        mutator_restarts: b.mutator_restarts - a.mutator_restarts,
        poisoned_slots: b.poisoned_slots - a.poisoned_slots,
        degraded: b.degraded, // gauge, not a counter
        wal_appends: b.wal_appends - a.wal_appends,
        wal_bytes: b.wal_bytes - a.wal_bytes,
        wal_replayed: b.wal_replayed - a.wal_replayed,
        checkpoints_written: b.checkpoints_written - a.checkpoints_written,
        connections_shed: b.connections_shed - a.connections_shed,
        repl_segments_shipped: b.repl_segments_shipped - a.repl_segments_shipped,
        repl_records_shipped: b.repl_records_shipped - a.repl_records_shipped,
        repl_acks: b.repl_acks - a.repl_acks,
        repl_follower_lag: b.repl_follower_lag, // gauge, not a counter
        repl_divergences: b.repl_divergences - a.repl_divergences,
        repl_resyncs: b.repl_resyncs - a.repl_resyncs,
        repl_last_seq: b.repl_last_seq,       // gauge
        repl_primary_seq: b.repl_primary_seq, // gauge
        delta_checkpoints_written: b.delta_checkpoints_written - a.delta_checkpoints_written,
        checkpoint_bytes_written: b.checkpoint_bytes_written - a.checkpoint_bytes_written,
    }
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn render_report(
    initial: &gograph_serve::StatsSnapshot,
    cells: &[CellResult],
    batch_size: usize,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"bench\": \"serve_loadgen\",");
    let _ = writeln!(
        out,
        "  \"description\": \"Closed-loop latency/throughput of the epoch-snapshot query service under concurrent readers and live update batches\","
    );
    let _ = writeln!(
        out,
        "  \"graph\": {{ \"vertices\": {}, \"edges\": {} }},",
        initial.num_vertices, initial.num_edges
    );
    let _ = writeln!(out, "  \"update_batch_size\": {batch_size},");
    let _ = writeln!(out, "  \"cells\": [");
    for (i, c) in cells.iter().enumerate() {
        let secs = c.duration.as_secs_f64();
        let d = &c.stats_delta;
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"clients\": {},", c.clients);
        let _ = writeln!(out, "      \"update_batches_per_sec\": {},", c.update_rate);
        let _ = writeln!(out, "      \"duration_secs\": {secs},");
        let _ = writeln!(out, "      \"queries\": {},", c.queries);
        let _ = writeln!(
            out,
            "      \"queries_per_sec\": {:.2},",
            c.queries as f64 / secs
        );
        let _ = writeln!(
            out,
            "      \"latency_micros\": {{ \"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {} }},",
            percentile(&c.latencies_micros, 0.50),
            percentile(&c.latencies_micros, 0.90),
            percentile(&c.latencies_micros, 0.99),
            c.latencies_micros.last().copied().unwrap_or(0)
        );
        let _ = writeln!(
            out,
            "      \"run_stats\": {{ \"rounds\": {}, \"push_rounds\": {}, \"avg_rounds_per_query\": {:.3}, \"max_state_bytes\": {} }},",
            c.client_rounds,
            c.client_push_rounds,
            if c.queries > 0 {
                c.client_rounds as f64 / c.queries as f64
            } else {
                0.0
            },
            c.max_state_bytes
        );
        let _ = writeln!(
            out,
            "      \"warm_replies\": {}, \"coalesced_replies\": {},",
            c.warm_replies, c.coalesced_replies
        );
        let _ = writeln!(
            out,
            "      \"server_delta\": {{ \"queries\": {}, \"coalesced\": {}, \"warm_hits\": {}, \"cold_runs\": {}, \"query_rounds\": {}, \"query_push_rounds\": {}, \"epochs_published\": {}, \"update_batches_applied\": {}, \"updates_applied\": {}, \"mutator_rounds\": {}, \"mutator_errors\": {}, \"mutator_restarts\": {}, \"degraded\": {}, \"wal_appends\": {}, \"checkpoints_written\": {}, \"connections_shed\": {} }},",
            d.queries,
            d.coalesced,
            d.warm_hits,
            d.cold_runs,
            d.query_rounds,
            d.query_push_rounds,
            d.epochs_published,
            d.batches_applied,
            d.updates_applied,
            d.mutator_rounds,
            d.mutator_errors,
            d.mutator_restarts,
            d.degraded,
            d.wal_appends,
            d.checkpoints_written,
            d.connections_shed
        );
        let _ = writeln!(
            out,
            "      \"replication_delta\": {{ \"segments_shipped\": {}, \"records_shipped\": {}, \"acks\": {}, \"follower_lag\": {}, \"divergences\": {}, \"resyncs\": {}, \"delta_checkpoints_written\": {}, \"checkpoint_bytes_written\": {} }},",
            d.repl_segments_shipped,
            d.repl_records_shipped,
            d.repl_acks,
            d.repl_follower_lag,
            d.repl_divergences,
            d.repl_resyncs,
            d.delta_checkpoints_written,
            d.checkpoint_bytes_written
        );
        let _ = writeln!(
            out,
            "      \"update_batches_sent\": {}, \"epoch_at_end\": {}",
            c.update_batches_sent, c.epoch_end
        );
        let _ = writeln!(out, "    }}{}", if i + 1 < cells.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}
